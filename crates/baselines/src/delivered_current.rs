//! The delivered-current connection subgraph (Faloutsos–McCurley–Tomkins,
//! KDD'04) — the method CePS generalizes and compares against in Fig. 2.
//!
//! Model: edge weights are conductances; apply +1 V to the *source* query,
//! ground the *sink* query at 0 V, and ground a **universal sink** attached
//! to every node with conductance `sink_factor · degree` (the original
//! paper's device for taxing high-degree nodes — the same problem CePS's
//! Eq. 10 normalization addresses). Solving Kirchhoff's equations gives
//! voltages; current flows downhill. The *delivered* current of a downhill
//! path is the share of the current entering it that survives prorating at
//! every junction and reaches the sink rather than leaking to ground.
//!
//! Display generation then extracts end-to-end source→sink paths one at a
//! time, each maximizing **delivered current per new display node**, until
//! the budget is filled — the dynamic program EXTRACT's Table 3 descends
//! from.
//!
//! Because source and sink play different electrical roles, swapping them
//! changes the result — the asymmetry Fig. 2(a)/(b) demonstrates and that
//! our integration tests assert against CePS's symmetric behavior.

use ceps_graph::{CsrGraph, NodeId, Subgraph};

use crate::linsys::{solve_voltages, Pin};
use crate::{BaselineError, Result};

/// Parameters for the delivered-current method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeliveredCurrentConfig {
    /// Budget: maximum display nodes beyond the two queries.
    pub budget: usize,
    /// Universal-sink conductance per unit degree (KDD'04's high-degree tax).
    pub sink_factor: f64,
    /// Maximum new nodes per extracted path.
    pub max_path_len: usize,
    /// Voltage solve tolerance.
    pub tol: f64,
    /// Voltage solve iteration cap.
    pub max_iterations: usize,
}

impl Default for DeliveredCurrentConfig {
    fn default() -> Self {
        DeliveredCurrentConfig {
            budget: 8,
            sink_factor: 0.05,
            max_path_len: 6,
            tol: 1e-10,
            max_iterations: 10_000,
        }
    }
}

/// The connection subgraph plus diagnostics.
#[derive(Debug, Clone)]
pub struct ConnectionSubgraph {
    /// The display subgraph (source and sink included).
    pub subgraph: Subgraph,
    /// Node voltages from the electrical solve.
    pub voltages: Vec<f64>,
    /// The extracted paths, best first (source → sink node sequences).
    pub paths: Vec<Vec<NodeId>>,
}

/// Runs the delivered-current connection subgraph between `source` (+1 V)
/// and `sink` (0 V).
///
/// # Errors
/// Bad node ids, equal source/sink, voltage non-convergence, or
/// [`BaselineError::Disconnected`] when no current can flow.
pub fn connection_subgraph(
    graph: &CsrGraph,
    source: NodeId,
    sink: NodeId,
    config: &DeliveredCurrentConfig,
) -> Result<ConnectionSubgraph> {
    let n = graph.node_count();
    for q in [source, sink] {
        if q.index() >= n {
            return Err(BaselineError::BadQueryNode {
                node: q,
                node_count: n,
            });
        }
    }
    if source == sink {
        return Err(BaselineError::SourceEqualsSink { node: source });
    }

    let _span = ceps_obs::span("baselines.connection_subgraph");
    let pins = [
        Pin {
            node: source,
            voltage: 1.0,
        },
        Pin {
            node: sink,
            voltage: 0.0,
        },
    ];
    let voltages = solve_voltages(
        graph,
        &pins,
        config.sink_factor,
        config.tol,
        config.max_iterations,
    )?;

    // Downhill order: decreasing voltage, ties by id (a strict total order,
    // same device as EXTRACT's path DP).
    let key = |v: u32| (voltages[v as usize], std::cmp::Reverse(v));
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| key(b).partial_cmp(&key(a)).expect("finite voltages"));
    let mut pos_of = vec![u32::MAX; n];
    for (p, &v) in order.iter().enumerate() {
        pos_of[v as usize] = p as u32;
    }

    // Out-flow of each node over downhill edges plus the universal sink —
    // the denominator when prorating delivered current at a junction.
    let current = |u: NodeId, v: NodeId, w: f64| w * (voltages[u.index()] - voltages[v.index()]);
    let mut outflow = vec![0f64; n];
    for u in graph.nodes() {
        let mut total = config.sink_factor * graph.degree(u) * voltages[u.index()];
        for (v, w) in graph.neighbors(u) {
            let i = current(u, v, w);
            if i > 0.0 {
                total += i;
            }
        }
        outflow[u.index()] = total;
    }

    let mut subgraph = Subgraph::from_nodes([source, sink]);
    let mut in_display = vec![false; n];
    in_display[source.index()] = true;
    in_display[sink.index()] = true;

    let src_pos = pos_of[source.index()] as usize;
    let sink_pos = pos_of[sink.index()] as usize;
    if src_pos >= sink_pos {
        return Err(BaselineError::Disconnected { a: source, b: sink });
    }

    let mut paths = Vec::new();
    let mut added = 0usize;
    while added < config.budget {
        let Some(path) = best_delivered_path(
            graph,
            &order,
            &pos_of,
            &voltages,
            &outflow,
            &in_display,
            source,
            sink,
            config.max_path_len,
            config.sink_factor,
        ) else {
            break;
        };
        let mut new_nodes = 0;
        for &v in &path {
            if !in_display[v.index()] {
                in_display[v.index()] = true;
                subgraph.insert(v);
                new_nodes += 1;
            }
        }
        if new_nodes == 0 {
            break; // only repeats remain
        }
        added += new_nodes;
        paths.push(path);
    }

    if paths.is_empty() {
        return Err(BaselineError::Disconnected { a: source, b: sink });
    }
    Ok(ConnectionSubgraph {
        subgraph,
        voltages,
        paths,
    })
}

/// The display-generation DP: the downhill source→sink path maximizing
/// delivered current per new display node. Returns `None` when the sink is
/// unreachable or every path exceeds the length bound.
#[allow(clippy::too_many_arguments)]
fn best_delivered_path(
    graph: &CsrGraph,
    order: &[u32],
    pos_of: &[u32],
    voltages: &[f64],
    outflow: &[f64],
    in_display: &[bool],
    source: NodeId,
    sink: NodeId,
    max_new: usize,
    _sink_factor: f64,
) -> Option<Vec<NodeId>> {
    let src_pos = pos_of[source.index()] as usize;
    let sink_pos = pos_of[sink.index()] as usize;
    let width = max_new + 1;
    let span = sink_pos - src_pos + 1;
    const NEG: f64 = f64::NEG_INFINITY;

    // dp holds log delivered current (products become sums).
    let mut dp = vec![NEG; span * width];
    let mut parent = vec![(u32::MAX, u32::MAX); span * width];
    let s0 = usize::from(!in_display[source.index()]);
    if s0 >= width {
        return None;
    }
    dp[s0] = 0.0; // log(1): full unit share leaves the source

    for p in 1..span {
        let v = order[src_pos + p];
        let vid = NodeId(v);
        let v_in = in_display[v as usize];
        let s_min = usize::from(!v_in);
        for (u, w) in graph.neighbors(vid) {
            let up = pos_of[u.index()] as usize;
            if up < src_pos || up >= src_pos + p {
                continue; // not downhill into v within the window
            }
            let i_uv = w * (voltages[u.index()] - voltages[v as usize]);
            if i_uv <= 0.0 || outflow[u.index()] <= 0.0 {
                continue;
            }
            // Share of u's outflow taking this edge.
            let log_share = (i_uv / outflow[u.index()]).ln();
            let ub = (up - src_pos) * width;
            for s in s_min..width {
                let s_prev = if v_in { s } else { s - 1 };
                let prev = dp[ub + s_prev];
                if prev == NEG {
                    continue;
                }
                let val = prev + log_share;
                let slot = p * width + s;
                if val > dp[slot] {
                    dp[slot] = val;
                    parent[slot] = ((up - src_pos) as u32, s_prev as u32);
                }
            }
        }
    }

    // Pick s >= 1 maximizing delivered current per new node.
    let dest = span - 1;
    let mut best: Option<(usize, f64)> = None;
    for s in 1..width {
        let lg = dp[dest * width + s];
        if lg == NEG {
            continue;
        }
        let score = lg.exp() / s as f64;
        match best {
            Some((_, bs)) if bs >= score => {}
            _ => best = Some((s, score)),
        }
    }
    let (mut s, _) = best?;

    let mut path = Vec::new();
    let mut p = dest;
    loop {
        path.push(NodeId(order[src_pos + p]));
        if p == 0 {
            break;
        }
        let (pp, ps) = parent[p * width + s];
        debug_assert_ne!(pp, u32::MAX);
        p = pp as usize;
        s = ps as usize;
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::GraphBuilder;

    /// Two parallel routes source→sink: a strong 2-hop and a weak 3-hop.
    fn two_routes() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(1), 5.0).unwrap();
        b.add_edge(NodeId(1), NodeId(4), 5.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        b.add_edge(NodeId(3), NodeId(4), 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn first_path_takes_the_strong_route() {
        let g = two_routes();
        let cfg = DeliveredCurrentConfig {
            budget: 1,
            ..Default::default()
        };
        let out = connection_subgraph(&g, NodeId(0), NodeId(4), &cfg).unwrap();
        assert_eq!(out.paths[0], vec![NodeId(0), NodeId(1), NodeId(4)]);
        assert!(out.subgraph.contains(NodeId(1)));
        assert!(!out.subgraph.contains(NodeId(2)));
    }

    #[test]
    fn larger_budget_adds_the_weak_route() {
        let g = two_routes();
        let cfg = DeliveredCurrentConfig {
            budget: 5,
            ..Default::default()
        };
        let out = connection_subgraph(&g, NodeId(0), NodeId(4), &cfg).unwrap();
        assert!(out.subgraph.contains(NodeId(2)));
        assert!(out.subgraph.contains(NodeId(3)));
        assert!(out.paths.len() >= 2);
    }

    #[test]
    fn every_path_runs_source_to_sink_downhill() {
        let g = two_routes();
        let cfg = DeliveredCurrentConfig {
            budget: 5,
            ..Default::default()
        };
        let out = connection_subgraph(&g, NodeId(0), NodeId(4), &cfg).unwrap();
        for p in &out.paths {
            assert_eq!(p.first(), Some(&NodeId(0)));
            assert_eq!(p.last(), Some(&NodeId(4)));
            for w in p.windows(2) {
                assert!(out.voltages[w[0].index()] >= out.voltages[w[1].index()]);
            }
        }
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let g = two_routes();
        let cfg = DeliveredCurrentConfig::default();
        assert!(matches!(
            connection_subgraph(&g, NodeId(0), NodeId(0), &cfg),
            Err(BaselineError::SourceEqualsSink { .. })
        ));
        assert!(connection_subgraph(&g, NodeId(0), NodeId(9), &cfg).is_err());
    }

    #[test]
    fn disconnected_pair_is_an_error() {
        let mut b = GraphBuilder::with_nodes(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        let g = b.build().unwrap();
        let cfg = DeliveredCurrentConfig::default();
        assert!(matches!(
            connection_subgraph(&g, NodeId(0), NodeId(3), &cfg),
            Err(BaselineError::Disconnected { .. })
        ));
    }

    /// Tiny deterministic LCG so the order-sensitivity witness below is
    /// reproducible without external RNG dependencies.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    #[test]
    fn result_depends_on_source_sink_order() {
        // The asymmetry Fig. 2 demonstrates: because the +1 V source and
        // 0 V sink play different electrical roles (the grounded universal
        // sink taxes high-voltage regions harder), swapping them can change
        // the display. This 16-node weighted graph (fixed pseudo-random
        // construction) is a concrete witness: forward picks a different
        // node set than reverse.
        let mut rng = Lcg(1u64.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1));
        let n = 16u32;
        let mut b = GraphBuilder::with_nodes(n as usize);
        for i in 0..n - 1 {
            b.add_edge(NodeId(i), NodeId(i + 1), 1.0 + (rng.next() % 5) as f64)
                .unwrap();
        }
        for _ in 0..20 {
            let x = (rng.next() % n as u64) as u32;
            let y = (rng.next() % n as u64) as u32;
            if x != y {
                b.add_edge(NodeId(x), NodeId(y), 1.0 + (rng.next() % 5) as f64)
                    .unwrap();
            }
        }
        let g = b.build().unwrap();
        let cfg = DeliveredCurrentConfig {
            budget: 3,
            sink_factor: 0.2,
            ..Default::default()
        };
        let fwd = connection_subgraph(&g, NodeId(0), NodeId(15), &cfg).unwrap();
        let rev = connection_subgraph(&g, NodeId(15), NodeId(0), &cfg).unwrap();
        let f: Vec<NodeId> = fwd.subgraph.nodes().collect();
        let r: Vec<NodeId> = rev.subgraph.nodes().collect();
        assert_ne!(f, r, "expected order sensitivity, both gave {f:?}");
    }
}
