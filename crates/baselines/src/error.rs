//! Typed errors for the baseline methods.

use std::fmt;

use ceps_graph::{GraphError, NodeId};
use ceps_rwr::RwrError;

/// Errors produced by `ceps-baselines`.
#[derive(Debug)]
#[non_exhaustive]
pub enum BaselineError {
    /// A query node id was outside the graph.
    BadQueryNode {
        /// The offending id.
        node: NodeId,
        /// Nodes in the graph.
        node_count: usize,
    },
    /// The query set was empty (or a pairwise method got fewer than 2).
    TooFewQueries {
        /// Queries supplied.
        got: usize,
        /// Queries required.
        need: usize,
    },
    /// Source and sink coincide in the delivered-current method.
    SourceEqualsSink {
        /// The coinciding node.
        node: NodeId,
    },
    /// The voltage solve did not converge.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual at stop.
        residual: f64,
    },
    /// Query nodes lie in different connected components, so no connecting
    /// subgraph exists.
    Disconnected {
        /// Two nodes witnessing the disconnection.
        a: NodeId,
        /// Second witness.
        b: NodeId,
    },
    /// An underlying graph error.
    Graph(GraphError),
    /// An underlying RWR error.
    Rwr(RwrError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::BadQueryNode { node, node_count } => {
                write!(
                    f,
                    "query node {node} out of bounds for graph with {node_count} nodes"
                )
            }
            BaselineError::TooFewQueries { got, need } => {
                write!(f, "method needs at least {need} query nodes, got {got}")
            }
            BaselineError::SourceEqualsSink { node } => {
                write!(f, "source and sink are both {node}")
            }
            BaselineError::NoConvergence {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "voltage solve stopped after {iterations} iterations at residual {residual}"
                )
            }
            BaselineError::Disconnected { a, b } => {
                write!(f, "query nodes {a} and {b} are in different components")
            }
            BaselineError::Graph(e) => write!(f, "graph error: {e}"),
            BaselineError::Rwr(e) => write!(f, "rwr error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Graph(e) => Some(e),
            BaselineError::Rwr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for BaselineError {
    fn from(e: GraphError) -> Self {
        BaselineError::Graph(e)
    }
}

impl From<RwrError> for BaselineError {
    fn from(e: RwrError) -> Self {
        BaselineError::Rwr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BaselineError::TooFewQueries { got: 1, need: 2 };
        assert!(e.to_string().contains("at least 2"));
        let e = BaselineError::Disconnected {
            a: NodeId(1),
            b: NodeId(2),
        };
        assert!(e.to_string().contains("different components"));
    }
}
