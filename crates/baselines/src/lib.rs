//! # ceps-baselines
//!
//! The comparison methods the CePS paper measures itself against or
//! positions itself relative to:
//!
//! * [`delivered_current`] — the **connection subgraph** algorithm of
//!   Faloutsos, McCurley and Tomkins (KDD'04), the paper's direct
//!   predecessor and the other method in Fig. 2. It models the graph as a
//!   resistor network (+1 V at one query, 0 V at the other, a grounded
//!   *universal sink* to tax high-degree nodes), and extracts the paths
//!   that deliver the most current per new display node. Crucially — and
//!   this is what Fig. 2 demonstrates — the result depends on which query
//!   is the source and which is the sink; CePS does not.
//! * [`ppr`] — combining scores by summation, which is what personalized
//!   PageRank does; the paper (footnote 1) observes this approximates an
//!   `OR` query and cannot express `AND`.
//! * [`shortest`] — the union of pairwise shortest paths (with cost
//!   `1 / weight`), the naive connector the related-work section faults
//!   for favoring high-degree nodes and single-faceted connections.
//! * [`steiner`] — the classic shortest-path 2-approximation of the
//!   Steiner tree, the minimal connector the paper contrasts CePS's
//!   "set of inter-correlated paths" against.
//!
//! All baselines produce a [`ceps_graph::Subgraph`], so the evaluation
//! metrics of `ceps-core::eval` apply to them unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delivered_current;
mod error;
pub mod linsys;
pub mod ppr;
pub mod shortest;
pub mod steiner;

pub use error::BaselineError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BaselineError>;
