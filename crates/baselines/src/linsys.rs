//! Gauss–Seidel solver for electrical-network voltage systems.
//!
//! The delivered-current method interprets edge weights as conductances.
//! With boundary conditions (source at +1 V, sink at 0 V) and an optional
//! grounded *universal sink* of conductance `sink_factor · d_v` at every
//! node, Kirchhoff's law at each free node `v` reads
//!
//! ```text
//! V(v) = Σ_{u ∈ N(v)} C(u, v) · V(u) / (d_v + C_z(v))
//! ```
//!
//! which Gauss–Seidel solves with guaranteed convergence (the system matrix
//! is irreducibly diagonally dominant once `sink_factor > 0` or a boundary
//! node is reachable).

use ceps_graph::{CsrGraph, NodeId};

use crate::{BaselineError, Result};

/// Boundary condition: a node pinned to a fixed voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pin {
    /// The pinned node.
    pub node: NodeId,
    /// Its fixed voltage.
    pub voltage: f64,
}

/// Solves for node voltages.
///
/// * `pins` — fixed-voltage nodes (the +1 V source, the 0 V sink);
/// * `sink_factor` — conductance of every node's edge to the grounded
///   universal sink, as a multiple of its degree (`0.0` disables it);
/// * `tol` / `max_iterations` — Gauss–Seidel stopping rule (max absolute
///   voltage change per sweep).
///
/// # Errors
/// [`BaselineError::NoConvergence`] if the sweep limit is hit first.
pub fn solve_voltages(
    graph: &CsrGraph,
    pins: &[Pin],
    sink_factor: f64,
    tol: f64,
    max_iterations: usize,
) -> Result<Vec<f64>> {
    let n = graph.node_count();
    let mut v = vec![0f64; n];
    let mut pinned = vec![false; n];
    for p in pins {
        if p.node.index() >= n {
            return Err(BaselineError::BadQueryNode {
                node: p.node,
                node_count: n,
            });
        }
        v[p.node.index()] = p.voltage;
        pinned[p.node.index()] = true;
    }

    let _span = ceps_obs::span("baselines.solve_voltages");
    for it in 0..max_iterations {
        let mut delta: f64 = 0.0;
        for u in 0..n {
            if pinned[u] {
                continue;
            }
            let uid = NodeId::from_index(u);
            let d = graph.degree(uid);
            if d == 0.0 {
                continue; // isolated: stays at 0
            }
            let mut num = 0.0;
            for (w_node, w) in graph.neighbors(uid) {
                num += w * v[w_node.index()];
            }
            let denom = d + sink_factor * d;
            let nv = num / denom;
            delta = delta.max((nv - v[u]).abs());
            v[u] = nv;
        }
        if delta < tol {
            ceps_obs::debug!(
                "voltage solve converged after {} sweeps (delta {delta:.2e})",
                it + 1
            );
            if ceps_obs::enabled() {
                ceps_obs::record("baselines.voltage_sweeps", (it + 1) as f64);
            }
            return Ok(v);
        }
        if it + 1 == max_iterations {
            ceps_obs::warn!(
                "voltage solve hit the sweep limit ({max_iterations}) at residual {delta:.2e}"
            );
            return Err(BaselineError::NoConvergence {
                iterations: max_iterations,
                residual: delta,
            });
        }
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::GraphBuilder;

    fn path3() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn voltage_divider_on_a_path() {
        // 0 at 1 V, 2 at 0 V, equal resistors: middle node sits at 0.5 V.
        let g = path3();
        let pins = [
            Pin {
                node: NodeId(0),
                voltage: 1.0,
            },
            Pin {
                node: NodeId(2),
                voltage: 0.0,
            },
        ];
        let v = solve_voltages(&g, &pins, 0.0, 1e-12, 10_000).unwrap();
        assert!((v[1] - 0.5).abs() < 1e-9, "v1 = {}", v[1]);
    }

    #[test]
    fn universal_sink_pulls_voltages_down() {
        let g = path3();
        let pins = [
            Pin {
                node: NodeId(0),
                voltage: 1.0,
            },
            Pin {
                node: NodeId(2),
                voltage: 0.0,
            },
        ];
        let plain = solve_voltages(&g, &pins, 0.0, 1e-12, 10_000).unwrap();
        let taxed = solve_voltages(&g, &pins, 1.0, 1e-12, 10_000).unwrap();
        assert!(taxed[1] < plain[1]);
    }

    #[test]
    fn voltages_respect_maximum_principle() {
        // Diamond with asymmetric weights: all free voltages within [0, 1].
        let mut b = GraphBuilder::new();
        for (x, y, w) in [
            (0, 1, 3.0),
            (0, 2, 1.0),
            (1, 3, 1.0),
            (2, 3, 2.0),
            (1, 2, 0.5),
        ] {
            b.add_edge(NodeId(x), NodeId(y), w).unwrap();
        }
        let g = b.build().unwrap();
        let pins = [
            Pin {
                node: NodeId(0),
                voltage: 1.0,
            },
            Pin {
                node: NodeId(3),
                voltage: 0.0,
            },
        ];
        let v = solve_voltages(&g, &pins, 0.0, 1e-12, 10_000).unwrap();
        for (i, &x) in v.iter().enumerate() {
            assert!((0.0..=1.0).contains(&x), "v[{i}] = {x}");
        }
        // Strongly connected to the source, node 1 should be hotter than 2.
        assert!(v[1] > v[2]);
    }

    #[test]
    fn bad_pin_is_rejected() {
        let g = path3();
        let pins = [Pin {
            node: NodeId(9),
            voltage: 1.0,
        }];
        assert!(matches!(
            solve_voltages(&g, &pins, 0.0, 1e-9, 100),
            Err(BaselineError::BadQueryNode { .. })
        ));
    }

    #[test]
    fn iteration_cap_reports_no_convergence() {
        let g = path3();
        let pins = [
            Pin {
                node: NodeId(0),
                voltage: 1.0,
            },
            Pin {
                node: NodeId(2),
                voltage: 0.0,
            },
        ];
        let res = solve_voltages(&g, &pins, 0.0, 1e-15, 1);
        assert!(matches!(res, Err(BaselineError::NoConvergence { .. })));
    }
}
