//! Personalized-PageRank combination — the "approximate OR" baseline.
//!
//! Footnote 1 of the paper: personalized PageRank over a multi-node
//! preference set scores node `j` by `Σ_i r(i, j)` — a sum, which behaves
//! like a soft `OR`: one strongly-connected query dominates. The baseline
//! returns the top-`b` nodes by that sum (no connectivity machinery), which
//! is exactly what a retrieval system built directly on PPR would display.

use ceps_graph::{normalize::Normalization, CsrGraph, NodeId, Subgraph, Transition};
use ceps_rwr::{RwrConfig, RwrEngine};

use crate::Result;

/// Top-`budget` nodes by summed personalized-PageRank score, always
/// including the query nodes.
///
/// # Errors
/// Propagates RWR validation errors (bad `c`, empty/out-of-range queries).
pub fn ppr_top_nodes(
    graph: &CsrGraph,
    queries: &[NodeId],
    budget: usize,
    rwr: RwrConfig,
) -> Result<(Subgraph, Vec<f64>)> {
    let t = Transition::new(graph, Normalization::ColumnStochastic);
    let engine = RwrEngine::new(&t, rwr)?;
    let scores = engine.solve_many(queries)?;

    let n = graph.node_count();
    let mut summed = vec![0f64; n];
    for i in 0..scores.query_count() {
        for (slot, v) in summed.iter_mut().zip(scores.row(i)) {
            *slot += v;
        }
    }

    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        summed[b as usize]
            .total_cmp(&summed[a as usize])
            .then(a.cmp(&b))
    });

    let mut sub = Subgraph::from_nodes(queries.iter().copied());
    for &v in &order {
        if sub.len() >= queries.len() + budget {
            break;
        }
        sub.insert(NodeId(v));
    }
    Ok((sub, summed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::GraphBuilder;

    /// A hub strongly tied to query 0 and a bridge node between queries.
    fn graph() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for (x, y, w) in [
            (0, 1, 5.0), // hub near query 0
            (0, 2, 1.0),
            (2, 3, 1.0), // 2 bridges towards query 3
            (1, 0, 1.0),
        ] {
            b.add_edge(NodeId(x), NodeId(y), w).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn queries_always_included() {
        let g = graph();
        let (sub, _) = ppr_top_nodes(&g, &[NodeId(0), NodeId(3)], 1, RwrConfig::default()).unwrap();
        assert!(sub.contains(NodeId(0)));
        assert!(sub.contains(NodeId(3)));
        assert!(sub.len() <= 3);
    }

    #[test]
    fn sum_scores_match_row_sums() {
        let g = graph();
        let (_, summed) =
            ppr_top_nodes(&g, &[NodeId(0), NodeId(3)], 2, RwrConfig::default()).unwrap();
        // Each row sums to 1, so the summed vector totals Q = 2.
        let total: f64 = summed.iter().sum();
        assert!((total - 2.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn or_like_behavior_scores_one_sided_hubs_highly() {
        // Node 1 touches only query 0, yet the summed ("OR"-ish) score still
        // ranks it among the top non-query nodes — the behavior footnote 1
        // contrasts with AND queries, where a one-sided hub scores ~0.
        let g = graph();
        let (sub, summed) =
            ppr_top_nodes(&g, &[NodeId(0), NodeId(3)], 2, RwrConfig::default()).unwrap();
        assert!(summed[1] > 0.0 && summed[2] > 0.0);
        assert!(
            sub.contains(NodeId(1)),
            "one-sided hub excluded: {summed:?}"
        );
        assert!(sub.contains(NodeId(2)));
        // Its AND score (product) would be tiny by comparison: node 1 has no
        // tie to query 3's side beyond multi-hop leakage.
        let t =
            ceps_graph::Transition::new(&g, ceps_graph::normalize::Normalization::ColumnStochastic);
        let m = ceps_rwr::RwrEngine::new(&t, RwrConfig::default())
            .unwrap()
            .solve_many(&[NodeId(0), NodeId(3)])
            .unwrap();
        let and_1 = m.score(0, NodeId(1)) * m.score(1, NodeId(1));
        let or_1 = summed[1];
        assert!(or_1 > 10.0 * and_1, "or {or_1} vs and {and_1}");
    }

    #[test]
    fn propagates_bad_queries() {
        let g = graph();
        assert!(ppr_top_nodes(&g, &[], 2, RwrConfig::default()).is_err());
        assert!(ppr_top_nodes(&g, &[NodeId(44)], 2, RwrConfig::default()).is_err());
    }
}
