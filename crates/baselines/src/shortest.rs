//! Shortest-path connector — the naive baseline of the related-work
//! discussion.
//!
//! Connect every pair of query nodes by its cheapest path under cost
//! `1 / weight` (strong ties are short) and return the union. The paper
//! faults this family twice: a single path per pair "cannot capture the
//! multiple faceted relationship between two nodes", and hop-cheap routes
//! love high-degree nodes. The baseline exists so the benchmark harness can
//! show CePS capturing more goodness at equal budget.

use ceps_graph::{algo::dijkstra, CsrGraph, NodeId, Subgraph};

use crate::{BaselineError, Result};

/// Union of pairwise shortest paths between all query pairs.
///
/// # Errors
/// [`BaselineError::TooFewQueries`] for fewer than 2 queries,
/// [`BaselineError::BadQueryNode`] for out-of-range ids, and
/// [`BaselineError::Disconnected`] naming the first unreachable pair.
pub fn shortest_path_subgraph(graph: &CsrGraph, queries: &[NodeId]) -> Result<Subgraph> {
    if queries.len() < 2 {
        return Err(BaselineError::TooFewQueries {
            got: queries.len(),
            need: 2,
        });
    }
    let n = graph.node_count();
    for &q in queries {
        if q.index() >= n {
            return Err(BaselineError::BadQueryNode {
                node: q,
                node_count: n,
            });
        }
    }

    let mut sub = Subgraph::from_nodes(queries.iter().copied());
    for (i, &a) in queries.iter().enumerate() {
        let run = dijkstra(graph, a, |w| 1.0 / w);
        for &b in &queries[i + 1..] {
            let Some(path) = run.path_to(a, b) else {
                return Err(BaselineError::Disconnected { a, b });
            };
            for v in path {
                sub.insert(v);
            }
        }
    }
    Ok(sub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::GraphBuilder;

    /// Triangle of queries {0, 4, 8} connected through dedicated waypoints.
    fn waypoint_graph() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for (x, y) in [(0, 1), (1, 4), (4, 5), (5, 8), (8, 9), (9, 0)] {
            b.add_edge(NodeId(x), NodeId(y), 2.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn connects_every_pair() {
        let g = waypoint_graph();
        let sub = shortest_path_subgraph(&g, &[NodeId(0), NodeId(4), NodeId(8)]).unwrap();
        assert!(sub.is_connected(&g));
        for v in [0u32, 1, 4, 5, 8, 9] {
            assert!(sub.contains(NodeId(v)), "missing {v}");
        }
    }

    #[test]
    fn prefers_strong_ties() {
        // 0-1-3 (weights 10) beats direct-ish 0-2-3 (weights 1).
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(1), 10.0).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 10.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        let g = b.build().unwrap();
        let sub = shortest_path_subgraph(&g, &[NodeId(0), NodeId(3)]).unwrap();
        assert!(sub.contains(NodeId(1)));
        assert!(!sub.contains(NodeId(2)));
    }

    #[test]
    fn validates_inputs() {
        let g = waypoint_graph();
        assert!(matches!(
            shortest_path_subgraph(&g, &[NodeId(0)]),
            Err(BaselineError::TooFewQueries { .. })
        ));
        assert!(shortest_path_subgraph(&g, &[NodeId(0), NodeId(77)]).is_err());
    }

    #[test]
    fn reports_disconnection() {
        let mut b = GraphBuilder::with_nodes(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        let g = b.build().unwrap();
        assert!(matches!(
            shortest_path_subgraph(&g, &[NodeId(0), NodeId(3)]),
            Err(BaselineError::Disconnected { .. })
        ));
    }
}
