//! Steiner-tree heuristic — the minimal connector baseline.
//!
//! The paper's related-work section positions CePS against Steiner trees:
//! exact Steiner is NP-complete, trees suffer the high-degree problem, and a
//! tree *must* span all terminals (no `K_softAND` relaxation). We implement
//! the classic **shortest-path heuristic** (a 2-approximation for metric
//! costs): grow a tree from one terminal, repeatedly attaching the nearest
//! unconnected terminal along a cheapest path to the current tree. Edge
//! cost is `1 / weight`, as in the shortest-path baseline.

use ceps_graph::{algo::dijkstra, CsrGraph, NodeId, Subgraph};

use crate::{BaselineError, Result};

/// The tree's nodes plus the cost it paid.
#[derive(Debug, Clone)]
pub struct SteinerTree {
    /// All nodes on the tree (terminals included).
    pub subgraph: Subgraph,
    /// Sum of `1 / weight` over the tree paths as attached.
    pub cost: f64,
}

/// Shortest-path-heuristic Steiner tree over the `terminals`.
///
/// # Errors
/// [`BaselineError::TooFewQueries`] for fewer than 2 terminals,
/// [`BaselineError::BadQueryNode`] / [`BaselineError::Disconnected`] as
/// applicable.
pub fn steiner_tree(graph: &CsrGraph, terminals: &[NodeId]) -> Result<SteinerTree> {
    if terminals.len() < 2 {
        return Err(BaselineError::TooFewQueries {
            got: terminals.len(),
            need: 2,
        });
    }
    let n = graph.node_count();
    for &t in terminals {
        if t.index() >= n {
            return Err(BaselineError::BadQueryNode {
                node: t,
                node_count: n,
            });
        }
    }

    let mut tree = Subgraph::from_nodes([terminals[0]]);
    let mut remaining: Vec<NodeId> = terminals[1..].to_vec();
    let mut cost = 0.0;

    while !remaining.is_empty() {
        // Cheapest (terminal, attachment path) over all remaining terminals.
        let mut best: Option<(usize, Vec<NodeId>, f64)> = None;
        for (idx, &t) in remaining.iter().enumerate() {
            if tree.contains(t) {
                best = Some((idx, vec![t], 0.0));
                break;
            }
            let run = dijkstra(graph, t, |w| 1.0 / w);
            // Nearest node already on the tree.
            let mut nearest: Option<(NodeId, f64)> = None;
            for v in tree.nodes() {
                let d = run.dist[v.index()];
                if d.is_finite() {
                    match nearest {
                        Some((_, bd)) if bd <= d => {}
                        _ => nearest = Some((v, d)),
                    }
                }
            }
            let Some((attach, d)) = nearest else {
                return Err(BaselineError::Disconnected {
                    a: terminals[0],
                    b: t,
                });
            };
            match best {
                Some((_, _, bc)) if bc <= d => {}
                _ => {
                    let path = run.path_to(t, attach).expect("finite distance has a path");
                    best = Some((idx, path, d));
                }
            }
        }
        let (idx, path, d) = best.expect("non-empty remaining set");
        for v in path {
            tree.insert(v);
        }
        cost += d;
        remaining.swap_remove(idx);
    }

    Ok(SteinerTree {
        subgraph: tree,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::GraphBuilder;

    /// Star: terminals 1, 2, 3 all attach through center 0.
    fn star() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for leaf in 1..=3u32 {
            b.add_edge(NodeId(0), NodeId(leaf), 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn star_terminals_route_through_center() {
        let g = star();
        let t = steiner_tree(&g, &[NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        assert!(t.subgraph.contains(NodeId(0)));
        assert_eq!(t.subgraph.len(), 4);
        assert!(t.subgraph.is_connected(&g));
        // Path 1→0→2 costs 2, then 3 attaches at cost 1.
        assert!((t.cost - 3.0).abs() < 1e-12, "cost {}", t.cost);
    }

    #[test]
    fn tree_spans_all_terminals() {
        let mut b = GraphBuilder::new();
        for (x, y) in [(0, 1), (1, 2), (2, 3), (3, 4), (1, 5), (5, 3)] {
            b.add_edge(NodeId(x), NodeId(y), 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let terminals = [NodeId(0), NodeId(4), NodeId(5)];
        let t = steiner_tree(&g, &terminals).unwrap();
        for &q in &terminals {
            assert!(t.subgraph.contains(q));
        }
        assert!(t.subgraph.is_connected(&g));
    }

    #[test]
    fn validates_inputs() {
        let g = star();
        assert!(matches!(
            steiner_tree(&g, &[NodeId(1)]),
            Err(BaselineError::TooFewQueries { .. })
        ));
        assert!(steiner_tree(&g, &[NodeId(1), NodeId(9)]).is_err());
    }

    #[test]
    fn disconnected_terminals_error() {
        let mut b = GraphBuilder::with_nodes(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        let g = b.build().unwrap();
        assert!(matches!(
            steiner_tree(&g, &[NodeId(0), NodeId(2)]),
            Err(BaselineError::Disconnected { .. })
        ));
    }
}
