//! Microbenchmark: score combination (Eqs. 6–9).
//!
//! Validates the paper's complexity claim for `K_softAND`: the recursion
//! (our Poisson-binomial DP) avoids the `O(2^Q)` enumeration — measurable
//! directly by racing `at_least_k` against `at_least_k_bruteforce`.

use ceps_bench::{workload::Workload, Scale};
use ceps_graph::{normalize::Normalization, Transition};
use ceps_rwr::combine::{at_least_k, at_least_k_bruteforce, combine_scores};
use ceps_rwr::{RwrConfig, RwrEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_combine(c: &mut Criterion) {
    let mut group = c.benchmark_group("combine");

    // DP vs brute force at growing Q (the paper's O(2^k) avoidance).
    for q in [4usize, 8, 12, 16] {
        let probs: Vec<f64> = (0..q)
            .map(|i| (i as f64 + 1.0) / (q as f64 + 2.0))
            .collect();
        let k = q / 2;
        group.bench_with_input(BenchmarkId::new("dp", q), &probs, |b, p| {
            b.iter(|| black_box(at_least_k(p, k)));
        });
        group.bench_with_input(BenchmarkId::new("bruteforce", q), &probs, |b, p| {
            b.iter(|| black_box(at_least_k_bruteforce(p, k)));
        });
    }

    // Whole-graph combination for a realistic score matrix.
    let w = Workload::build(Scale::Small, 2);
    let t = Transition::new(&w.data.graph, Normalization::DegreePenalized { alpha: 0.5 });
    let engine = RwrEngine::new(&t, RwrConfig::default()).unwrap();
    let queries = w.repository.sample(5, 1);
    let scores = engine.solve_many(&queries).unwrap();
    for k in [1usize, 3, 5] {
        group.bench_with_input(BenchmarkId::new("combine_scores_q5", k), &scores, |b, s| {
            b.iter(|| black_box(combine_scores(s, k).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_combine);
criterion_main!(benches);
