//! Microbenchmark: the EXTRACT algorithm (Tables 3–4) in isolation —
//! scores precomputed, extraction cost as a function of budget.

use ceps_bench::{workload::Workload, Scale};
use ceps_core::extract::{extract, ExtractParams, SharingRule};
use ceps_graph::{normalize::Normalization, Transition};
use ceps_rwr::{combine, RwrConfig, RwrEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_extract(c: &mut Criterion) {
    let w = Workload::build(Scale::Small, 3);
    let graph = &w.data.graph;
    let t = Transition::new(graph, Normalization::DegreePenalized { alpha: 0.5 });
    let engine = RwrEngine::new(&t, RwrConfig::default()).unwrap();
    let queries = w.repository.sample(3, 7);
    let scores = engine.solve_many(&queries).unwrap();
    let combined = combine::combine_scores(&scores, 3).unwrap();

    let mut group = c.benchmark_group("extract");
    for budget in [10usize, 20, 40, 80] {
        group.bench_with_input(BenchmarkId::new("and_q3", budget), &budget, |b, &budget| {
            b.iter(|| {
                black_box(extract(ExtractParams {
                    graph,
                    scores: &scores,
                    combined: &combined,
                    k: 3,
                    budget,
                    max_path_len: budget.div_ceil(3).max(2),
                    sharing: SharingRule::FreeSharedNodes,
                }))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extract);
criterion_main!(benches);
