//! Figure 4 as a benchmark: the full pipeline (score → combine → EXTRACT)
//! at the paper's parameter points, so the per-query online cost backing
//! Fig. 4's sweeps is tracked over time.

use ceps_bench::{workload::Workload, Scale};
use ceps_core::{CepsConfig, CepsEngine, QueryType};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let w = Workload::build(Scale::Small, 5);
    let graph = &w.data.graph;

    let mut group = c.benchmark_group("fig4_pipeline");
    group.sample_size(10);
    for q in [2usize, 4] {
        for budget in [20usize, 50] {
            let queries = w.repository.sample(q, 9);
            let cfg = CepsConfig::default()
                .query_type(QueryType::And)
                .budget(budget);
            let engine = CepsEngine::new(graph, cfg).unwrap();
            let id = format!("q{q}_b{budget}");
            group.bench_with_input(BenchmarkId::new("and", id), &queries, |b, qs| {
                b.iter(|| black_box(engine.run(qs).unwrap()));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
