//! Figure 5 as a benchmark: the cost of the normalization step (Eq. 10)
//! itself, and the pipeline at the α values the paper sweeps — the study's
//! point is that the extra normalization is effectively free at query time
//! (it happens once per graph) while changing result quality.

use ceps_bench::{workload::Workload, Scale};
use ceps_core::{CepsConfig, CepsEngine, QueryType};
use ceps_graph::{normalize::Normalization, Transition};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let w = Workload::build(Scale::Small, 6);
    let graph = &w.data.graph;

    let mut group = c.benchmark_group("fig5_normalization");
    group.sample_size(10);

    for alpha in [0.0f64, 0.5, 1.0] {
        group.bench_with_input(
            BenchmarkId::new("build_transition", format!("alpha{alpha}")),
            &alpha,
            |b, &alpha| {
                b.iter(|| {
                    black_box(Transition::new(
                        graph,
                        Normalization::DegreePenalized { alpha },
                    ))
                });
            },
        );

        let queries = w.repository.sample(3, 2);
        let cfg = CepsConfig::default()
            .query_type(QueryType::And)
            .budget(20)
            .alpha(alpha);
        let engine = CepsEngine::new(graph, cfg).unwrap();
        group.bench_with_input(
            BenchmarkId::new("pipeline_q3_b20", format!("alpha{alpha}")),
            &queries,
            |b, qs| {
                b.iter(|| black_box(engine.run(qs).unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
