//! Figure 6 / the 6:1 headline as a benchmark: plain CePS vs Fast CePS
//! with pre-partitioning, measured by Criterion on the same query sets.
//! The ratio of the two medians is this build's answer to the paper's
//! "about 6:1 speedup" claim (the exact factor depends on scale and `p`;
//! EXPERIMENTS.md records the sweep).

use ceps_bench::{workload::Workload, Scale};
use ceps_core::{CepsConfig, CepsEngine, FastCeps, QueryType};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let w = Workload::build(Scale::Small, 8);
    let graph = &w.data.graph;
    let cfg = CepsConfig::default().query_type(QueryType::And).budget(20);
    let queries = w.repository.sample(3, 4);

    let mut group = c.benchmark_group("fig6_speedup");
    group.sample_size(10);

    let full = CepsEngine::new(graph, cfg).unwrap();
    group.bench_with_input(
        BenchmarkId::new("full_graph", "q3_b20"),
        &queries,
        |b, qs| {
            b.iter(|| black_box(full.run(qs).unwrap()));
        },
    );

    for p in [4usize, 16] {
        // Partitioning is the offline Step 0 — outside the measured loop.
        let fast = FastCeps::new(graph, cfg, p, 13).unwrap();
        group.bench_with_input(
            BenchmarkId::new(format!("fast_p{p}"), "q3_b20"),
            &queries,
            |b, qs| {
                b.iter(|| black_box(fast.run(qs).unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
