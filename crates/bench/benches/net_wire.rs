//! Microbenchmark: the `ceps-wire/v1` service boundary's own cost.
//!
//! The wire must stay negligible next to a query's RWR solve (tens of
//! milliseconds on paper-scale graphs), so the pinned quantities are the
//! per-frame codec cost — encode + chunked decode of a realistic `Scores`
//! reply — and the full in-process round trip through the live server
//! (accept loop, worker dispatch, admission gate, obs counters), measured
//! on `Ping` so the pipeline itself stays out of the number.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ceps_core::{CepsConfig, CepsServiceBuilder, ReplyMember, ServeReply, ServeRequest};
use ceps_graph::{GraphBuilder, NodeId};
use ceps_net::wire::encode_frame;
use ceps_net::{in_proc, CepsClient, CepsServer, Framed, Reply, Request, ServerConfig};

/// A reply shaped like a budget-20 extraction on a labeled graph.
fn typical_reply() -> Reply {
    Reply::Scores {
        id: 42,
        reply: ServeReply {
            k: 3,
            members: (0..20)
                .map(|i| ReplyMember {
                    id: NodeId(i * 37),
                    score: 1.0 / f64::from(i + 1),
                    is_query: i < 3,
                })
                .collect(),
            paths: Vec::new(),
        },
    }
}

struct Replayer {
    bytes: Vec<u8>,
    pos: usize,
}

impl std::io::Read for Replayer {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        // 1 KiB slices: realistic socket-read granularity for small frames.
        let n = 1024.min(buf.len()).min(self.bytes.len() - self.pos);
        buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos = (self.pos + n) % self.bytes.len();
        Ok(n)
    }
}

impl std::io::Write for Replayer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn bench_net_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_wire");

    let request = Request::Query {
        id: 7,
        req: ServeRequest::new(vec![NodeId(11), NodeId(1234), NodeId(9876)]),
    };
    let reply = typical_reply();
    group.bench_function("encode_query_frame", |b| {
        b.iter(|| black_box(encode_frame(black_box(&request))))
    });
    group.bench_function("encode_scores_frame", |b| {
        b.iter(|| black_box(encode_frame(black_box(&reply))))
    });

    // Decode: one pre-rendered Scores frame replayed through the chunked
    // reader, so the cost includes buffer reassembly and JSON parsing.
    let frame = encode_frame(&reply);
    group.bench_function("decode_scores_frame", |b| {
        let mut framed = Framed::new(
            Replayer {
                bytes: frame.clone(),
                pos: 0,
            },
            1 << 20,
        );
        b.iter(|| {
            let r: Reply = framed.recv().unwrap().expect("frame");
            black_box(r);
        })
    });

    // Full server round trip on the in-process transport.
    let mut b = GraphBuilder::new();
    for (x, y) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
        b.add_edge(NodeId(x), NodeId(y), 1.0).unwrap();
    }
    let service = CepsServiceBuilder::new()
        .cache_bytes(1 << 20)
        .workers(1)
        .build_from_graph(b.build().unwrap(), CepsConfig::default().budget(2))
        .unwrap();
    let server = CepsServer::new(service, ServerConfig::default());
    let (mut transport, connector) = in_proc();
    std::thread::scope(|s| {
        let server = &server;
        s.spawn(move || server.serve(&mut transport).unwrap());
        let mut client = CepsClient::from_conn(Box::new(connector.connect().unwrap()));

        group.bench_function("ping_round_trip", |b| {
            b.iter(|| black_box(client.ping().unwrap()))
        });
        group.bench_function("query_round_trip_cached", |b| {
            let req = ServeRequest::new(vec![NodeId(0), NodeId(4)]);
            b.iter(|| black_box(client.request(black_box(&req)).unwrap()))
        });

        client.shutdown().unwrap();
        group.finish();
    });
}

criterion_group!(benches, bench_net_wire);
criterion_main!(benches);
