//! Microbenchmark: `ceps-obs` instrumentation overhead.
//!
//! The disabled path is the one every production query pays, so it is the
//! one pinned here: with no recorder installed, `span()` enter/exit and
//! `counter()` must cost one relaxed atomic load and a branch (single-digit
//! nanoseconds). The enabled path is measured alongside for contrast — it
//! pays a timestamp pair, a thread-local push/pop and a sharded-map update.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");

    // Disabled path: the cost added to every uninstrumented run.
    ceps_obs::uninstall_recorder();
    group.bench_function("span_disabled", |b| {
        b.iter(|| {
            let guard = ceps_obs::span(black_box("bench.disabled"));
            black_box(&guard);
        });
    });
    group.bench_function("counter_disabled", |b| {
        b.iter(|| ceps_obs::counter(black_box("bench.counter"), 1));
    });
    group.bench_function("record_disabled", |b| {
        b.iter(|| ceps_obs::record(black_box("bench.hist"), 1.5));
    });

    // Enabled path: what `--profile` runs pay per span.
    ceps_obs::install_recorder();
    ceps_obs::reset();
    group.bench_function("span_enabled", |b| {
        b.iter(|| {
            let guard = ceps_obs::span(black_box("bench.enabled"));
            black_box(&guard);
        });
    });
    group.bench_function("span_enabled_nested", |b| {
        b.iter(|| {
            let outer = ceps_obs::span(black_box("bench.outer"));
            let inner = ceps_obs::span(black_box("bench.inner"));
            black_box((&outer, &inner));
        });
    });
    group.bench_function("counter_enabled", |b| {
        b.iter(|| ceps_obs::counter(black_box("bench.counter"), 1));
    });
    group.bench_function("record_enabled", |b| {
        b.iter(|| ceps_obs::record(black_box("bench.hist"), 1.5));
    });
    ceps_obs::uninstall_recorder();

    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
