//! Microbenchmark: the multilevel partitioner — Fast CePS's one-time
//! offline cost (Table 5, Step 0).

use ceps_bench::{workload::Workload, Scale};
use ceps_partition::{partition_graph, PartitionConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);

    let w = Workload::build(Scale::Small, 4);
    for k in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("small", k), &k, |b, &k| {
            let cfg = PartitionConfig {
                seed: 1,
                ..PartitionConfig::with_parts(k)
            };
            b.iter(|| black_box(partition_graph(&w.data.graph, &cfg).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
