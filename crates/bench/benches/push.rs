//! Microbenchmark: forward-push vs power-iteration RWR across thresholds —
//! the algorithmic exploitation of the score skew Sec. 6 observes, compared
//! with the paper's fixed-`m` iteration.

use ceps_bench::{workload::Workload, Scale};
use ceps_graph::{normalize::Normalization, Transition};
use ceps_rwr::{push::forward_push, RwrConfig, RwrEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_push(c: &mut Criterion) {
    let mut group = c.benchmark_group("push_vs_iterate");
    group.sample_size(20);

    for (label, scale) in [("small", Scale::Small), ("medium", Scale::Medium)] {
        let w = Workload::build(scale, 7);
        let t = Transition::new(&w.data.graph, Normalization::DegreePenalized { alpha: 0.5 });
        let q = w.repository.sample(1, 0)[0];

        group.bench_with_input(BenchmarkId::new("iterate_m50", label), &t, |b, t| {
            let engine = RwrEngine::new(t, RwrConfig::default()).unwrap();
            b.iter(|| black_box(engine.solve_single(q).unwrap()));
        });
        for eps_exp in [4i32, 6, 8] {
            let eps = 10f64.powi(-eps_exp);
            group.bench_with_input(
                BenchmarkId::new(format!("push_1e-{eps_exp}"), label),
                &t,
                |b, t| {
                    b.iter(|| black_box(forward_push(t, 0.5, q, eps).unwrap()));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_push);
criterion_main!(benches);
