//! Microbenchmark: the batched block-SpMM RWR kernel against the scalar
//! per-source loop it replaced.
//!
//! Three contenders per query count `Q`:
//!
//! * `scalar_loop` — `Q` independent `solve_single` passes
//!   ([`ceps_rwr::RwrEngine::solve_many_unbatched`]), the pre-batching
//!   multi-source path: each pass re-reads the whole CSR structure;
//! * `block` — the batched kernel with `threads = 1`: one CSR sweep per
//!   iteration feeds all `Q` columns of the node-major block;
//! * `par_block` — the same kernel with the sparse product row-chunked
//!   across scoped worker threads (only wins on multi-core hosts).

use ceps_bench::{workload::Workload, Scale};
use ceps_graph::{normalize::Normalization, NodeId, Transition};
use ceps_rwr::{RwrConfig, RwrEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_rwr_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("rwr_block");
    group.sample_size(10);

    let w = Workload::build(Scale::Medium, 1);
    let t = Transition::new(&w.data.graph, Normalization::DegreePenalized { alpha: 0.5 });
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    for q in [2usize, 5, 10] {
        let queries: Vec<NodeId> = w.repository.sample(q, q as u64);

        group.bench_with_input(BenchmarkId::new("scalar_loop", q), &queries, |b, qs| {
            let cfg = RwrConfig {
                threads: 1,
                ..Default::default()
            };
            let engine = RwrEngine::new(&t, cfg).unwrap();
            b.iter(|| black_box(engine.solve_many_unbatched(qs).unwrap()));
        });

        group.bench_with_input(BenchmarkId::new("block", q), &queries, |b, qs| {
            let cfg = RwrConfig {
                threads: 1,
                ..Default::default()
            };
            let engine = RwrEngine::new(&t, cfg).unwrap();
            b.iter(|| black_box(engine.solve_many(qs).unwrap()));
        });

        group.bench_with_input(BenchmarkId::new("par_block", q), &queries, |b, qs| {
            let cfg = RwrConfig {
                threads,
                ..Default::default()
            };
            let engine = RwrEngine::new(&t, cfg).unwrap();
            b.iter(|| black_box(engine.solve_many(qs).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rwr_block);
criterion_main!(benches);
