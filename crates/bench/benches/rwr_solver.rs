//! Microbenchmark: the RWR power-iteration solver (Eq. 4) — the dominant
//! cost of online CePS (Sec. 6 motivates Fast CePS entirely from it).

use ceps_bench::{workload::Workload, Scale};
use ceps_graph::{normalize::Normalization, NodeId, Transition};
use ceps_rwr::{precomputed::PrecomputedRwr, RwrConfig, RwrEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_rwr(c: &mut Criterion) {
    let mut group = c.benchmark_group("rwr_solver");
    group.sample_size(20);

    for (label, scale) in [("tiny", Scale::Tiny), ("small", Scale::Small)] {
        let w = Workload::build(scale, 1);
        let t = Transition::new(&w.data.graph, Normalization::DegreePenalized { alpha: 0.5 });
        let q = w.repository.sample(1, 0)[0];

        group.bench_with_input(BenchmarkId::new("single_source_m50", label), &t, |b, t| {
            let engine = RwrEngine::new(t, RwrConfig::default()).unwrap();
            b.iter(|| black_box(engine.solve_single(q).unwrap()));
        });

        let queries: Vec<NodeId> = w.repository.sample(4, 3);
        group.bench_with_input(BenchmarkId::new("four_sources_seq", label), &t, |b, t| {
            let engine = RwrEngine::new(t, RwrConfig::default()).unwrap();
            b.iter(|| black_box(engine.solve_many(&queries).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("four_sources_par", label), &t, |b, t| {
            let cfg = RwrConfig {
                threads: 4,
                ..Default::default()
            };
            let engine = RwrEngine::new(t, cfg).unwrap();
            b.iter(|| black_box(engine.solve_many(&queries).unwrap()));
        });
    }

    // The paper's Sec. 6 "obvious" speedup: precompute (1-c)(I-cW)^-1
    // offline, then a query is a column read. Compare the online costs.
    let w = Workload::build(Scale::Tiny, 2);
    let t = Transition::new(&w.data.graph, Normalization::DegreePenalized { alpha: 0.5 });
    let q = w.repository.sample(1, 5)[0];
    let pre = PrecomputedRwr::new(&t, 0.5, 4096).unwrap();
    group.bench_function("precomputed_query_tiny", |b| {
        b.iter(|| black_box(pre.query(q).unwrap()));
    });
    group.bench_function("iterated_query_tiny", |b| {
        let engine = RwrEngine::new(&t, RwrConfig::default()).unwrap();
        b.iter(|| black_box(engine.solve_single(q).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_rwr);
criterion_main!(benches);
