//! Experiment driver: regenerates every figure of the paper's evaluation.
//!
//! ```text
//! experiments [fig4] [fig5] [fig6] [cases] [all] [check]
//!             [--scale tiny|small|medium|large|paper]
//!             [--sweep-scale tiny|small|medium|large|paper]
//!             [--trials N] [--seed S] [--out DIR] [--quick]
//!             [--baseline DIR] [--current DIR] [--tolerance F]
//! ```
//!
//! Prints each figure as an aligned table and writes CSV + JSON into the
//! output directory (default `results/`). `--quick` shrinks the sweeps for
//! smoke runs. `--profile` installs the `ceps-obs` recorder and writes the
//! aggregated span/counter snapshot to `OBS_profile.json` in the output
//! directory. Progress lines go to stderr via the `ceps-obs` logger
//! (`CEPS_LOG=warn` silences them); stdout carries only tables and result
//! paths.
//!
//! `loadgen` (opt-in, like `scaling`) boots a wire server over the
//! in-process transport and runs the `ceps-load` SLO capacity search
//! against it, writing the throughput-latency curve and the knee into
//! `BENCH_loadgen.json`.
//!
//! `check` runs the regression gates instead of any benchmark: first the
//! perf gate, comparing `BENCH_rwr.json` / `BENCH_serve.json` /
//! `BENCH_loadgen.json` under
//! `--current` (default: the `--out` directory) against the committed
//! baselines under `--baseline` (default `results/`), then the `f32`
//! precision quality gate (full pipeline at both coefficient precisions on
//! the `--scale` workload). It prints a pass/fail table per gate and exits
//! non-zero if either fails. `--tolerance F` scales every perf band by `F`.
//!
//! The `rwr` benchmark additionally emits a nodes × threads scaling table:
//! every preset from `small` up to `--sweep-scale` (default: `--scale`) is
//! generated and timed at each worker count, with operator-footprint and
//! peak-RSS columns. Pass `--sweep-scale paper` for the full ~315K-node
//! story.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use ceps_bench::figures::{
    ablation, baselines, case_studies, fig4, fig5, fig6, injection, loadgen, rwr_bench, scaling,
    serve,
};
use ceps_bench::report::{write_json, Table};
use ceps_bench::workload::Workload;
use ceps_bench::Scale;

struct Options {
    figures: Vec<String>,
    scale: Scale,
    sweep_scale: Option<Scale>,
    trials: Option<usize>,
    seed: u64,
    out: PathBuf,
    quick: bool,
    threads: usize,
    repeat: Option<f64>,
    profile: bool,
    baseline: PathBuf,
    current: Option<PathBuf>,
    tolerance: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        figures: Vec::new(),
        scale: Scale::Small,
        sweep_scale: None,
        trials: None,
        seed: 42,
        out: PathBuf::from("results"),
        quick: false,
        threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        repeat: None,
        profile: false,
        baseline: PathBuf::from("results"),
        current: None,
        tolerance: 1.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "fig4" | "fig5" | "fig6" | "cases" | "inject" | "ablation" | "baselines"
            | "scaling" | "rwr" | "serve" | "loadgen" | "check" | "all" => opts.figures.push(arg),
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                opts.scale = Scale::parse(&v).ok_or_else(|| format!("unknown scale {v:?}"))?;
            }
            "--sweep-scale" => {
                let v = args.next().ok_or("--sweep-scale needs a value")?;
                opts.sweep_scale =
                    Some(Scale::parse(&v).ok_or_else(|| format!("unknown scale {v:?}"))?);
            }
            "--trials" => {
                let v = args.next().ok_or("--trials needs a value")?;
                opts.trials = Some(v.parse().map_err(|_| format!("bad trial count {v:?}"))?);
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--out" => {
                opts.out = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--quick" => opts.quick = true,
            "--profile" => opts.profile = true,
            "--repeat" => {
                let v = args.next().ok_or("--repeat needs a value")?;
                let r: f64 = v.parse().map_err(|_| format!("bad repeat rate {v:?}"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("repeat rate {r} must lie in [0, 1]"));
                }
                opts.repeat = Some(r);
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                opts.threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
            }
            "--baseline" => {
                opts.baseline = PathBuf::from(args.next().ok_or("--baseline needs a value")?);
            }
            "--current" => {
                opts.current = Some(PathBuf::from(args.next().ok_or("--current needs a value")?));
            }
            "--tolerance" => {
                let v = args.next().ok_or("--tolerance needs a value")?;
                let t: f64 = v.parse().map_err(|_| format!("bad tolerance {v:?}"))?;
                if !t.is_finite() || t <= 0.0 {
                    return Err(format!("tolerance {t} must be a positive multiplier"));
                }
                opts.tolerance = t;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.figures.is_empty() {
        opts.figures.push("all".into());
    }
    Ok(opts)
}

/// Run metadata (git SHA, thread count, preset, timestamp) embedded in
/// every emitted JSON artifact so results are attributable and diffable.
fn run_meta(opts: &Options) -> serde_json::Value {
    let m = ceps_obs::RunMeta::collect(&opts.scale.to_string(), "experiments");
    serde_json::json!({
        "git_sha": m.git_sha,
        "threads": opts.threads,
        "preset": m.preset,
        "timestamp": m.timestamp,
    })
}

fn main() -> ExitCode {
    // Progress narration defaults to Info for this chatty binary; CEPS_LOG
    // still overrides (e.g. CEPS_LOG=warn for quiet CI logs).
    ceps_obs::init_log_default(ceps_obs::Level::Info);
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            ceps_obs::error!("error: {e}");
            eprintln!(
                "usage: experiments [fig4|fig5|fig6|cases|inject|ablation|baselines|scaling|rwr|serve|loadgen|check|all]... \
                 [--scale tiny|small|medium|large|paper] \
                 [--sweep-scale tiny|small|medium|large|paper] \
                 [--trials N] [--seed S] \
                 [--out DIR] [--quick] [--threads N] [--repeat R] [--profile] \
                 [--baseline DIR] [--current DIR] [--tolerance F]"
            );
            return ExitCode::FAILURE;
        }
    };
    if opts.profile {
        ceps_obs::install_recorder();
        ceps_obs::reset();
    }

    // The gates run before (and instead of) any benchmark: the perf gate
    // only diffs already emitted artifacts; the precision gate builds one
    // `--scale` workload of its own. Like `scaling`, `check` is opt-in and
    // not part of `all`.
    if opts.figures.iter().any(|x| x == "check") {
        let current = opts.current.clone().unwrap_or_else(|| opts.out.clone());
        let report = ceps_bench::regression::check(
            &opts.baseline,
            &current,
            &ceps_bench::regression::default_gates(),
            opts.tolerance,
        );
        print!("{}", report.render());
        let quality = ceps_bench::quality::precision_check(opts.scale, opts.seed);
        println!("{}", quality.table.render());
        println!(
            "precision gate: max |diff| = {:.3e} (bound {:.1e}) — {}",
            quality.max_abs_diff,
            ceps_bench::quality::MAX_SCORE_ABS_DIFF,
            if quality.passed { "PASS" } else { "FAIL" }
        );
        return if report.passed() && quality.passed {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let wants =
        |f: &str| opts.figures.iter().any(|x| x == f) || opts.figures.iter().any(|x| x == "all");

    ceps_obs::info!(
        "experiment run: scale = {}, seed = {}, output = {}",
        opts.scale,
        opts.seed,
        opts.out.display()
    );
    let t0 = Instant::now();
    let workload = Workload::build(opts.scale, opts.seed);
    ceps_obs::info!(
        "graph: {} nodes, {} edges (generated in {:.2?})",
        workload.node_count(),
        workload.edge_count(),
        t0.elapsed()
    );

    let mut tables: Vec<Table> = Vec::new();

    if wants("cases") {
        let c2 = case_studies::fig2_connection_study(&workload, opts.seed);
        print!("{}", c2.report);
        println!();
        let c1 = case_studies::fig1_softand_study(&workload, opts.seed);
        print!("{}", c1.report);
        println!();
        let c3 = case_studies::fig3_and_study(&workload, opts.seed);
        print!("{}", c3.report);
        println!();
    }

    if wants("fig4") {
        let mut params = fig4::Fig4Params {
            seed: opts.seed,
            ..Default::default()
        };
        if let Some(t) = opts.trials {
            params.trials = t;
        }
        if opts.quick {
            params.budgets = vec![10, 30, 60];
            params.trials = params.trials.min(3);
        }
        let t = Instant::now();
        let (a, b) = fig4::run(&workload, &params);
        println!("{}", a.render());
        println!("{}", b.render());
        // Supplement: the same sweep without degree penalization, to
        // separate the normalization's effect from EXTRACT's (the ERatio
        // magnitudes depend strongly on alpha — see EXPERIMENTS.md).
        let params0 = fig4::Fig4Params {
            alpha: 0.0,
            ..params
        };
        let (a0, b0) = fig4::run(&workload, &params0);
        println!("{}", a0.render());
        println!("{}", b0.render());
        ceps_obs::info!("fig4 took {:.2?}", t.elapsed());
        tables.push(a);
        tables.push(b);
        tables.push(a0);
        tables.push(b0);
    }

    if wants("fig5") {
        let mut params = fig5::Fig5Params {
            seed: opts.seed,
            ..Default::default()
        };
        if let Some(t) = opts.trials {
            params.trials = t;
        }
        if opts.quick {
            params.alphas = vec![0.0, 0.5, 1.0];
            params.trials = params.trials.min(3);
        }
        let t = Instant::now();
        let out = fig5::run(&workload, &params);
        println!("{}", out.nratio_self.render());
        println!("{}", out.eratio_self.render());
        println!("{}", out.nratio_cross.render());
        println!("{}", out.eratio_cross.render());
        ceps_obs::info!("fig5 took {:.2?}", t.elapsed());
        tables.push(out.nratio_self);
        tables.push(out.eratio_self);
        tables.push(out.nratio_cross);
        tables.push(out.eratio_cross);
    }

    if wants("fig6") {
        let mut params = fig6::Fig6Params {
            seed: opts.seed,
            ..Default::default()
        };
        if let Some(t) = opts.trials {
            params.trials = t;
        }
        if opts.quick {
            params.partition_counts = vec![1, 4, 16];
            params.trials = params.trials.min(2);
        }
        let t = Instant::now();
        let out = fig6::run(&workload, &params);
        println!("{}", out.quality_vs_time.render());
        println!("{}", out.time_vs_partitions.render());
        println!("{}", out.headline.render());
        println!("{}", out.offline.render());
        ceps_obs::info!("fig6 took {:.2?}", t.elapsed());
        tables.push(out.quality_vs_time);
        tables.push(out.time_vs_partitions);
        tables.push(out.headline);
        tables.push(out.offline);
    }

    if wants("inject") {
        let mut params = injection::InjectionParams {
            seed: opts.seed,
            ..Default::default()
        };
        if let Some(t) = opts.trials {
            params.trials = t;
        }
        if opts.quick {
            params.strengths = vec![1.0, 4.0];
            params.trials = params.trials.min(3);
        }
        let t = Instant::now();
        let out = injection::run(&workload, &params);
        println!("{}", out.recall.render());
        println!("{}", out.top1.render());
        ceps_obs::info!("inject took {:.2?}", t.elapsed());
        tables.push(out.recall);
        tables.push(out.top1);
    }

    if wants("baselines") {
        let mut params = baselines::BaselineParams {
            seed: opts.seed,
            ..Default::default()
        };
        if let Some(t) = opts.trials {
            params.trials = t;
        }
        if opts.quick {
            params.query_counts = vec![2];
            params.trials = params.trials.min(3);
        }
        let t = Instant::now();
        let table = baselines::run(&workload, &params);
        println!("{}", table.render());
        ceps_obs::info!("baselines took {:.2?}", t.elapsed());
        tables.push(table);
    }

    if wants("ablation") {
        let mut params = ablation::AblationParams {
            seed: opts.seed,
            ..Default::default()
        };
        if let Some(t) = opts.trials {
            params.trials = t;
        }
        if opts.quick {
            params.budgets = vec![10, 40];
            params.trials = params.trials.min(3);
        }
        let t = Instant::now();
        let table = ablation::run(&workload, &params);
        println!("{}", table.render());
        ceps_obs::info!("ablation took {:.2?}", t.elapsed());
        tables.push(table);
    }

    if wants("rwr") {
        let mut params = rwr_bench::RwrBenchParams {
            seed: opts.seed,
            threads: opts.threads,
            ..Default::default()
        };
        if let Some(t) = opts.trials {
            params.trials = t;
        }
        if opts.quick {
            params.query_counts = vec![2, 5];
            params.trials = params.trials.min(2);
        }
        let t = Instant::now();
        let table = rwr_bench::run(&workload, &params);
        println!("{}", table.render());
        let scaling = rwr_bench::thread_scaling(&workload, &params);
        println!("{}", scaling.render());
        // Nodes × threads sweep: every preset from small up to
        // `--sweep-scale` (default: `--scale`); quick mode caps it at
        // small. The sweep generates its own graphs per scale.
        let max_sweep = opts.sweep_scale.unwrap_or(opts.scale);
        let max_sweep = if opts.quick {
            max_sweep.min(Scale::Small)
        } else {
            max_sweep
        };
        let mut sweep_scales: Vec<Scale> =
            [Scale::Small, Scale::Medium, Scale::Large, Scale::Paper]
                .into_iter()
                .filter(|s| *s <= max_sweep)
                .collect();
        if sweep_scales.is_empty() {
            sweep_scales.push(max_sweep);
        }
        let nodes_scaling = rwr_bench::node_thread_scaling(&sweep_scales, &params);
        println!("{}", nodes_scaling.render());
        ceps_obs::info!("rwr took {:.2?}", t.elapsed());
        // The kernel benchmark gets its own JSON artifact (CI uploads it),
        // in addition to riding along in the combined experiments.json.
        // The headline table goes first: the regression gate resolves its
        // columns from the first table that has them.
        let meta = serde_json::json!({
            "scale": opts.scale.to_string(),
            "seed": opts.seed,
            "threads": params.threads,
            "scaling_threads": params.scaling_threads,
            "sweep_scales": sweep_scales.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            "trials": params.trials,
            "nodes": workload.node_count(),
            "edges": workload.edge_count(),
            "run": run_meta(&opts),
        });
        let artifact = [table.clone(), scaling.clone(), nodes_scaling.clone()];
        match write_json(&opts.out, "BENCH_rwr", &meta, &artifact) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => {
                ceps_obs::error!("error writing JSON: {e}");
                return ExitCode::FAILURE;
            }
        }
        tables.push(table);
        tables.push(scaling);
        tables.push(nodes_scaling);
    }

    if wants("serve") {
        let mut params = serve::ServeParams {
            seed: opts.seed,
            workers: opts.threads,
            ..Default::default()
        };
        if let Some(r) = opts.repeat {
            params.repeats = vec![r];
        }
        if opts.quick {
            params.requests = 12;
            if opts.repeat.is_none() {
                params.repeats = vec![0.0, 0.8];
            }
        }
        let t = Instant::now();
        let (table, stage_table) = serve::run(&workload, &params);
        println!("{}", table.render());
        println!("{}", stage_table.render());
        ceps_obs::info!("serve took {:.2?}", t.elapsed());
        // The serving benchmark gets its own JSON artifact (CI uploads it),
        // like the RWR kernel benchmark.
        let meta = serde_json::json!({
            "scale": opts.scale.to_string(),
            "seed": opts.seed,
            "workers": params.workers,
            "requests": params.requests,
            "queries_per": params.queries_per,
            "cache_bytes": params.cache_bytes,
            "nodes": workload.node_count(),
            "edges": workload.edge_count(),
            "run": run_meta(&opts),
        });
        let serve_tables = [table.clone(), stage_table.clone()];
        match write_json(&opts.out, "BENCH_serve", &meta, &serve_tables) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => {
                ceps_obs::error!("error writing JSON: {e}");
                return ExitCode::FAILURE;
            }
        }
        tables.push(table);
        tables.push(stage_table);
    }

    if opts.figures.iter().any(|x| x == "loadgen") {
        // Loadgen is opt-in (not part of "all"): each capacity probe is a
        // multi-second wall-clock run, which dwarfs the other runners.
        let mut params = loadgen::LoadgenParams {
            seed: opts.seed,
            workers: opts.threads,
            ..Default::default()
        };
        if let Some(r) = opts.repeat {
            params.repeat = r;
        }
        if opts.quick {
            params.duration_s = 1.5;
            params.warmup_s = 0.5;
            params.refine_steps = 1;
            params.max_rps = 2_000.0;
        }
        let t = Instant::now();
        let (headline, curve_table, curve) = loadgen::run(&workload, &params);
        println!("{}", headline.render());
        println!("{}", curve_table.render());
        match curve.knee_rps {
            Some(knee) => println!("knee: {knee:.1} rps (SLO p99 <= {} ms)", params.slo.p99_ms),
            None => println!("knee: none — the starting rate already violated the SLO"),
        }
        ceps_obs::info!("loadgen took {:.2?}", t.elapsed());
        // The headline table comes first on purpose: the regression gate
        // resolves its columns from the first table that has them.
        let meta = serde_json::json!({
            "scale": opts.scale.to_string(),
            "seed": opts.seed,
            "workers": params.workers,
            "duration_s": params.duration_s,
            "connections": params.connections,
            "slo_p99_ms": params.slo.p99_ms,
            "slo_max_error_rate": params.slo.max_error_rate,
            "knee_rps": curve.knee_rps,
            "nodes": workload.node_count(),
            "edges": workload.edge_count(),
            "run": run_meta(&opts),
        });
        let loadgen_tables = [headline.clone(), curve_table.clone()];
        match write_json(&opts.out, "BENCH_loadgen", &meta, &loadgen_tables) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => {
                ceps_obs::error!("error writing JSON: {e}");
                return ExitCode::FAILURE;
            }
        }
        tables.push(headline);
        tables.push(curve_table);
    }

    if opts.figures.iter().any(|x| x == "scaling") {
        // Scaling is opt-in (not part of "all"): it generates several
        // graphs of its own, which dwarfs the other runners.
        let mut params = scaling::ScalingParams {
            seed: opts.seed,
            ..Default::default()
        };
        params.scales = vec![
            ceps_bench::Scale::Tiny,
            ceps_bench::Scale::Small,
            ceps_bench::Scale::Medium,
            ceps_bench::Scale::Large,
        ];
        if opts.scale == ceps_bench::Scale::Paper {
            params.scales.push(ceps_bench::Scale::Paper);
        }
        if opts.quick {
            params.scales = vec![ceps_bench::Scale::Tiny, ceps_bench::Scale::Small];
            params.trials = 1;
        }
        let t = Instant::now();
        let table = scaling::run(&params);
        println!("{}", table.render());
        ceps_obs::info!("scaling took {:.2?}", t.elapsed());
        tables.push(table);
    }

    // Persist machine-readable outputs.
    for t in &tables {
        match t.write_csv(&opts.out) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => {
                ceps_obs::error!("error writing CSV: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if !tables.is_empty() {
        let meta = serde_json::json!({
            "scale": opts.scale.to_string(),
            "seed": opts.seed,
            "nodes": workload.node_count(),
            "edges": workload.edge_count(),
            "quick": opts.quick,
            "run": run_meta(&opts),
        });
        match write_json(&opts.out, "experiments", &meta, &tables) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => {
                ceps_obs::error!("error writing JSON: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if opts.profile {
        let mut meta = ceps_obs::RunMeta::collect(&opts.scale.to_string(), "experiments");
        meta.threads = opts.threads;
        let path = opts.out.join("OBS_profile.json");
        let write = std::fs::create_dir_all(&opts.out)
            .and_then(|()| std::fs::write(&path, ceps_obs::snapshot().to_json(&meta)));
        match write {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                ceps_obs::error!("error writing profile: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ceps_obs::info!("total {:.2?}", t0.elapsed());
    ExitCode::SUCCESS
}
