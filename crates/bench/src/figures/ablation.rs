//! Ablation study: what the design choices of EXTRACT buy.
//!
//! DESIGN.md calls out two EXTRACT design decisions worth ablating:
//!
//! 1. **Node sharing** (Table 3's `s' = s` rule): nodes already in `H` are
//!    free for later paths, so paths overlap and the budget stretches
//!    further. The ablation recomputes extraction with
//!    [`SharingRule::CountAllNodes`] and compares captured goodness.
//! 2. **Connectivity itself**: EXTRACT spends budget on connector nodes a
//!    pure top-`b` selection (the unconstrained maximizer of Eq. 2) would
//!    skip. Comparing `g(H)` against the top-`b` bound quantifies the
//!    "price of connectivity" the paper accepts for interpretability.

use ceps_core::extract::{extract, ExtractParams, SharingRule};
use ceps_core::{CepsConfig, CepsEngine, QueryType};
use ceps_graph::Subgraph;

use crate::report::Table;
use crate::workload::{stats, Workload};

/// Parameters for the ablation sweep.
#[derive(Debug, Clone)]
pub struct AblationParams {
    /// Budgets to sweep.
    pub budgets: Vec<usize>,
    /// Query count.
    pub query_count: usize,
    /// Trials per budget.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for AblationParams {
    fn default() -> Self {
        AblationParams {
            budgets: vec![10, 20, 40],
            query_count: 3,
            trials: 8,
            seed: 77,
        }
    }
}

/// Runs the ablation; the table reports mean captured goodness (as a
/// fraction of the top-`b` upper bound) for the paper's rule, the
/// no-sharing ablation, and the disconnected top-`b` selection itself.
pub fn run(workload: &Workload, params: &AblationParams) -> Table {
    let graph = &workload.data.graph;
    let mut table = Table::new(
        "Ablation: captured goodness vs top-b bound (AND)",
        vec![
            "budget".into(),
            "sharing (paper)".into(),
            "no sharing".into(),
            "top-b (disconnected)".into(),
            "components (paper)".into(),
            "components (top-b)".into(),
        ],
    );

    for &budget in &params.budgets {
        let cfg = CepsConfig::default()
            .query_type(QueryType::And)
            .budget(budget);
        let engine = CepsEngine::new(graph, cfg).expect("valid config");
        let k = params.query_count;
        let len = cfg.effective_path_len(k);

        let mut shared = Vec::new();
        let mut unshared = Vec::new();
        let mut topb = Vec::new();
        let mut comp_paper = Vec::new();
        let mut comp_topb = Vec::new();
        for t in 0..params.trials {
            let seed = params.seed ^ (budget as u64) << 24 ^ t as u64;
            let queries = workload.repository.sample(params.query_count, seed);
            let (scores, combined) = engine.combined_scores(&queries).expect("scores");

            let capture =
                |sub: &Subgraph| -> f64 { sub.nodes().map(|v| combined[v.index()]).sum() };

            // Upper bound: best b + Q nodes by score, connectivity ignored.
            let mut order: Vec<usize> = (0..combined.len()).collect();
            order.sort_by(|&a, &b| combined[b].total_cmp(&combined[a]).then(a.cmp(&b)));
            let top: Subgraph = order
                .iter()
                .take(budget + queries.len())
                .map(|&i| ceps_graph::NodeId::from_index(i))
                .collect();
            let bound = capture(&top).max(f64::MIN_POSITIVE);

            for (rule, bucket) in [
                (SharingRule::FreeSharedNodes, &mut shared),
                (SharingRule::CountAllNodes, &mut unshared),
            ] {
                let out = extract(ExtractParams {
                    graph,
                    scores: &scores,
                    combined: &combined,
                    k,
                    budget,
                    max_path_len: len,
                    sharing: rule,
                });
                bucket.push(capture(&out.subgraph) / bound);
                if rule == SharingRule::FreeSharedNodes {
                    comp_paper.push(out.subgraph.component_count(graph) as f64);
                }
            }
            topb.push(1.0);
            comp_topb.push(top.component_count(graph) as f64);
        }
        table.push_row(vec![
            budget as f64,
            stats(&shared).mean,
            stats(&unshared).mean,
            stats(&topb).mean,
            stats(&comp_paper).mean,
            stats(&comp_topb).mean,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn paper_rule_never_loses_to_no_sharing_and_connects_better_than_topb() {
        let workload = Workload::build(Scale::Tiny, 21);
        let params = AblationParams {
            budgets: vec![8],
            query_count: 2,
            trials: 5,
            seed: 3,
        };
        let table = run(&workload, &params);
        let row = &table.rows[0];
        let (shared, unshared, comp_paper, comp_topb) = (row[1], row[2], row[4], row[5]);
        // Captured goodness is bounded by the top-b bound...
        assert!(shared <= 1.0 + 1e-9);
        // ...sharing captures at least roughly as much as not sharing...
        assert!(
            shared + 0.05 >= unshared,
            "sharing {shared} vs unshared {unshared}"
        );
        // ...and the paper's output is structurally tighter than top-b.
        assert!(comp_paper <= comp_topb + 1e-9);
    }
}
