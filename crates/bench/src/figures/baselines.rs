//! Quantitative baseline comparison.
//!
//! The paper's comparison with prior connectors is qualitative (Fig. 2).
//! This runner makes it quantitative under the paper's own criterion
//! (`NRatio`, Eq. 13, with `AND` combined scores): queries are drawn from
//! *different* communities — the regime center-piece discovery is for —
//! and each method produces its subgraph:
//!
//! * **CePS** with budget `b` (the paper's method);
//! * **PPR top-(b+Q)** — the same node count as a budget, no connectivity
//!   (footnote 1's "approximate OR" ranking);
//! * **shortest-path union** and **Steiner heuristic** — their sizes are
//!   intrinsic (usually much smaller), reported alongside.
//!
//! Expected shape: CePS ≥ PPR-top on captured AND-goodness per node among
//! *connected* outputs, and far above the minimal connectors, which spend
//! no budget on goodness at all.

use ceps_baselines::{ppr::ppr_top_nodes, shortest::shortest_path_subgraph, steiner::steiner_tree};
use ceps_core::{eval, CepsConfig, CepsEngine, QueryType};
use ceps_rwr::RwrConfig;

use crate::report::Table;
use crate::workload::{stats, Workload};

/// Parameters for the baseline comparison.
#[derive(Debug, Clone)]
pub struct BaselineParams {
    /// Query counts to sweep (capped by the community count).
    pub query_counts: Vec<usize>,
    /// CePS budget (PPR gets the same node count).
    pub budget: usize,
    /// Trials per query count.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for BaselineParams {
    fn default() -> Self {
        BaselineParams {
            query_counts: vec![2, 3, 4],
            budget: 20,
            trials: 10,
            seed: 55,
        }
    }
}

/// Runs the comparison. NRatio cells are means over trials; `sp-size` /
/// `steiner-size` report the minimal connectors' intrinsic node counts.
pub fn run(workload: &Workload, params: &BaselineParams) -> Table {
    let graph = &workload.data.graph;
    let mut table = Table::new(
        "Baselines: mean NRatio, cross-community queries (AND scores)",
        vec![
            "Q".into(),
            "CePS".into(),
            "ppr-top".into(),
            "shortest-paths".into(),
            "steiner".into(),
            "sp-size".into(),
            "steiner-size".into(),
            "ceps-size".into(),
        ],
    );

    for &q in &params.query_counts {
        let mut ceps_r = Vec::new();
        let mut ppr_r = Vec::new();
        let mut sp_r = Vec::new();
        let mut st_r = Vec::new();
        let mut sp_size = Vec::new();
        let mut st_size = Vec::new();
        let mut ceps_size = Vec::new();
        for t in 0..params.trials {
            let seed = params.seed ^ (q as u64) << 32 ^ t as u64;
            let queries = workload.repository.sample_across_communities(q, seed);

            let cfg = CepsConfig::default()
                .budget(params.budget)
                .query_type(QueryType::And);
            let engine = CepsEngine::new(graph, cfg).expect("valid config");
            let res = engine.run(&queries).expect("pipeline");
            let score = |sub: &ceps_graph::Subgraph| eval::node_ratio(&res.combined, sub);

            ceps_r.push(score(&res.subgraph));
            ceps_size.push(res.subgraph.len() as f64);

            if let Ok((top, _)) = ppr_top_nodes(
                graph,
                &queries,
                res.subgraph.len() - queries.len(),
                RwrConfig::default(),
            ) {
                ppr_r.push(score(&top));
            }
            if let Ok(sp) = shortest_path_subgraph(graph, &queries) {
                sp_r.push(score(&sp));
                sp_size.push(sp.len() as f64);
            }
            if let Ok(tree) = steiner_tree(graph, &queries) {
                st_r.push(score(&tree.subgraph));
                st_size.push(tree.subgraph.len() as f64);
            }
        }
        table.push_row(vec![
            q as f64,
            stats(&ceps_r).mean,
            stats(&ppr_r).mean,
            stats(&sp_r).mean,
            stats(&st_r).mean,
            stats(&sp_size).mean,
            stats(&st_size).mean,
            stats(&ceps_size).mean,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn ceps_beats_the_minimal_connectors() {
        let workload = Workload::build(Scale::Tiny, 17);
        let params = BaselineParams {
            query_counts: vec![2],
            budget: 10,
            trials: 5,
            seed: 9,
        };
        let table = run(&workload, &params);
        let row = &table.rows[0];
        let (ceps, _ppr, sp, st) = (row[1], row[2], row[3], row[4]);
        // At ~10 extra nodes of budget, CePS must capture strictly more
        // goodness than the size-minimal connectors.
        assert!(ceps > sp, "CePS {ceps} vs shortest {sp}");
        assert!(ceps > st, "CePS {ceps} vs steiner {st}");
        for &v in &row[1..5] {
            assert!((0.0..=1.0 + 1e-9).contains(&v));
        }
    }
}
