//! Case studies — Figures 1, 2 and 3.
//!
//! The paper's first three figures are qualitative screenshots:
//!
//! * **Fig. 2**: a `Q = 2` connection subgraph where the delivered-current
//!   baseline changes its answer when source and sink swap, while CePS
//!   (an `AND` query over an unordered query *set*) cannot;
//! * **Fig. 1**: four queries drawn from two communities — the `AND` query
//!   finds cross-community bridges, the `2_softAND` query splits into two
//!   dense per-community groups;
//! * **Fig. 3**: three queries from three communities, whose `AND`
//!   center-pieces are the well-connected researchers between them.
//!
//! The runners reproduce each study on the synthetic graph and return both
//! a printable report (with author names, like the paper's figures) and
//! structured facts the integration tests assert on.

use ceps_baselines::delivered_current::{connection_subgraph, DeliveredCurrentConfig};
use ceps_core::{CepsConfig, CepsEngine, QueryType};
use ceps_graph::NodeId;

use crate::workload::Workload;

/// Structured outcome of the Fig. 2 study.
#[derive(Debug, Clone)]
pub struct ConnectionStudy {
    /// The two query nodes.
    pub queries: [NodeId; 2],
    /// Delivered-current display, source = `queries[0]`.
    pub dc_forward: Vec<NodeId>,
    /// Delivered-current display, source = `queries[1]`.
    pub dc_reverse: Vec<NodeId>,
    /// CePS subgraph with queries in given order.
    pub ceps_forward: Vec<NodeId>,
    /// CePS subgraph with queries reversed.
    pub ceps_reverse: Vec<NodeId>,
    /// Human-readable report.
    pub report: String,
}

/// Runs the Fig. 2 study: two hub queries from different communities,
/// budget 4 (the paper's setting).
pub fn fig2_connection_study(workload: &Workload, seed: u64) -> ConnectionStudy {
    let graph = &workload.data.graph;
    let qs = workload.repository.sample_across_communities(2, seed);
    let (a, b) = (qs[0], qs[1]);

    let dc_cfg = DeliveredCurrentConfig {
        budget: 4,
        ..Default::default()
    };
    let fwd = connection_subgraph(graph, a, b, &dc_cfg).expect("connected hubs");
    let rev = connection_subgraph(graph, b, a, &dc_cfg).expect("connected hubs");

    let ceps_cfg = CepsConfig::default().budget(4).query_type(QueryType::And);
    let engine = CepsEngine::new(graph, ceps_cfg).expect("valid config");
    let cf = engine.run(&[a, b]).expect("ceps run");
    let cr = engine.run(&[b, a]).expect("ceps run");

    let name = |v: NodeId| workload.data.labels.name(v);
    let list = |nodes: &[NodeId]| {
        nodes
            .iter()
            .map(|&v| name(v))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let dc_forward: Vec<NodeId> = fwd.subgraph.nodes().collect();
    let dc_reverse: Vec<NodeId> = rev.subgraph.nodes().collect();
    let ceps_forward: Vec<NodeId> = cf.subgraph.nodes().collect();
    let ceps_reverse: Vec<NodeId> = cr.subgraph.nodes().collect();

    let report = format!(
        "Fig 2 — connection subgraph between {} and {} (budget 4)\n\
         delivered current, {} as source: {}\n\
         delivered current, {} as source: {}\n\
         CePS AND (order-independent):    {}\n\
         delivered-current order-sensitive: {}; CePS order-sensitive: {}\n",
        name(a),
        name(b),
        name(a),
        list(&dc_forward),
        name(b),
        list(&dc_reverse),
        list(&ceps_forward),
        dc_forward != dc_reverse,
        ceps_forward != ceps_reverse,
    );

    ConnectionStudy {
        queries: [a, b],
        dc_forward,
        dc_reverse,
        ceps_forward,
        ceps_reverse,
        report,
    }
}

/// Structured outcome of the Fig. 1 study.
#[derive(Debug, Clone)]
pub struct SoftAndStudy {
    /// The four query nodes (two per community).
    pub queries: Vec<NodeId>,
    /// Connected components of the `AND` subgraph.
    pub and_components: usize,
    /// Connected components of the `2_softAND` subgraph.
    pub softand_components: usize,
    /// Non-query nodes of the AND subgraph.
    pub and_nodes: Vec<NodeId>,
    /// Non-query nodes of the softAND subgraph.
    pub softand_nodes: Vec<NodeId>,
    /// Human-readable report.
    pub report: String,
}

/// Runs the Fig. 1 study: `Q = 4` (two hubs each from two communities),
/// `AND` vs `2_softAND`, budget ~ 8.
pub fn fig1_softand_study(workload: &Workload, seed: u64) -> SoftAndStudy {
    let graph = &workload.data.graph;
    let rep = &workload.repository;
    // Two hubs from community 0, two from community 1 (mirrors the paper's
    // DB-pair + ML-pair queries).
    let queries = vec![
        rep.group(0)[0],
        rep.group(0)[1],
        rep.group(1)[0],
        rep.group(1)[1],
    ];
    let _ = seed;

    let run = |qt: QueryType| {
        let cfg = CepsConfig::default().budget(8).query_type(qt);
        CepsEngine::new(graph, cfg)
            .expect("valid config")
            .run(&queries)
            .expect("run")
    };
    let and_res = run(QueryType::And);
    let soft_res = run(QueryType::SoftAnd(2));

    let name = |v: NodeId| workload.data.labels.name(v);
    let and_nodes: Vec<NodeId> = and_res
        .subgraph
        .nodes()
        .filter(|v| !queries.contains(v))
        .collect();
    let softand_nodes: Vec<NodeId> = soft_res
        .subgraph
        .nodes()
        .filter(|v| !queries.contains(v))
        .collect();
    let and_components = and_res.subgraph.component_count(graph);
    let softand_components = soft_res.subgraph.component_count(graph);

    let report = format!(
        "Fig 1 — center-piece subgraph among {} (budget 8)\n\
         AND query:      {} components, bridges: {}\n\
         2_softAND query: {} components, members: {}\n",
        queries
            .iter()
            .map(|&v| name(v))
            .collect::<Vec<_>>()
            .join(", "),
        and_components,
        and_nodes
            .iter()
            .map(|&v| name(v))
            .collect::<Vec<_>>()
            .join(", "),
        softand_components,
        softand_nodes
            .iter()
            .map(|&v| name(v))
            .collect::<Vec<_>>()
            .join(", "),
    );

    SoftAndStudy {
        queries,
        and_components,
        softand_components,
        and_nodes,
        softand_nodes,
        report,
    }
}

/// Structured outcome of the Fig. 3 study.
#[derive(Debug, Clone)]
pub struct AndStudy {
    /// The three query nodes, one per community.
    pub queries: Vec<NodeId>,
    /// The center-piece nodes, ranked by combined score.
    pub center_pieces: Vec<NodeId>,
    /// Whether the subgraph is connected.
    pub connected: bool,
    /// Human-readable report.
    pub report: String,
}

/// Runs the Fig. 3 study: `Q = 3` hubs from three distinct communities,
/// `AND` query, budget ~ 12.
pub fn fig3_and_study(workload: &Workload, seed: u64) -> AndStudy {
    let graph = &workload.data.graph;
    let queries = workload.repository.sample_across_communities(3, seed);

    let cfg = CepsConfig::default().budget(12).query_type(QueryType::And);
    let res = CepsEngine::new(graph, cfg)
        .expect("valid config")
        .run(&queries)
        .expect("run");

    let mut center_pieces: Vec<NodeId> = res
        .subgraph
        .nodes()
        .filter(|v| !queries.contains(v))
        .collect();
    center_pieces.sort_by(|&a, &b| {
        res.combined[b.index()]
            .total_cmp(&res.combined[a.index()])
            .then(a.0.cmp(&b.0))
    });
    let connected = res.subgraph.is_connected(graph);

    let name = |v: NodeId| workload.data.labels.name(v);
    let report = format!(
        "Fig 3 — AND center-piece among {} (budget 12)\n\
         connected: {connected}\n\
         center-pieces (by combined score): {}\n",
        queries
            .iter()
            .map(|&v| name(v))
            .collect::<Vec<_>>()
            .join(", "),
        center_pieces
            .iter()
            .map(|&v| name(v))
            .collect::<Vec<_>>()
            .join(", "),
    );

    AndStudy {
        queries,
        center_pieces,
        connected,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    fn workload() -> Workload {
        Workload::build(Scale::Tiny, 12)
    }

    #[test]
    fn fig2_ceps_is_order_independent() {
        let w = workload();
        let study = fig2_connection_study(&w, 2);
        assert_eq!(study.ceps_forward, study.ceps_reverse);
        assert!(study.report.contains("CePS AND"));
    }

    #[test]
    fn fig1_softand_never_fewer_components_than_and_budgeted_run() {
        let w = workload();
        let study = fig1_softand_study(&w, 0);
        assert_eq!(study.queries.len(), 4);
        assert!(study.softand_components >= 1);
        assert!(study.and_components >= 1);
        assert!(study.report.contains("2_softAND"));
    }

    #[test]
    fn fig3_produces_ranked_center_pieces() {
        let w = workload();
        let study = fig3_and_study(&w, 1);
        assert_eq!(study.queries.len(), 3);
        assert!(!study.center_pieces.is_empty());
        assert!(study.report.contains("center-pieces"));
    }
}
