//! Figure 4 — evaluation of EXTRACT.
//!
//! The paper plots, for `AND` queries with `Q ∈ {1..5}` source nodes, the
//! mean **NRatio** (Fig. 4a) and **ERatio** (Fig. 4b) of the extracted
//! subgraph as functions of the budget `b`. The headline observations our
//! reproduction must recover:
//!
//! * both ratios rise quickly with `b` — e.g. "for 2 source queries, the
//!   resulting subgraph with budget 50 captures 95% important nodes";
//! * for a fixed budget, **more** queries capture a **higher** ratio
//!   (combined `AND` scores get more skewed as `Q` grows).

use ceps_core::{eval, CepsConfig, CepsEngine, QueryType};

use crate::report::Table;
use crate::workload::{stats, Workload};

/// Parameters for the Fig. 4 sweep.
#[derive(Debug, Clone)]
pub struct Fig4Params {
    /// Budgets to sweep (paper: 10..60).
    pub budgets: Vec<usize>,
    /// Query counts to sweep (paper: 1..5).
    pub query_counts: Vec<usize>,
    /// Random query-set draws per configuration.
    pub trials: usize,
    /// Base seed for the query sampling.
    pub seed: u64,
    /// Normalization exponent (paper default 0.5; the α = 0 supplement
    /// shows how the edge-mass capture depends on it — see EXPERIMENTS.md).
    pub alpha: f64,
}

impl Default for Fig4Params {
    fn default() -> Self {
        Fig4Params {
            budgets: vec![10, 20, 30, 40, 50, 60],
            query_counts: vec![1, 2, 3, 4, 5],
            trials: 10,
            seed: 7,
            alpha: 0.5,
        }
    }
}

/// Runs the sweep; returns (Fig 4a NRatio table, Fig 4b ERatio table).
///
/// # Panics
/// Panics only on internal pipeline failures (the workload construction
/// guarantees valid queries).
pub fn run(workload: &Workload, params: &Fig4Params) -> (Table, Table) {
    let graph = &workload.data.graph;
    let config = CepsConfig::default()
        .query_type(QueryType::And)
        .alpha(params.alpha);
    let engine = CepsEngine::new(graph, config).expect("valid config");

    let mut columns = vec!["budget".to_string()];
    for &q in &params.query_counts {
        columns.push(format!("Q={q}"));
    }
    let alpha = params.alpha;
    let mut nratio_table = Table::new(
        format!("Fig 4(a): mean NRatio vs budget (AND, alpha={alpha})"),
        columns.clone(),
    );
    let mut eratio_table = Table::new(
        format!("Fig 4(b): mean ERatio vs budget (AND, alpha={alpha})"),
        columns,
    );

    for &b in &params.budgets {
        let mut nrow = vec![b as f64];
        let mut erow = vec![b as f64];
        for &q in &params.query_counts {
            let mut nsamples = Vec::with_capacity(params.trials);
            let mut esamples = Vec::with_capacity(params.trials);
            for t in 0..params.trials {
                let seed = params.seed ^ (q as u64) << 32 ^ t as u64;
                let queries = workload.repository.sample(q, seed);
                let cfg = CepsConfig::default()
                    .query_type(QueryType::And)
                    .budget(b)
                    .alpha(params.alpha);
                let engine_b = CepsEngine::new(graph, cfg).expect("valid config");
                let res = engine_b.run(&queries).expect("pipeline run");
                nsamples.push(eval::node_ratio(&res.combined, &res.subgraph));
                esamples.push(
                    eval::edge_ratio(
                        graph,
                        engine.transition(),
                        &res.scores,
                        &res.subgraph,
                        res.k,
                    )
                    .expect("edge ratio"),
                );
            }
            nrow.push(stats(&nsamples).mean);
            erow.push(stats(&esamples).mean);
        }
        nratio_table.push_row(nrow);
        eratio_table.push_row(erow);
    }
    (nratio_table, eratio_table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn ratios_increase_with_budget_and_stay_in_unit_interval() {
        let workload = Workload::build(Scale::Tiny, 1);
        let params = Fig4Params {
            budgets: vec![5, 20],
            query_counts: vec![2, 3],
            trials: 3,
            seed: 5,
            alpha: 0.5,
        };
        let (nr, er) = run(&workload, &params);
        assert_eq!(nr.rows.len(), 2);
        for table in [&nr, &er] {
            for row in &table.rows {
                for &v in &row[1..] {
                    assert!((0.0..=1.0 + 1e-9).contains(&v), "ratio {v}");
                }
            }
            // Bigger budget captures at least as much, per column.
            for c in 1..table.columns.len() {
                assert!(
                    table.rows[1][c] + 1e-9 >= table.rows[0][c],
                    "column {c} not monotone: {} -> {}",
                    table.rows[0][c],
                    table.rows[1][c]
                );
            }
        }
    }
}
