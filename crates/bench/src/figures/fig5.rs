//! Figure 5 — the normalization study (Sec. 7.3).
//!
//! The paper sweeps the degree-penalization exponent `α` of Eq. 10 from 0
//! to 1 and plots mean NRatio (Fig. 5a) and ERatio (Fig. 5b) at fixed
//! budget, per query count, reporting that moderate normalization
//! (`α = 0.5`) "helps to capture 17.7% more important nodes ... for 2
//! source queries".
//!
//! ## Two readings of the metric
//!
//! Varying `α` changes the transition matrix and therefore the scores that
//! *define* importance, which leaves the evaluation ambiguous:
//!
//! * **Self-evaluated**: each `α`'s subgraph is measured under its own
//!   scores — `NRatio_α = Σ_{j∈H_α} r_α(Q,j) / Σ_j r_α(Q,j)`. On our
//!   synthetic graphs this is monotone *decreasing* in `α`: penalization
//!   de-skews the combined score, so a fixed budget captures a smaller
//!   fraction of a flatter distribution.
//! * **Cross-evaluated**: importance is defined once by a reference
//!   scoring (`α* = 0.5`, the paper's recommended setting) and every
//!   `α`'s subgraph is measured against it. This reading reproduces the
//!   paper's reported shape — a hump peaking at `α ≈ 0.5`, with both no
//!   normalization (`α = 0`) and excessive normalization (`α = 1`)
//!   capturing fewer of the truly important nodes.
//!
//! The runner reports both; `EXPERIMENTS.md` discusses the discrepancy.

use ceps_core::{eval, CepsConfig, CepsEngine, QueryType};

use crate::report::Table;
use crate::workload::{stats, Workload};

/// Parameters for the Fig. 5 sweep.
#[derive(Debug, Clone)]
pub struct Fig5Params {
    /// α values (paper: 0.0..=1.0 step 0.1).
    pub alphas: Vec<f64>,
    /// Query counts (paper: 2..5).
    pub query_counts: Vec<usize>,
    /// Budget (fixed while α varies).
    pub budget: usize,
    /// Random query draws per configuration.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
    /// Reference exponent for the cross-evaluated reading.
    pub reference_alpha: f64,
}

impl Default for Fig5Params {
    fn default() -> Self {
        Fig5Params {
            alphas: (0..=10).map(|i| i as f64 / 10.0).collect(),
            query_counts: vec![2, 3, 4, 5],
            budget: 20,
            trials: 10,
            seed: 11,
            reference_alpha: 0.5,
        }
    }
}

/// Output of the Fig. 5 sweep: both metric readings.
#[derive(Debug, Clone)]
pub struct Fig5Output {
    /// Self-evaluated NRatio per α (each α scored by itself).
    pub nratio_self: Table,
    /// Self-evaluated ERatio per α.
    pub eratio_self: Table,
    /// Cross-evaluated NRatio per α (fixed `reference_alpha` scoring).
    pub nratio_cross: Table,
    /// Cross-evaluated ERatio per α.
    pub eratio_cross: Table,
}

/// Runs the sweep.
pub fn run(workload: &Workload, params: &Fig5Params) -> Fig5Output {
    let graph = &workload.data.graph;

    let mut columns = vec!["alpha".to_string()];
    for &q in &params.query_counts {
        columns.push(format!("Q={q}"));
    }
    let mut nratio_self = Table::new(
        "Fig 5(a): mean NRatio vs alpha, self-evaluated (AND)",
        columns.clone(),
    );
    let mut eratio_self = Table::new(
        "Fig 5(b): mean ERatio vs alpha, self-evaluated (AND)",
        columns.clone(),
    );
    let mut nratio_cross = Table::new(
        format!(
            "Fig 5(a'): mean NRatio vs alpha, evaluated under alpha*={} (AND)",
            params.reference_alpha
        ),
        columns.clone(),
    );
    let mut eratio_cross = Table::new(
        format!(
            "Fig 5(b'): mean ERatio vs alpha, evaluated under alpha*={} (AND)",
            params.reference_alpha
        ),
        columns,
    );

    let ref_cfg = CepsConfig::default()
        .query_type(QueryType::And)
        .budget(params.budget)
        .alpha(params.reference_alpha);
    let ref_engine = CepsEngine::new(graph, ref_cfg).expect("valid reference config");

    for &alpha in &params.alphas {
        let cfg = CepsConfig::default()
            .query_type(QueryType::And)
            .budget(params.budget)
            .alpha(alpha);
        let engine = CepsEngine::new(graph, cfg).expect("valid config");
        let mut ns_row = vec![alpha];
        let mut es_row = vec![alpha];
        let mut nc_row = vec![alpha];
        let mut ec_row = vec![alpha];
        for &q in &params.query_counts {
            let mut ns = Vec::with_capacity(params.trials);
            let mut es = Vec::with_capacity(params.trials);
            let mut nc = Vec::with_capacity(params.trials);
            let mut ec = Vec::with_capacity(params.trials);
            for t in 0..params.trials {
                let seed = params.seed ^ (q as u64) << 32 ^ t as u64;
                let queries = workload.repository.sample(q, seed);
                let res = engine.run(&queries).expect("pipeline run");

                ns.push(eval::node_ratio(&res.combined, &res.subgraph));
                es.push(
                    eval::edge_ratio(
                        graph,
                        engine.transition(),
                        &res.scores,
                        &res.subgraph,
                        res.k,
                    )
                    .expect("edge ratio"),
                );

                let (ref_scores, ref_combined) = ref_engine
                    .combined_scores(&queries)
                    .expect("reference scores");
                nc.push(eval::node_ratio(&ref_combined, &res.subgraph));
                ec.push(
                    eval::edge_ratio(
                        graph,
                        ref_engine.transition(),
                        &ref_scores,
                        &res.subgraph,
                        res.k,
                    )
                    .expect("reference edge ratio"),
                );
            }
            ns_row.push(stats(&ns).mean);
            es_row.push(stats(&es).mean);
            nc_row.push(stats(&nc).mean);
            ec_row.push(stats(&ec).mean);
        }
        nratio_self.push_row(ns_row);
        eratio_self.push_row(es_row);
        nratio_cross.push_row(nc_row);
        eratio_cross.push_row(ec_row);
    }
    Fig5Output {
        nratio_self,
        eratio_self,
        nratio_cross,
        eratio_cross,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn sweep_produces_unit_interval_ratios_for_all_alphas() {
        let workload = Workload::build(Scale::Tiny, 2);
        let params = Fig5Params {
            alphas: vec![0.0, 0.5, 1.0],
            query_counts: vec![2],
            budget: 10,
            trials: 3,
            seed: 4,
            reference_alpha: 0.5,
        };
        let out = run(&workload, &params);
        for table in [
            &out.nratio_self,
            &out.eratio_self,
            &out.nratio_cross,
            &out.eratio_cross,
        ] {
            assert_eq!(table.rows.len(), 3);
            for row in &table.rows {
                for &v in &row[1..] {
                    assert!((0.0..=1.0 + 1e-9).contains(&v), "ratio {v}");
                }
            }
        }
    }

    #[test]
    fn cross_evaluation_at_reference_alpha_matches_self_evaluation() {
        let workload = Workload::build(Scale::Tiny, 9);
        let params = Fig5Params {
            alphas: vec![0.5],
            query_counts: vec![2],
            budget: 8,
            trials: 2,
            seed: 7,
            reference_alpha: 0.5,
        };
        let out = run(&workload, &params);
        // At alpha == alpha*, the two readings are the same number.
        let a = out.nratio_self.rows[0][1];
        let b = out.nratio_cross.rows[0][1];
        assert!((a - b).abs() < 1e-12, "self {a} vs cross {b}");
    }
}
