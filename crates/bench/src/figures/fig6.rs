//! Figure 6 — the pre-partition speedup study (Sec. 7.4).
//!
//! The paper fixes `b = 20`, `AND` queries, and sweeps the number of
//! partitions `p`, measuring
//!
//! * **Fig. 6(a)**: mean `RelRatio` (quality retained, Eq. 19) against the
//!   mean response time, and
//! * **Fig. 6(b)**: mean response time against `p`,
//!
//! with the headline that ~10% quality loss buys roughly a **6:1 speedup**.
//! Response time here is the *online* cost: individual + combined score
//! computation plus EXTRACT on the (possibly reduced) graph. The
//! partitioning itself is the offline Step 0 and is reported separately.

use std::time::Instant;

use ceps_core::{eval, CepsConfig, CepsEngine, FastCeps, QueryType};
use ceps_partition::{partition_graph, PartitionConfig};

use crate::report::Table;
use crate::workload::{stats, Workload};

/// Parameters for the Fig. 6 sweep.
#[derive(Debug, Clone)]
pub struct Fig6Params {
    /// Partition counts to sweep; `1` is the no-speedup baseline.
    pub partition_counts: Vec<usize>,
    /// Query counts (paper: 2..5).
    pub query_counts: Vec<usize>,
    /// Budget (paper: 20).
    pub budget: usize,
    /// Query draws per configuration.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Fig6Params {
    fn default() -> Self {
        Fig6Params {
            partition_counts: vec![1, 2, 5, 10, 20, 40],
            query_counts: vec![2, 3, 4, 5],
            budget: 20,
            trials: 5,
            seed: 23,
        }
    }
}

/// Output of the Fig. 6 sweep.
#[derive(Debug, Clone)]
pub struct Fig6Output {
    /// Fig. 6(a): per partition count, mean response time (ms) and mean
    /// RelRatio, per query count.
    pub quality_vs_time: Table,
    /// Fig. 6(b): mean response time (ms) vs `p`, per query count.
    pub time_vs_partitions: Table,
    /// Headline table: speedup factor and RelRatio vs `p` (averaged over
    /// query counts).
    pub headline: Table,
    /// Offline partitioning time per `p`, milliseconds.
    pub offline: Table,
}

/// Runs the sweep.
pub fn run(workload: &Workload, params: &Fig6Params) -> Fig6Output {
    let graph = &workload.data.graph;
    let cfg = CepsConfig::default()
        .query_type(QueryType::And)
        .budget(params.budget);

    // Full-graph reference runs (p = 1 semantics), reused for RelRatio.
    let full_engine = CepsEngine::new(graph, cfg).expect("valid config");

    let mut col_time = vec!["partitions".to_string()];
    let mut col_qt = vec!["partitions".to_string()];
    for &q in &params.query_counts {
        col_time.push(format!("Q={q} ms"));
        col_qt.push(format!("Q={q} time_ms"));
        col_qt.push(format!("Q={q} RelRatio"));
    }
    let mut time_table = Table::new("Fig 6(b): mean response time vs partitions (AND)", col_time);
    let mut qt_table = Table::new(
        "Fig 6(a): RelRatio and response time vs partitions (AND)",
        col_qt,
    );
    let mut headline = Table::new(
        "Headline: speedup and quality vs partitions (avg over Q)",
        vec!["partitions".into(), "speedup".into(), "RelRatio".into()],
    );
    let mut offline = Table::new(
        "Offline: partitioning time (one-time cost)",
        vec!["partitions".into(), "ms".into()],
    );

    let mut base_time_per_q: Vec<f64> = Vec::new();

    for &p in &params.partition_counts {
        let t0 = Instant::now();
        let partitioning = partition_graph(
            graph,
            &PartitionConfig {
                seed: params.seed,
                ..PartitionConfig::with_parts(p)
            },
        )
        .expect("partitioner");
        offline.push_row(vec![p as f64, t0.elapsed().as_secs_f64() * 1e3]);
        let fast = FastCeps::with_partitioning(graph, cfg, partitioning);

        let mut time_row = vec![p as f64];
        let mut qt_row = vec![p as f64];
        let mut speedups = Vec::new();
        let mut rels = Vec::new();

        for (qi, &q) in params.query_counts.iter().enumerate() {
            let mut times = Vec::with_capacity(params.trials);
            let mut ratios = Vec::with_capacity(params.trials);
            for t in 0..params.trials {
                let seed = params.seed ^ (q as u64) << 32 ^ t as u64;
                let queries = workload.repository.sample(q, seed);

                let t1 = Instant::now();
                let fast_res = fast.run(&queries).expect("fast run");
                times.push(t1.elapsed().as_secs_f64() * 1e3);

                // Quality reference: the full-graph run with identical
                // configuration (this is what NRatio's denominator and the
                // subgraph H of Eq. 19's denominator come from).
                let full_res = full_engine.run(&queries).expect("full run");
                ratios.push(eval::rel_ratio(
                    &full_res.combined,
                    &fast_res.subgraph,
                    &full_res.subgraph,
                ));
            }
            let t_mean = stats(&times).mean;
            let r_mean = stats(&ratios).mean;
            time_row.push(t_mean);
            qt_row.push(t_mean);
            qt_row.push(r_mean);
            if p == params.partition_counts[0] {
                base_time_per_q.push(t_mean);
            }
            let base = base_time_per_q.get(qi).copied().unwrap_or(t_mean);
            speedups.push(if t_mean > 0.0 { base / t_mean } else { 1.0 });
            rels.push(r_mean);
        }
        time_table.push_row(time_row);
        qt_table.push_row(qt_row);
        headline.push_row(vec![p as f64, stats(&speedups).mean, stats(&rels).mean]);
    }

    Fig6Output {
        quality_vs_time: qt_table,
        time_vs_partitions: time_table,
        headline,
        offline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn rel_ratio_is_one_for_single_partition_and_bounded_otherwise() {
        let workload = Workload::build(Scale::Tiny, 6);
        let params = Fig6Params {
            partition_counts: vec![1, 2],
            query_counts: vec![2],
            budget: 8,
            trials: 2,
            seed: 3,
        };
        let out = run(&workload, &params);
        // p = 1: identical run, RelRatio exactly 1.
        let p1_rel = out.quality_vs_time.rows[0][2];
        assert!((p1_rel - 1.0).abs() < 1e-9, "p=1 RelRatio {p1_rel}");
        // p = 2: bounded by [0, 1] up to EXTRACT tie noise.
        let p2_rel = out.quality_vs_time.rows[1][2];
        assert!((0.0..=1.05).contains(&p2_rel), "p=2 RelRatio {p2_rel}");
        assert_eq!(out.headline.rows.len(), 2);
        assert_eq!(out.offline.rows.len(), 2);
    }
}
