//! Injection evaluation — future-work item 2(1) of the paper:
//!
//! > "we inject the resulting center-piece which are well justified by the
//! > users into the original graph and test if the proposed algorithm can
//! > find them."
//!
//! The runner plants a synthetic center-piece into a generated graph —
//! a new author who co-wrote `strength` papers with **every** query node —
//! then asks CePS for the center-piece subgraph and records whether the
//! planted node is (a) in the output and (b) the top-ranked non-query
//! node. By construction the planted node is the ground-truth best `AND`
//! answer, so recall should approach 1.0 once the budget admits any
//! intermediate at all; the sweep shows how recall behaves as the planted
//! tie weakens relative to the organic graph.

use ceps_core::{CepsConfig, CepsEngine, QueryType};
use ceps_graph::{CsrGraph, GraphBuilder, NodeId};

use crate::report::Table;
use crate::workload::Workload;

/// Parameters for the injection sweep.
#[derive(Debug, Clone)]
pub struct InjectionParams {
    /// Query counts to sweep.
    pub query_counts: Vec<usize>,
    /// Co-authorship weight between the planted node and each query.
    pub strengths: Vec<f64>,
    /// Budget for the retrieval run.
    pub budget: usize,
    /// Trials per configuration.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for InjectionParams {
    fn default() -> Self {
        InjectionParams {
            query_counts: vec![2, 3, 4],
            strengths: vec![0.5, 1.0, 2.0, 4.0],
            budget: 10,
            trials: 10,
            seed: 99,
        }
    }
}

/// Clones `graph` with one extra node tied to every query with `strength`.
/// Returns the new graph and the planted node's id.
fn inject_center_piece(graph: &CsrGraph, queries: &[NodeId], strength: f64) -> (CsrGraph, NodeId) {
    let planted = NodeId::from_index(graph.node_count());
    let mut b = GraphBuilder::with_nodes(graph.node_count() + 1);
    for (a, c, w) in graph.edges() {
        b.add_edge(a, c, w).expect("copying valid edges");
    }
    for &q in queries {
        b.add_edge(planted, q, strength)
            .expect("valid injection edge");
    }
    (b.build().expect("non-empty"), planted)
}

/// Output of the injection sweep.
#[derive(Debug, Clone)]
pub struct InjectionOutput {
    /// Recall@budget: fraction of trials where the planted node is in `H`.
    pub recall: Table,
    /// Fraction of trials where the planted node is the **top** non-query
    /// node by combined score.
    pub top1: Table,
}

/// Runs the sweep.
pub fn run(workload: &Workload, params: &InjectionParams) -> InjectionOutput {
    let mut columns = vec!["strength".to_string()];
    for &q in &params.query_counts {
        columns.push(format!("Q={q}"));
    }
    let mut recall = Table::new(
        "Injection: recall of the planted center-piece vs tie strength (AND)",
        columns.clone(),
    );
    let mut top1 = Table::new(
        "Injection: planted node ranked top-1 vs tie strength (AND)",
        columns,
    );

    for &strength in &params.strengths {
        let mut recall_row = vec![strength];
        let mut top1_row = vec![strength];
        for &q in &params.query_counts {
            let mut found = 0usize;
            let mut first = 0usize;
            for t in 0..params.trials {
                let seed = params.seed ^ (q as u64) << 32 ^ t as u64;
                let queries = workload.repository.sample(q, seed);
                let (graph, planted) =
                    inject_center_piece(&workload.data.graph, &queries, strength);

                let cfg = CepsConfig::default()
                    .query_type(QueryType::And)
                    .budget(params.budget);
                let engine = CepsEngine::new(&graph, cfg).expect("valid config");
                let res = engine.run(&queries).expect("pipeline run");

                if res.subgraph.contains(planted) {
                    found += 1;
                }
                let best_non_query = res
                    .subgraph
                    .nodes()
                    .filter(|v| !queries.contains(v))
                    .max_by(|a, b| res.combined[a.index()].total_cmp(&res.combined[b.index()]));
                if best_non_query == Some(planted) {
                    first += 1;
                }
            }
            recall_row.push(found as f64 / params.trials as f64);
            top1_row.push(first as f64 / params.trials as f64);
        }
        recall.push_row(recall_row);
        top1.push_row(top1_row);
    }
    InjectionOutput { recall, top1 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn strongly_tied_planted_node_is_always_found() {
        let workload = Workload::build(Scale::Tiny, 13);
        let params = InjectionParams {
            query_counts: vec![2],
            strengths: vec![8.0],
            budget: 8,
            trials: 5,
            seed: 2,
        };
        let out = run(&workload, &params);
        // Direct weight-8 ties to every query make the planted node the
        // unambiguous best AND answer.
        assert_eq!(out.recall.rows[0][1], 1.0, "recall {:?}", out.recall.rows);
        assert!(out.top1.rows[0][1] >= 0.8, "top1 {:?}", out.top1.rows);
    }

    #[test]
    fn recall_is_monotone_ish_in_strength() {
        let workload = Workload::build(Scale::Tiny, 14);
        let params = InjectionParams {
            query_counts: vec![2],
            strengths: vec![0.25, 8.0],
            budget: 8,
            trials: 6,
            seed: 5,
        };
        let out = run(&workload, &params);
        let weak = out.recall.rows[0][1];
        let strong = out.recall.rows[1][1];
        assert!(
            strong >= weak,
            "recall fell with strength: {weak} -> {strong}"
        );
    }

    #[test]
    fn injection_preserves_the_rest_of_the_graph() {
        let workload = Workload::build(Scale::Tiny, 15);
        let g = &workload.data.graph;
        let queries = workload.repository.sample(3, 0);
        let (injected, planted) = inject_center_piece(g, &queries, 2.0);
        assert_eq!(injected.node_count(), g.node_count() + 1);
        assert_eq!(injected.edge_count(), g.edge_count() + 3);
        for &q in &queries {
            assert_eq!(injected.weight(planted, q), Some(2.0));
        }
        // An untouched edge keeps its weight.
        let (a, b, w) = g.edges().next().unwrap();
        assert_eq!(injected.weight(a, b), Some(w));
    }
}
