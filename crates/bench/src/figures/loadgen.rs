//! Open-loop load benchmark: SLO capacity of a self-hosted wire server.
//!
//! Boots a [`ceps_net::CepsServer`] over the in-process transport on the
//! benchmark workload and runs the `ceps-load` capacity search against
//! it: double the offered rate until the SLO (p99 bound + max shed/error
//! rate) breaks, then bisect the bracket. Two tables come out:
//!
//! * a one-row **headline** (first in the artifact — the regression gate
//!   resolves its columns from the first table that has them): clean-run
//!   quality at the base probe rate (`ok_rate`, `achieved_ratio`, both
//!   gated) plus the detected knee (`knee_rps`, `knee_p99_ms`, ungated —
//!   absolute capacity is machine-dependent);
//! * the full **throughput-latency curve**, one row per probe.

use ceps_core::{CepsConfig, CepsEngine, CepsServiceBuilder};
use ceps_load::{capacity_search, ArrivalKind, CapacityCurve, LoadConfig, SearchConfig, SloSpec};
use ceps_net::{in_proc, CepsClient, CepsServer, ServerConfig};

use crate::report::Table;
use crate::workload::Workload;

/// Tunables of the loadgen benchmark.
#[derive(Debug, Clone)]
pub struct LoadgenParams {
    /// Schedule/query-mix seed.
    pub seed: u64,
    /// Server worker threads.
    pub workers: usize,
    /// Budget `b` for the pipeline.
    pub budget: usize,
    /// Normalization exponent `α`.
    pub alpha: f64,
    /// Row-cache byte budget for the served service.
    pub cache_bytes: usize,
    /// Query nodes per request.
    pub queries_per: usize,
    /// Repeat rate of the query mix (cache exercise).
    pub repeat: f64,
    /// Per-probe run length (seconds), warmup included.
    pub duration_s: f64,
    /// Per-probe warmup (seconds).
    pub warmup_s: f64,
    /// Concurrent load connections.
    pub connections: usize,
    /// First probe rate of the capacity search.
    pub start_rps: f64,
    /// Rate cap of the capacity search.
    pub max_rps: f64,
    /// Binary-refinement probes after the bracket is found.
    pub refine_steps: usize,
    /// The SLO the search holds the server to.
    pub slo: SloSpec,
}

impl Default for LoadgenParams {
    fn default() -> Self {
        LoadgenParams {
            seed: 42,
            workers: 4,
            budget: 20,
            alpha: 0.5,
            cache_bytes: 256 << 20,
            queries_per: 3,
            repeat: 0.5,
            duration_s: 3.0,
            warmup_s: 0.5,
            connections: 4,
            start_rps: 10.0,
            max_rps: 20_000.0,
            refine_steps: 2,
            slo: SloSpec {
                p99_ms: 500.0,
                max_error_rate: 0.01,
            },
        }
    }
}

/// Runs the capacity search against a freshly booted in-process wire
/// server and renders the headline + curve tables.
///
/// # Panics
/// Panics if the server fails to boot or a probe run fails to connect —
/// both impossible over the in-process transport short of a bug.
pub fn run(workload: &Workload, params: &LoadgenParams) -> (Table, Table, CapacityCurve) {
    let cfg = CepsConfig::default()
        .budget(params.budget)
        .alpha(params.alpha)
        .threads(1);
    let engine = CepsEngine::new(&workload.data.graph, cfg).unwrap();
    let service = CepsServiceBuilder::new()
        .cache_bytes(params.cache_bytes)
        .build(engine);

    // The wire server parks whole connections on workers (250ms read
    // slices); driving more connections than workers would measure that
    // parking quantum, not the service. Cap the fan-in accordingly.
    let connections = params.connections.min(params.workers).max(1);
    let load_cfg = LoadConfig {
        rps: params.start_rps,
        duration_s: params.duration_s,
        warmup_s: params.warmup_s,
        arrival: ArrivalKind::Poisson,
        connections,
        queries_per: params.queries_per,
        node_space: workload.node_count(),
        repeat: params.repeat,
        seed: params.seed,
    };
    let search = SearchConfig {
        start_rps: params.start_rps,
        max_rps: params.max_rps,
        refine_steps: params.refine_steps,
    };

    let server = CepsServer::new(
        service,
        ServerConfig {
            workers: params.workers,
            ..ServerConfig::default()
        },
    );
    let (mut transport, connector) = in_proc();
    let curve = std::thread::scope(|s| {
        let server = &server;
        let serve = s.spawn(move || server.serve(&mut transport).unwrap());
        let connect = || Ok(CepsClient::from_conn(Box::new(connector.connect()?)));
        let curve = capacity_search(&load_cfg, &params.slo, &search, &connect, |p| {
            ceps_obs::info!(
                "loadgen probe: {:.1} rps -> p99 {:.2} ms ({})",
                p.offered_rps,
                p.report.measure.p99_ms,
                if p.slo_met { "slo met" } else { "slo violated" },
            );
        })
        .unwrap();
        let mut c = CepsClient::from_conn(Box::new(connector.connect().unwrap()));
        c.shutdown().unwrap();
        serve.join().unwrap();
        curve
    });

    // The base probe is always the first point: the lowest rate the
    // search tried, where a healthy server completes essentially every
    // request. Its quality ratios are machine-independent — that is what
    // the regression gate watches.
    let base = &curve.points[0];
    let base_ok_rate = if base.report.measure.count == 0 {
        0.0
    } else {
        base.report.measure.ok as f64 / base.report.measure.count as f64
    };
    let base_ratio = if base.offered_rps > 0.0 {
        base.report.achieved_rps / base.offered_rps
    } else {
        0.0
    };
    let (knee_rps, knee_p99) = match curve.knee() {
        Some(p) => (p.offered_rps, p.report.measure.p99_ms),
        None => (0.0, 0.0),
    };
    let mut headline = Table::new(
        "BENCH loadgen: SLO capacity (open-loop, coordinated-omission-free)",
        vec![
            "base_rps".into(),
            "ok_rate".into(),
            "achieved_ratio".into(),
            "knee_rps".into(),
            "knee_p99_ms".into(),
        ],
    );
    headline.push_row(vec![
        base.offered_rps,
        base_ok_rate,
        base_ratio,
        knee_rps,
        knee_p99,
    ]);

    let mut curve_table = Table::new(
        "BENCH loadgen curve: offered rate vs intended-time latency",
        vec![
            "offered_rps".into(),
            "achieved_rps".into(),
            "p50_ms".into(),
            "p99_ms".into(),
            "error_rate".into(),
            "slo_met".into(),
        ],
    );
    for p in curve.sorted_points() {
        curve_table.push_row(vec![
            p.offered_rps,
            p.report.achieved_rps,
            p.report.measure.p50_ms,
            p.report.measure.p99_ms,
            p.report.measure.error_rate(),
            if p.slo_met { 1.0 } else { 0.0 },
        ]);
    }
    (headline, curve_table, curve)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn loadgen_bench_finds_a_knee_on_the_tiny_preset() {
        let workload = Workload::build(Scale::Tiny, 7);
        let params = LoadgenParams {
            workers: 2,
            duration_s: 0.6,
            warmup_s: 0.1,
            connections: 2,
            start_rps: 20.0,
            max_rps: 160.0,
            refine_steps: 1,
            // Generous SLO so the search passes at least the base rate
            // even on a loaded CI host.
            slo: SloSpec {
                p99_ms: 10_000.0,
                max_error_rate: 0.05,
            },
            ..LoadgenParams::default()
        };
        let (headline, curve_table, curve) = run(&workload, &params);

        assert_eq!(headline.columns[0], "base_rps");
        assert_eq!(headline.columns[1], "ok_rate");
        assert_eq!(headline.rows.len(), 1);
        let ok_rate = headline.rows[0][1];
        assert!(ok_rate > 0.9, "base probe ok_rate {ok_rate} should be ~1");
        assert!(!curve.points.is_empty());
        assert_eq!(curve_table.rows.len(), curve.points.len());
        // Hitting max_rps with the SLO still met counts as a knee too, so
        // one must exist under this generous SLO.
        assert!(curve.knee_rps.is_some());

        // Schema round-trip: the emitted BENCH_loadgen.json parses and
        // the regression gate resolves its columns (headline table first)
        // — an artifact identical to its own baseline must pass.
        let dir = std::env::temp_dir().join(format!("ceps_loadgen_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let meta = serde_json::json!({"seed": 7u64});
        let tables = [headline, curve_table];
        let path = crate::report::write_json(&dir, "BENCH_loadgen", &meta, &tables).unwrap();
        assert!(path.ends_with("BENCH_loadgen.json"));
        let gates: Vec<_> = crate::regression::default_gates()
            .into_iter()
            .filter(|g| g.artifact == "BENCH_loadgen.json")
            .collect();
        assert_eq!(gates.len(), 1, "loadgen artifact is gated");
        let report = crate::regression::check(&dir, &dir, &gates, 1.0);
        assert!(report.passed(), "{}", report.render());
        assert!(report.rows.iter().any(|r| r.metric == "ok_rate"));
        assert!(report.rows.iter().any(|r| r.metric == "achieved_ratio"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
