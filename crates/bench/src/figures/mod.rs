//! Figure runners — one per paper artifact.

pub mod ablation;
pub mod baselines;
pub mod case_studies;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod injection;
pub mod loadgen;
pub mod rwr_bench;
pub mod scaling;
pub mod serve;
