//! RWR kernel benchmark — the proof artifact for the batched block-SpMM
//! solver: per query count `Q`, wall-clock of the scalar per-source loop
//! ([`RwrEngine::solve_many_unbatched`]), the batched block kernel
//! (`threads = 1`), and the pooled thread-parallel block kernel, plus the
//! speedup of each batched variant over the scalar loop.
//!
//! The batched kernel's win is cache reuse: each CSR entry is loaded once
//! per iteration and folded into all `Q` columns, instead of `Q` separate
//! sweeps over the adjacency arrays. The parallel variant dispatches the
//! product through a persistent nnz-balanced worker pool
//! ([`ceps_pool::WorkerPool`]) — workers are spawned once per engine and
//! re-barriered per iteration — and falls back to the sequential kernel
//! whenever `nnz × Q` is below the pool's work threshold, so `par_speedup`
//! never drops below `block_speedup` on small presets.
//!
//! [`thread_scaling`] measures the pooled kernel itself: it forces the
//! parallel path (`min_work = 0`) at several worker counts, which is the
//! honest picture of dispatch overhead on the current machine.

use std::sync::Arc;
use std::time::Instant;

use ceps_graph::{normalize::Normalization, Precision, Transition, TransitionOptions};
use ceps_pool::PoolHandle;
use ceps_rwr::{RwrConfig, RwrEngine, ScratchPool};

use crate::report::Table;
use crate::workload::Workload;
use crate::{rss, Scale};

/// Parameters for the RWR kernel benchmark.
#[derive(Debug, Clone)]
pub struct RwrBenchParams {
    /// Query-set sizes to measure.
    pub query_counts: Vec<usize>,
    /// Timed repetitions per cell; the minimum is reported.
    pub trials: usize,
    /// Worker threads for the parallel column (`0` = auto).
    pub threads: usize,
    /// Worker counts swept by [`thread_scaling`].
    pub scaling_threads: Vec<usize>,
    /// Normalization exponent (degree penalization, Eq. 10).
    pub alpha: f64,
    /// Query-sampling seed.
    pub seed: u64,
}

impl Default for RwrBenchParams {
    fn default() -> Self {
        RwrBenchParams {
            query_counts: vec![2, 5, 10],
            trials: 3,
            threads: 0,
            scaling_threads: vec![1, 2, 4],
            alpha: 0.5,
            seed: 42,
        }
    }
}

fn time_ms(trials: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Runs the benchmark over `workload`'s graph.
///
/// Columns: `Q`, the three wall-clock times in milliseconds (best of
/// `trials`), and the block/parallel speedups over the scalar loop.
///
/// # Panics
/// Panics if the three paths disagree on the solved scores — the benchmark
/// doubles as an end-to-end equivalence check.
pub fn run(workload: &Workload, params: &RwrBenchParams) -> Table {
    let transition = Transition::new(
        &workload.data.graph,
        Normalization::DegreePenalized {
            alpha: params.alpha,
        },
    );
    let mut table = Table::new(
        "BENCH rwr: batched block kernel vs scalar loop",
        vec![
            "Q".into(),
            "unbatched_ms".into(),
            "block_ms".into(),
            "par_block_ms".into(),
            "block_speedup".into(),
            "par_speedup".into(),
        ],
    );
    for (i, &q) in params.query_counts.iter().enumerate() {
        let queries = workload.repository.sample(q, params.seed ^ i as u64);
        let scalar = engine(&transition, 1);
        let block = engine(&transition, 1);
        let par = engine(&transition, params.threads);

        // Equivalence before timing: all three paths must produce the same R.
        let reference = scalar.solve_many_unbatched(&queries).unwrap();
        assert_eq!(reference, block.solve_many(&queries).unwrap());
        assert_eq!(reference, par.solve_many(&queries).unwrap());

        let t_scalar = time_ms(params.trials, || {
            scalar.solve_many_unbatched(&queries).unwrap();
        });
        let t_block = time_ms(params.trials, || {
            block.solve_many(&queries).unwrap();
        });
        let t_par = time_ms(params.trials, || {
            par.solve_many(&queries).unwrap();
        });
        table.push_row(vec![
            q as f64,
            t_scalar,
            t_block,
            t_par,
            t_scalar / t_block,
            t_scalar / t_par,
        ]);
    }
    table
}

/// Thread-scaling sweep over the **forced-parallel** pooled kernel.
///
/// For each worker count in `params.scaling_threads` and each query count,
/// solves through a pool with `min_work = 0` — no sequential fallback — so
/// the numbers isolate what the persistent pool itself costs and buys.
/// `speedup` columns are relative to the sweep's own 1-thread row (the
/// first entry of `scaling_threads` is forced to 1).
pub fn thread_scaling(workload: &Workload, params: &RwrBenchParams) -> Table {
    let transition = Transition::new(
        &workload.data.graph,
        Normalization::DegreePenalized {
            alpha: params.alpha,
        },
    );
    let mut threads_sweep = params.scaling_threads.clone();
    if threads_sweep.first() != Some(&1) {
        threads_sweep.insert(0, 1);
    }
    let mut columns = vec!["threads".to_string()];
    for &q in &params.query_counts {
        columns.push(format!("q{q}_ms"));
    }
    for &q in &params.query_counts {
        columns.push(format!("q{q}_speedup"));
    }
    let mut table = Table::new(
        "BENCH rwr: thread scaling (pooled kernel, forced parallel)",
        columns,
    );
    let mut base_ms: Vec<f64> = Vec::new();
    for &t in &threads_sweep {
        let pooled = pooled_engine(&transition, t, 0);
        let mut row = vec![t as f64];
        for (i, &q) in params.query_counts.iter().enumerate() {
            let queries = workload.repository.sample(q, params.seed ^ i as u64);
            // Pooled results must match the sequential kernel bitwise.
            let reference = engine(&transition, 1).solve_many(&queries).unwrap();
            assert_eq!(reference, pooled.solve_many(&queries).unwrap());
            row.push(time_ms(params.trials, || {
                pooled.solve_many(&queries).unwrap();
            }));
        }
        if t == 1 {
            base_ms = row[1..].to_vec();
        }
        for i in 0..params.query_counts.len() {
            row.push(base_ms[i] / row[1 + i]);
        }
        table.push_row(row);
    }
    table
}

/// Query count used by [`node_thread_scaling`]: the middle of the paper's
/// sweep, big enough to keep every worker busy, small enough to run at the
/// paper scale in CI-adjacent time.
pub const SCALING_QUERY_COUNT: usize = 5;

/// Nodes × threads scaling sweep — the paper-scale story in one table.
///
/// For every scale in `scales`, generates a fresh workload, normalizes it
/// with the default (auto-layout) options — so presets above the banding
/// threshold exercise the cache-blocked kernel — and times the
/// **forced-parallel** pooled kernel (`min_work = 0`) at
/// [`SCALING_QUERY_COUNT`] queries for each worker count. Speedups are
/// relative to the same scale's 1-thread row (prepended if absent).
///
/// Alongside the timings each row records the memory story:
/// `op_f64_mb` / `op_f32_mb` are the normalized operator's footprint at
/// both storage precisions (offsets + targets + coefficients + band
/// index), and `peak_rss_mb` is the process's peak resident set
/// ([`rss::peak_rss_kb`], `0` where procfs is unavailable), reset at the
/// start of each scale when the platform allows it.
///
/// # Panics
/// Panics if the pooled kernel disagrees with the sequential reference on
/// any scale (checked once per scale before timing).
pub fn node_thread_scaling(scales: &[Scale], params: &RwrBenchParams) -> Table {
    let mut threads_sweep = params.scaling_threads.clone();
    if threads_sweep.first() != Some(&1) {
        threads_sweep.insert(0, 1);
    }
    let q = SCALING_QUERY_COUNT;
    let mut table = Table::new(
        "BENCH rwr: nodes x threads scaling (pooled kernel, forced parallel)",
        vec![
            "nodes".into(),
            "threads".into(),
            format!("q{q}_ms"),
            format!("q{q}_speedup"),
            "op_f64_mb".into(),
            "op_f32_mb".into(),
            "peak_rss_mb".into(),
        ],
    );
    for &scale in scales {
        rss::reset_peak_rss();
        let workload = Workload::build(scale, params.seed);
        let norm = Normalization::DegreePenalized {
            alpha: params.alpha,
        };
        let transition =
            Transition::with_options(&workload.data.graph, norm, TransitionOptions::default());
        let op_f64_mb = transition.memory_bytes() as f64 / (1 << 20) as f64;
        // The f32 operator is built only for its footprint, then dropped
        // before anything is timed.
        let op_f32_mb = {
            let t32 = Transition::with_options(
                &workload.data.graph,
                norm,
                TransitionOptions {
                    precision: Precision::F32,
                    ..TransitionOptions::default()
                },
            );
            t32.memory_bytes() as f64 / (1 << 20) as f64
        };
        let queries = workload.repository.sample(q, params.seed);
        let reference = engine(&transition, 1).solve_many(&queries).unwrap();

        let nodes = workload.node_count() as f64;
        let mut base_ms = f64::NAN;
        for &t in &threads_sweep {
            let pooled = pooled_engine(&transition, t, 0);
            assert_eq!(
                reference,
                pooled.solve_many(&queries).unwrap(),
                "pooled kernel diverged at scale {scale}, {t} threads"
            );
            let ms = time_ms(params.trials, || {
                pooled.solve_many(&queries).unwrap();
            });
            if t == 1 {
                base_ms = ms;
            }
            let peak_mb = rss::peak_rss_kb().unwrap_or(0) as f64 / 1024.0;
            table.push_row(vec![
                nodes,
                t as f64,
                ms,
                base_ms / ms,
                op_f64_mb,
                op_f32_mb,
                peak_mb,
            ]);
        }
    }
    table
}

fn engine(transition: &Transition, threads: usize) -> RwrEngine<'_> {
    let cfg = RwrConfig {
        threads,
        ..Default::default()
    };
    RwrEngine::new(transition, cfg).unwrap()
}

/// An engine dispatching through a pool with an explicit work threshold
/// (`min_work = 0` forces the parallel path regardless of problem size).
fn pooled_engine(transition: &Transition, threads: usize, min_work: usize) -> RwrEngine<'_> {
    let cfg = RwrConfig {
        threads,
        ..Default::default()
    };
    RwrEngine::with_pool(
        transition,
        cfg,
        PoolHandle::with_min_work(threads, min_work),
        Arc::new(ScratchPool::new()),
    )
    .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn thread_scaling_sweeps_worker_counts() {
        let w = Workload::build(Scale::Tiny, 7);
        let params = RwrBenchParams {
            query_counts: vec![2],
            trials: 1,
            scaling_threads: vec![1, 2],
            ..Default::default()
        };
        let t = thread_scaling(&w, &params);
        assert_eq!(t.columns, vec!["threads", "q2_ms", "q2_speedup"]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], 1.0);
        assert_eq!(t.rows[1][0], 2.0);
        assert_eq!(t.rows[0][2], 1.0, "base row speedup is 1 by definition");
        for row in &t.rows {
            assert!(row[1] > 0.0);
            assert!(row[2].is_finite() && row[2] > 0.0);
        }
    }

    #[test]
    fn node_thread_scaling_covers_scales_and_threads() {
        let params = RwrBenchParams {
            trials: 1,
            scaling_threads: vec![1, 2],
            seed: 7,
            ..Default::default()
        };
        let t = node_thread_scaling(&[Scale::Tiny], &params);
        assert_eq!(
            t.columns,
            vec![
                "nodes",
                "threads",
                "q5_ms",
                "q5_speedup",
                "op_f64_mb",
                "op_f32_mb",
                "peak_rss_mb"
            ]
        );
        assert_eq!(t.rows.len(), 2, "one row per thread count");
        for row in &t.rows {
            assert_eq!(row[0], 100.0, "tiny preset is 100 nodes");
            assert!(row[2] > 0.0);
            assert!(row[3].is_finite() && row[3] > 0.0);
            // f32 operator must be strictly smaller, by less than half
            // (offsets/targets stay u32 either way).
            assert!(row[5] < row[4]);
            assert!(row[5] > row[4] / 2.0);
        }
        assert_eq!(t.rows[0][1], 1.0);
        assert_eq!(t.rows[0][3], 1.0, "base row speedup is 1 by definition");
    }

    #[test]
    fn produces_one_row_per_query_count() {
        let w = Workload::build(Scale::Tiny, 7);
        let params = RwrBenchParams {
            query_counts: vec![2, 3],
            trials: 1,
            threads: 2,
            ..Default::default()
        };
        let t = run(&w, &params);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], 2.0);
        assert_eq!(t.rows[1][0], 3.0);
        // Times are positive and speedups finite.
        for row in &t.rows {
            assert!(row[1..4].iter().all(|&ms| ms > 0.0));
            assert!(row[4..].iter().all(|&s| s.is_finite() && s > 0.0));
        }
    }
}
