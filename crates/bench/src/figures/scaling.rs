//! Scaling study — the paper's absolute-time anchors.
//!
//! Sec. 7.4 reports that *without* pre-partitioning, a query on the
//! ~315K-node DBLP graph takes 40–60 s, dominated by the individual-score
//! computation. This runner measures, across generator scales, the costs
//! of each pipeline stage so `EXPERIMENTS.md` can compare shapes (and, at
//! `Scale::Paper`, absolute magnitudes) against those anchors:
//!
//! * graph generation (not part of the paper's timing — context only);
//! * normalization (Eq. 10 + Eq. 5; one-time per graph);
//! * the RWR solve per query count (the dominant online cost);
//! * EXTRACT on top of precomputed scores.

use std::time::Instant;

use ceps_core::{CepsConfig, CepsEngine, QueryType};

use crate::report::Table;
use crate::workload::{stats, Workload};
use crate::Scale;

/// Parameters for the scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingParams {
    /// Scales to measure.
    pub scales: Vec<Scale>,
    /// Query counts to time.
    pub query_counts: Vec<usize>,
    /// Budget for the extraction stage.
    pub budget: usize,
    /// Timed repetitions per cell.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for ScalingParams {
    fn default() -> Self {
        ScalingParams {
            scales: vec![Scale::Tiny, Scale::Small, Scale::Medium],
            query_counts: vec![2, 5],
            budget: 20,
            trials: 3,
            seed: 31,
        }
    }
}

/// Runs the sweep. Column unit is milliseconds.
pub fn run(params: &ScalingParams) -> Table {
    let mut columns = vec![
        "nodes".to_string(),
        "edges".to_string(),
        "normalize_ms".to_string(),
    ];
    for &q in &params.query_counts {
        columns.push(format!("rwr_q{q}_ms"));
        columns.push(format!("pipeline_q{q}_ms"));
    }
    let mut table = Table::new("Scaling: per-stage cost vs graph size (AND, b=20)", columns);

    for &scale in &params.scales {
        let workload = Workload::build(scale, params.seed);
        let graph = &workload.data.graph;

        let t0 = Instant::now();
        let cfg = CepsConfig::default()
            .query_type(QueryType::And)
            .budget(params.budget);
        let engine = CepsEngine::new(graph, cfg).expect("valid config");
        let normalize_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut row = vec![
            graph.node_count() as f64,
            graph.edge_count() as f64,
            normalize_ms,
        ];
        for &q in &params.query_counts {
            let mut rwr_times = Vec::new();
            let mut pipe_times = Vec::new();
            for t in 0..params.trials {
                let queries = workload.repository.sample(q, params.seed ^ t as u64);
                let t1 = Instant::now();
                let _scores = engine.individual_scores(&queries).expect("rwr");
                rwr_times.push(t1.elapsed().as_secs_f64() * 1e3);
                let t2 = Instant::now();
                let _res = engine.run(&queries).expect("pipeline");
                pipe_times.push(t2.elapsed().as_secs_f64() * 1e3);
            }
            row.push(stats(&rwr_times).mean);
            row.push(stats(&pipe_times).mean);
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_rows_grow_with_scale() {
        let params = ScalingParams {
            scales: vec![Scale::Tiny, Scale::Small],
            query_counts: vec![2],
            budget: 8,
            trials: 1,
            seed: 1,
        };
        let table = run(&params);
        assert_eq!(table.rows.len(), 2);
        // Node counts ascend with scale.
        assert!(table.rows[1][0] > table.rows[0][0]);
        // All timings are non-negative and finite.
        for row in &table.rows {
            for &v in &row[2..] {
                assert!(v.is_finite() && v >= 0.0);
            }
        }
    }
}
