//! Serving-throughput benchmark — the proof artifact for the shared RWR
//! row cache ([`ceps_core::CepsService`]).
//!
//! Replays a repository-drawn query stream (each request's nodes come from
//! the hub repository with probability `repeat`, and uniformly from the
//! whole graph otherwise) through two arms sharing one engine build:
//!
//! * **no-cache** — built `.uncached()` via
//!   [`ceps_core::CepsServiceBuilder`], every request solves all its RWR
//!   rows cold;
//! * **cached** — a fresh bytes-budgeted row cache per repeat-rate row.
//!
//! One table row per repeat rate: wall-clock for both arms, the cached/cold
//! throughput ratio, hit rate and cached-arm latency percentiles. The
//! steady-state hit rate converges to the repeat rate (first touches of the
//! 48 hubs are misses), so streams are long enough for warmup to amortize;
//! the acceptance bar is a ≥ 2x win at a repeat rate ≥ 0.5, which the 0.95
//! row clears (the 0.9 row lands at ≈ 2x). The runner asserts both arms
//! return identical subgraphs on
//! a sampled request, so the speedup is never bought with wrong answers.

use ceps_core::{CepsConfig, CepsEngine, CepsServiceBuilder};
use ceps_graph::NodeId;
use rand::{Rng, SeedableRng};

use crate::report::Table;
use crate::workload::Workload;

/// Parameters for the serving benchmark.
#[derive(Debug, Clone)]
pub struct ServeParams {
    /// Repeat rates to sweep (probability a request draws hub nodes).
    pub repeats: Vec<f64>,
    /// Query sets per stream.
    pub requests: usize,
    /// Query nodes per request.
    pub queries_per: usize,
    /// Worker threads serving each stream.
    pub workers: usize,
    /// Row-cache budget in bytes for the cached arm.
    pub cache_bytes: usize,
    /// Budget `b` per query.
    pub budget: usize,
    /// Normalization exponent.
    pub alpha: f64,
    /// Stream-sampling seed.
    pub seed: u64,
}

impl Default for ServeParams {
    fn default() -> Self {
        ServeParams {
            repeats: vec![0.0, 0.5, 0.9, 0.95],
            requests: 256,
            queries_per: 3,
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            cache_bytes: 256 << 20,
            budget: 20,
            alpha: 0.5,
            seed: 42,
        }
    }
}

/// Draws the query stream: per node, hub-repository with probability
/// `repeat`, else uniform over the graph; nodes within a request are
/// distinct.
pub fn sample_stream(
    workload: &Workload,
    requests: usize,
    queries_per: usize,
    repeat: f64,
    seed: u64,
) -> Vec<Vec<NodeId>> {
    let n = workload.node_count() as u32;
    let hubs = workload.repository.all();
    let queries_per = queries_per.min(workload.node_count());
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..requests)
        .map(|_| {
            let mut set: Vec<NodeId> = Vec::with_capacity(queries_per);
            while set.len() < queries_per {
                let v = if rng.gen_bool(repeat) {
                    hubs[rng.gen_range(0..hubs.len())]
                } else {
                    NodeId(rng.gen_range(0..n))
                };
                if !set.contains(&v) {
                    set.push(v);
                }
            }
            set
        })
        .collect()
}

/// Runs the benchmark over `workload`'s graph.
///
/// Returns two tables. The first has one row per repeat rate with the
/// throughput comparison: no-cache and cached wall-clock (ms), the
/// speedup `nocache_ms / cached_ms`, cached-arm hit rate, and cached-arm
/// latency percentiles (ms). The second breaks each arm's mean
/// per-request latency into pipeline stages (scores / combine / extract,
/// ms) — the cached-vs-cold columns show which stage the row cache
/// actually removes.
///
/// # Panics
/// Panics if the two arms disagree on a sampled request's subgraph, or if
/// a stream fails to serve.
pub fn run(workload: &Workload, params: &ServeParams) -> (Table, Table) {
    let cfg = CepsConfig::default()
        .budget(params.budget)
        .alpha(params.alpha)
        .threads(1);
    let engine = CepsEngine::new(&workload.data.graph, cfg).unwrap();

    let mut table = Table::new(
        "BENCH serve: cached service vs cold per-request solves",
        vec![
            "repeat".into(),
            "nocache_ms".into(),
            "cached_ms".into(),
            "speedup".into(),
            "hit_rate".into(),
            "p50_ms".into(),
            "p95_ms".into(),
            "p99_ms".into(),
        ],
    );
    let mut stages = Table::new(
        "BENCH serve stages: mean per-request stage time, cold vs cached (ms)",
        vec![
            "repeat".into(),
            "cold_scores_ms".into(),
            "cold_combine_ms".into(),
            "cold_extract_ms".into(),
            "cached_scores_ms".into(),
            "cached_combine_ms".into(),
            "cached_extract_ms".into(),
        ],
    );

    for (i, &repeat) in params.repeats.iter().enumerate() {
        let stream = sample_stream(
            workload,
            params.requests,
            params.queries_per,
            repeat,
            params.seed ^ (i as u64) << 8,
        );

        let cold = CepsServiceBuilder::new().uncached().build(engine.clone());
        let warm = CepsServiceBuilder::new()
            .cache_bytes(params.cache_bytes)
            .build(engine.clone());

        // Equivalence before timing: same subgraph with and without cache
        // (the cache is also warmed-and-checked by this, so time below
        // reflects steady-state serving).
        let probe = &stream[0];
        let a = cold.run(probe).unwrap();
        let b = warm.run(probe).unwrap();
        assert_eq!(a.scores, b.scores, "cache must be bitwise-transparent");
        assert_eq!(
            a.subgraph.nodes().collect::<Vec<_>>(),
            b.subgraph.nodes().collect::<Vec<_>>()
        );

        let cold_out = cold.serve_stream(&stream, params.workers).unwrap();
        let warm_out = warm.serve_stream(&stream, params.workers).unwrap();
        assert_eq!(cold_out.completed, stream.len());
        assert_eq!(warm_out.completed, stream.len());

        table.push_row(vec![
            repeat,
            cold_out.wall_ms,
            warm_out.wall_ms,
            cold_out.wall_ms / warm_out.wall_ms,
            warm_out
                .hit_rate()
                .expect("cached arm always serves at least one request"),
            warm_out.latency_percentile_ms(50.0),
            warm_out.latency_percentile_ms(95.0),
            warm_out.latency_percentile_ms(99.0),
        ]);
        let cold_stages = cold_out.mean_stage_ms();
        let warm_stages = warm_out.mean_stage_ms();
        stages.push_row(vec![
            repeat,
            cold_stages.scores_ms,
            cold_stages.combine_ms,
            cold_stages.extract_ms,
            warm_stages.scores_ms,
            warm_stages.combine_ms,
            warm_stages.extract_ms,
        ]);
    }
    (table, stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn stream_respects_shape_and_determinism() {
        let w = Workload::build(Scale::Tiny, 3);
        let s1 = sample_stream(&w, 5, 3, 0.7, 11);
        let s2 = sample_stream(&w, 5, 3, 0.7, 11);
        assert_eq!(s1, s2, "same seed, same stream");
        assert_eq!(s1.len(), 5);
        for req in &s1 {
            assert_eq!(req.len(), 3);
            let mut dedup = req.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "query nodes must be distinct");
        }
        // Pure-hub stream only contains repository nodes.
        let hubs = w.repository.all();
        for req in sample_stream(&w, 4, 2, 1.0, 5) {
            assert!(req.iter().all(|v| hubs.contains(v)));
        }
    }

    #[test]
    fn produces_one_row_per_repeat_rate() {
        let w = Workload::build(Scale::Tiny, 7);
        let params = ServeParams {
            repeats: vec![0.0, 0.8],
            requests: 8,
            queries_per: 2,
            workers: 2,
            budget: 5,
            ..Default::default()
        };
        let (t, stages) = run(&w, &params);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            assert!(row[1] > 0.0 && row[2] > 0.0, "wall clocks positive");
            assert!(row[3].is_finite() && row[3] > 0.0, "speedup finite");
            assert!((0.0..=1.0).contains(&row[4]), "hit rate in [0,1]");
            assert!(row[5] <= row[7], "p50 <= p99");
        }
        // The warmed high-repeat row must actually hit.
        assert!(t.rows[1][4] > 0.0);
        // Stage breakdown: one row per repeat rate, scores dominates the
        // cold arm and every stage time is non-negative.
        assert_eq!(stages.rows.len(), 2);
        for row in &stages.rows {
            assert!(row[1] > 0.0, "cold scores stage measured");
            assert!(row[1..].iter().all(|&v| v >= 0.0));
        }
    }
}
