//! # ceps-bench
//!
//! The experiment harness: for **every figure in the paper's evaluation
//! section** (Sec. 7) there is a runner here that regenerates the same
//! series on the synthetic DBLP stand-in:
//!
//! | Paper artifact | Runner | What it sweeps |
//! |---|---|---|
//! | Fig. 2 (connection subgraph case study) | [`figures::case_studies`] | CePS vs delivered current, both query orders |
//! | Fig. 1 / Fig. 3 (multi-query case studies) | [`figures::case_studies`] | `AND` vs `K_softAND` on cross-community queries |
//! | Fig. 4(a)(b) | [`figures::fig4`] | NRatio / ERatio vs budget `b`, per query count `Q` |
//! | Fig. 5(a)(b) | [`figures::fig5`] | NRatio / ERatio vs normalization `α`, per `Q` |
//! | Fig. 6(a)(b) + the 6:1 headline | [`figures::fig6`] | RelRatio & response time vs partition count `p` |
//!
//! The `experiments` binary drives them and writes printed tables plus CSV
//! and JSON files; `EXPERIMENTS.md` at the workspace root records the
//! measured numbers next to the paper's.
//!
//! Criterion micro-benchmarks (in `benches/`) cover the substrate
//! hot paths: the RWR solver, score combination, EXTRACT, and the
//! partitioner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod quality;
pub mod regression;
pub mod report;
pub mod rss;
pub mod workload;

/// Scale presets for the experiment graphs.
///
/// Variants are declared smallest-first, so the derived `Ord` compares by
/// graph size (used by the nodes × threads sweep to cap its largest scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scale {
    /// ~100 nodes — CI-friendly smoke scale.
    Tiny,
    /// ~1K nodes — default for quick local runs.
    Small,
    /// ~10K nodes — evaluation sweeps.
    Medium,
    /// ~80K nodes — timing experiments.
    Large,
    /// ~315K nodes — the paper's DBLP scale.
    Paper,
}

impl Scale {
    /// Parses a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The generator configuration for this scale.
    pub fn config(self) -> ceps_datagen::CoauthorConfig {
        match self {
            Scale::Tiny => ceps_datagen::CoauthorConfig::tiny(),
            Scale::Small => ceps_datagen::CoauthorConfig::small(),
            Scale::Medium => ceps_datagen::CoauthorConfig::medium(),
            Scale::Large => ceps_datagen::CoauthorConfig::large(),
            Scale::Paper => ceps_datagen::CoauthorConfig::paper_scale(),
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
            Scale::Paper => "paper",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse_round_trips() {
        for s in [
            Scale::Tiny,
            Scale::Small,
            Scale::Medium,
            Scale::Large,
            Scale::Paper,
        ] {
            assert_eq!(Scale::parse(&s.to_string()), Some(s));
        }
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn scales_order_by_size() {
        assert!(Scale::Tiny < Scale::Small);
        assert!(Scale::Small < Scale::Medium);
        assert!(Scale::Medium < Scale::Large);
        assert!(Scale::Large < Scale::Paper);
    }
}
