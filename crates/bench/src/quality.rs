//! The `f32` precision quality gate.
//!
//! `--precision f32` halves the normalized operator's memory traffic by
//! storing coefficients in `f32` (accumulation stays `f64`). That is only
//! an acceptable trade if the end-to-end pipeline output is unaffected:
//! the combined scores may drift by at most the coefficient rounding
//! amplified through the damped power iteration, and the EXTRACT stage —
//! which consumes score *rankings*, not magnitudes — must return the same
//! subgraph.
//!
//! [`precision_check`] runs the full pipeline twice on one workload (once
//! per precision) over several query sets and enforces both bounds. The
//! `experiments -- check` command runs it after the timing regression
//! gate, so a coefficient-precision regression fails CI the same way a
//! performance regression does.

use ceps_core::{CepsConfig, CepsEngine};
use ceps_graph::{NodeId, Precision};

use crate::report::Table;
use crate::workload::Workload;
use crate::Scale;

/// Maximum tolerated absolute drift per combined score. Coefficients carry
/// ~1e-7 relative rounding; 50 iterations of the `c = 0.5`-damped walk
/// keep the accumulated drift orders of magnitude below this.
pub const MAX_SCORE_ABS_DIFF: f64 = 1e-5;

/// Query-set sizes exercised by the gate (mirrors the benchmark sweep).
pub const CHECK_QUERY_COUNTS: [usize; 3] = [2, 5, 10];

/// Outcome of the precision gate.
#[derive(Debug)]
pub struct PrecisionReport {
    /// Per-query-count summary (max score drift, extraction agreement).
    pub table: Table,
    /// Largest absolute combined-score difference seen anywhere.
    pub max_abs_diff: f64,
    /// Whether every query set stayed within [`MAX_SCORE_ABS_DIFF`] *and*
    /// produced identical extractions and top-node rankings.
    pub passed: bool,
}

/// Runs the full CePS pipeline at `f64` and `f32` coefficient precision on
/// one workload and compares the outputs.
///
/// For each query count in [`CHECK_QUERY_COUNTS`] the gate asserts:
///
/// 1. combined scores agree within [`MAX_SCORE_ABS_DIFF`] per node;
/// 2. the extracted subgraphs contain exactly the same nodes;
/// 3. `top_scoring_nodes(budget)` rank identically.
///
/// Solves run single-threaded so the comparison is deterministic.
pub fn precision_check(scale: Scale, seed: u64) -> PrecisionReport {
    let workload = Workload::build(scale, seed);
    let cfg = CepsConfig::default().threads(1);
    let f64_engine = CepsEngine::new(&workload.data.graph, cfg).unwrap();
    let f32_engine = CepsEngine::new(&workload.data.graph, cfg.precision(Precision::F32)).unwrap();

    let mut table = Table::new(
        "CHECK f32 precision: pipeline drift vs f64",
        vec![
            "Q".into(),
            "max_abs_diff".into(),
            "same_subgraph".into(),
            "same_top_nodes".into(),
        ],
    );
    let mut max_abs_diff: f64 = 0.0;
    let mut passed = true;
    for (i, &q) in CHECK_QUERY_COUNTS.iter().enumerate() {
        let queries = workload.repository.sample(q, seed ^ i as u64);
        let a = f64_engine.run(&queries).unwrap();
        let b = f32_engine.run(&queries).unwrap();

        let mut q_diff: f64 = 0.0;
        for (x, y) in a.combined.iter().zip(&b.combined) {
            q_diff = q_diff.max((x - y).abs());
        }
        let sorted = |s: &ceps_graph::Subgraph| {
            let mut v: Vec<NodeId> = s.nodes().collect();
            v.sort();
            v
        };
        let same_subgraph = sorted(&a.subgraph) == sorted(&b.subgraph);
        let same_top = a.top_scoring_nodes(cfg.budget) == b.top_scoring_nodes(cfg.budget);

        max_abs_diff = max_abs_diff.max(q_diff);
        passed &= q_diff <= MAX_SCORE_ABS_DIFF && same_subgraph && same_top;
        table.push_row(vec![
            q as f64,
            q_diff,
            f64::from(u8::from(same_subgraph)),
            f64::from(u8::from(same_top)),
        ]);
    }
    PrecisionReport {
        table,
        max_abs_diff,
        passed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_passes_on_the_small_preset() {
        let report = precision_check(Scale::Tiny, 42);
        assert!(
            report.passed,
            "precision gate failed: max diff {}\n{}",
            report.max_abs_diff,
            report.table.render()
        );
        assert!(report.max_abs_diff <= MAX_SCORE_ABS_DIFF);
        assert_eq!(report.table.rows.len(), CHECK_QUERY_COUNTS.len());
        // The drift must be nonzero (f32 really is coarser) yet bounded —
        // a zero diff would mean the f32 path silently ran f64.
        assert!(report.max_abs_diff > 0.0, "suspiciously exact f32 run");
    }
}
