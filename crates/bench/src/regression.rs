//! Performance-regression gate over committed benchmark baselines.
//!
//! CI (and developers, via `experiments -- check`) compare the headline
//! numbers of a fresh `BENCH_rwr.json` / `BENCH_serve.json` /
//! `BENCH_loadgen.json` run against
//! the baselines committed under `results/`. The gate is **one-sided**:
//! only a drop below `baseline - tolerance` fails; improvements always
//! pass (and are the signal to reseed the baseline).
//!
//! Benchmarks on shared CI runners are noisy, so the default bands are
//! deliberately wide (60% relative on the RWR speedups, 40% on serving
//! throughput — see [`default_gates`]). The `--tolerance` flag
//! scales every band uniformly for machines noisier (or quieter) than the
//! default assumption. Metrics can additionally pin an absolute floor
//! (never pass below it, whatever the baseline) and a minimum x — the
//! `par_speedup` gate uses both: with the pool's sequential fallback the
//! parallel path must never lose to the batched kernel at `Q ≥ 5`, on any
//! core count, so it is gated with a hard `1.0` floor there.

use std::fmt::Write as _;
use std::path::Path;

use serde_json::Value;

/// How far below the baseline a metric may drift before failing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Relative band: pass while `current >= baseline * (1 - f)`.
    Rel(f64),
    /// Absolute band: pass while `current >= baseline - d`.
    Abs(f64),
}

impl Tolerance {
    /// The lowest passing value for `baseline`, with every band scaled
    /// by `scale` (the `--tolerance` multiplier).
    fn floor(self, baseline: f64, scale: f64) -> f64 {
        match self {
            Tolerance::Rel(f) => baseline * (1.0 - f * scale),
            Tolerance::Abs(d) => baseline - d * scale,
        }
    }
}

/// One gated metric: a column of a benchmark table plus its band.
#[derive(Debug, Clone)]
pub struct MetricSpec {
    /// Column name in the benchmark table (e.g. `"block_speedup"`).
    pub column: String,
    /// Allowed drop below baseline.
    pub tolerance: Tolerance,
    /// Only gate rows whose x (first column) is at least this; `None`
    /// gates every row. Lets a metric skip sweep points where it is not
    /// meaningful (e.g. `par_speedup` at tiny `Q`).
    pub min_x: Option<f64>,
    /// Absolute floor the current value must clear regardless of how low
    /// the baseline (and its tolerance band) sit. The effective floor is
    /// the max of this and the tolerance floor; `--tolerance` scaling
    /// never relaxes it.
    pub floor: Option<f64>,
}

impl MetricSpec {
    /// A spec gating every row of `column` with `tolerance` alone.
    pub fn new(column: impl Into<String>, tolerance: Tolerance) -> Self {
        MetricSpec {
            column: column.into(),
            tolerance,
            min_x: None,
            floor: None,
        }
    }

    /// Restricts the gate to rows with x ≥ `min_x`.
    pub fn min_x(mut self, min_x: f64) -> Self {
        self.min_x = Some(min_x);
        self
    }

    /// Adds an absolute floor under the tolerance band.
    pub fn floor(mut self, floor: f64) -> Self {
        self.floor = Some(floor);
        self
    }
}

/// One gated artifact: a JSON file and the metrics checked inside it.
#[derive(Debug, Clone)]
pub struct GateSpec {
    /// Artifact file name, identical under both directories
    /// (e.g. `"BENCH_rwr.json"`).
    pub artifact: String,
    /// Metrics to compare, looked up by column name.
    pub metrics: Vec<MetricSpec>,
}

/// The default gate set: RWR kernel, serving-throughput and open-loop
/// load-quality headlines.
///
/// The RWR speedup bands are wider (60%) than the serving ones (40%):
/// the baseline is measured at the large preset, where back-to-back runs
/// on a shared host were observed to swing the speedup ratios by 2-3×
/// whenever a noisy neighbour compressed the cache (the scalar loop and
/// the batched kernel degrade at different rates). `par_speedup` is
/// additionally core-count sensitive; what actually protects it is the
/// absolute `1.0` floor at `Q ≥ 5` — with the pool's sequential fallback,
/// the parallel path must never lose to the batched kernel there, on any
/// machine — plus CI's own absolute `≥ 1.5` assertion on the large preset.
///
/// The loadgen gate deliberately avoids the knee rate (absolute capacity
/// is machine-dependent) and watches the base probe's quality ratios
/// instead: a healthy server completes essentially every request at the
/// search's lowest rate (`ok_rate`, hard-floored at 0.80) and keeps up
/// with the offered schedule (`achieved_ratio`).
pub fn default_gates() -> Vec<GateSpec> {
    vec![
        GateSpec {
            artifact: "BENCH_rwr.json".into(),
            metrics: vec![
                MetricSpec::new("block_speedup", Tolerance::Rel(0.60)),
                MetricSpec::new("par_speedup", Tolerance::Rel(0.60))
                    .min_x(5.0)
                    .floor(1.0),
            ],
        },
        GateSpec {
            artifact: "BENCH_serve.json".into(),
            metrics: vec![
                MetricSpec::new("speedup", Tolerance::Rel(0.40)),
                MetricSpec::new("hit_rate", Tolerance::Abs(0.10)),
            ],
        },
        GateSpec {
            artifact: "BENCH_loadgen.json".into(),
            metrics: vec![
                MetricSpec::new("ok_rate", Tolerance::Abs(0.10)).floor(0.80),
                MetricSpec::new("achieved_ratio", Tolerance::Abs(0.25)),
            ],
        },
    ]
}

/// One comparison line of the gate report.
#[derive(Debug, Clone)]
pub struct CheckRow {
    /// Artifact file name.
    pub artifact: String,
    /// Metric column name.
    pub metric: String,
    /// First-column value of the row (the sweep's x-axis).
    pub x: f64,
    /// Baseline value.
    pub baseline: f64,
    /// Current value, if the current artifact has a matching row.
    pub current: Option<f64>,
    /// Lowest passing value under the (scaled) tolerance band.
    pub floor: f64,
    /// Whether this line passes.
    pub pass: bool,
}

/// Outcome of a full gate run: per-metric rows plus structural failures
/// (missing artifacts, tables, or columns).
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// One line per compared (artifact, metric, row).
    pub rows: Vec<CheckRow>,
    /// Failures that prevented a comparison (missing file/column/row).
    pub errors: Vec<String>,
}

impl GateReport {
    /// True when every row passed and nothing was missing.
    pub fn passed(&self) -> bool {
        self.errors.is_empty() && !self.rows.is_empty() && self.rows.iter().all(|r| r.pass)
    }

    /// Renders the pass/fail table plus any structural errors.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## Regression gate");
        let header = format!(
            "  {:<16}  {:<13}  {:>6}  {:>10}  {:>10}  {:>10}  {}",
            "artifact", "metric", "x", "baseline", "current", "floor", "status"
        );
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "  {}", "-".repeat(header.len() - 2));
        for r in &self.rows {
            let current = r
                .current
                .map_or_else(|| "missing".into(), |v| format!("{v:.4}"));
            let _ = writeln!(
                out,
                "  {:<16}  {:<13}  {:>6}  {:>10.4}  {:>10}  {:>10.4}  {}",
                r.artifact,
                r.metric,
                r.x,
                r.baseline,
                current,
                r.floor,
                if r.pass { "ok" } else { "FAIL" }
            );
        }
        for e in &self.errors {
            let _ = writeln!(out, "  FAIL: {e}");
        }
        let _ = writeln!(
            out,
            "  => {}",
            if self.passed() {
                "pass"
            } else {
                "REGRESSION DETECTED"
            }
        );
        out
    }
}

/// A benchmark table pulled out of a `{meta, tables}` JSON artifact.
struct LoadedTable {
    columns: Vec<String>,
    rows: Vec<Vec<f64>>,
}

fn load_tables(path: &Path) -> Result<Vec<LoadedTable>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc: Value =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    let tables = doc
        .get("tables")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{}: no \"tables\" array", path.display()))?;
    let mut out = Vec::new();
    for t in tables {
        let columns: Vec<String> = t
            .get("columns")
            .and_then(Value::as_array)
            .map(|cs| {
                cs.iter()
                    .filter_map(Value::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        let rows: Vec<Vec<f64>> = t
            .get("rows")
            .and_then(Value::as_array)
            .map(|rs| {
                rs.iter()
                    .filter_map(Value::as_array)
                    .map(|r| r.iter().filter_map(Value::as_f64).collect())
                    .collect()
            })
            .unwrap_or_default();
        out.push(LoadedTable { columns, rows });
    }
    Ok(out)
}

/// Finds the first table containing `column`, returning the column index.
fn find_column<'t>(tables: &'t [LoadedTable], column: &str) -> Option<(&'t LoadedTable, usize)> {
    tables.iter().find_map(|t| {
        t.columns
            .iter()
            .position(|c| c == column)
            .map(|idx| (t, idx))
    })
}

/// X values are sweep knobs (budgets, repeat rates) serialized through
/// f64; exact equality is too brittle across serialize round-trips.
fn same_x(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Compares the artifacts under `current_dir` against `baseline_dir`.
///
/// Every baseline row must have a matching current row (matched on the
/// first column) whose gated metrics sit above the tolerance floor.
/// Missing artifacts, columns, or rows count as failures — a gate that
/// silently skips an absent benchmark would pass on a broken build.
pub fn check(
    baseline_dir: &Path,
    current_dir: &Path,
    gates: &[GateSpec],
    tolerance_scale: f64,
) -> GateReport {
    let mut report = GateReport::default();
    for gate in gates {
        let baseline = match load_tables(&baseline_dir.join(&gate.artifact)) {
            Ok(t) => t,
            Err(e) => {
                report.errors.push(format!("baseline {e}"));
                continue;
            }
        };
        let current = match load_tables(&current_dir.join(&gate.artifact)) {
            Ok(t) => t,
            Err(e) => {
                report.errors.push(format!("current {e}"));
                continue;
            }
        };
        for metric in &gate.metrics {
            let Some((base_table, base_idx)) = find_column(&baseline, &metric.column) else {
                report.errors.push(format!(
                    "baseline {}: no column {:?}",
                    gate.artifact, metric.column
                ));
                continue;
            };
            let Some((cur_table, cur_idx)) = find_column(&current, &metric.column) else {
                report.errors.push(format!(
                    "current {}: no column {:?}",
                    gate.artifact, metric.column
                ));
                continue;
            };
            for base_row in &base_table.rows {
                let (Some(&x), Some(&base_val)) = (base_row.first(), base_row.get(base_idx)) else {
                    continue;
                };
                if metric.min_x.is_some_and(|m| x < m) {
                    continue;
                }
                let current_val = cur_table
                    .rows
                    .iter()
                    .find(|r| r.first().is_some_and(|&cx| same_x(cx, x)))
                    .and_then(|r| r.get(cur_idx))
                    .copied();
                let band = metric.tolerance.floor(base_val, tolerance_scale);
                let floor = metric.floor.map_or(band, |f| band.max(f));
                let pass = current_val.is_some_and(|v| v >= floor);
                report.rows.push(CheckRow {
                    artifact: gate.artifact.clone(),
                    metric: metric.column.clone(),
                    x,
                    baseline: base_val,
                    current: current_val,
                    floor,
                    pass,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn write_artifact(dir: &Path, name: &str, speedup_by_q: &[(f64, f64)]) {
        std::fs::create_dir_all(dir).unwrap();
        let rows: Vec<Vec<f64>> = speedup_by_q
            .iter()
            .map(|&(q, s)| vec![q, 10.0 / s, 10.0, s])
            .collect();
        let table = serde_json::json!({
            "title": "BENCH rwr: batched block kernel vs scalar loop",
            "columns": vec!["Q", "block_ms", "unbatched_ms", "block_speedup"],
            "rows": rows,
        });
        let doc = serde_json::json!({
            "meta": serde_json::json!({"seed": 42u64}),
            "tables": vec![table],
        });
        std::fs::write(dir.join(name), serde_json::to_string_pretty(&doc).unwrap()).unwrap();
    }

    fn rwr_gate() -> Vec<GateSpec> {
        vec![GateSpec {
            artifact: "BENCH_rwr.json".into(),
            metrics: vec![MetricSpec::new("block_speedup", Tolerance::Rel(0.40))],
        }]
    }

    fn tmp(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ceps_gate_{label}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn identical_artifacts_pass() {
        let base = tmp("id_base");
        let cur = tmp("id_cur");
        write_artifact(&base, "BENCH_rwr.json", &[(2.0, 1.2), (5.0, 2.5)]);
        write_artifact(&cur, "BENCH_rwr.json", &[(2.0, 1.2), (5.0, 2.5)]);
        let report = check(&base, &cur, &rwr_gate(), 1.0);
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.rows.len(), 2);
        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cur);
    }

    #[test]
    fn improvement_and_in_band_drift_pass() {
        let base = tmp("drift_base");
        let cur = tmp("drift_cur");
        write_artifact(&base, "BENCH_rwr.json", &[(2.0, 2.0)]);
        // 2.0 with a 40% relative band: floor = 1.2; 1.3 drifts but passes,
        // and improvements are always fine.
        write_artifact(&cur, "BENCH_rwr.json", &[(2.0, 1.3)]);
        assert!(check(&base, &cur, &rwr_gate(), 1.0).passed());
        write_artifact(&cur, "BENCH_rwr.json", &[(2.0, 9.0)]);
        assert!(check(&base, &cur, &rwr_gate(), 1.0).passed());
        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cur);
    }

    #[test]
    fn perturbation_beyond_tolerance_fails() {
        let base = tmp("perturb_base");
        let cur = tmp("perturb_cur");
        write_artifact(&base, "BENCH_rwr.json", &[(2.0, 2.0), (5.0, 2.5)]);
        // floor for baseline 2.0 at 40% rel is 1.2 — 1.1 regresses.
        write_artifact(&cur, "BENCH_rwr.json", &[(2.0, 1.1), (5.0, 2.5)]);
        let report = check(&base, &cur, &rwr_gate(), 1.0);
        assert!(!report.passed());
        let failing: Vec<&CheckRow> = report.rows.iter().filter(|r| !r.pass).collect();
        assert_eq!(failing.len(), 1);
        assert!(same_x(failing[0].x, 2.0));
        assert!(report.render().contains("FAIL"));
        assert!(report.render().contains("REGRESSION DETECTED"));
        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cur);
    }

    #[test]
    fn tolerance_scale_widens_the_band() {
        let base = tmp("scale_base");
        let cur = tmp("scale_cur");
        write_artifact(&base, "BENCH_rwr.json", &[(2.0, 2.0)]);
        write_artifact(&cur, "BENCH_rwr.json", &[(2.0, 1.1)]);
        assert!(!check(&base, &cur, &rwr_gate(), 1.0).passed());
        // Doubling the band (80% rel) lowers the floor to 0.4.
        assert!(check(&base, &cur, &rwr_gate(), 2.0).passed());
        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cur);
    }

    #[test]
    fn missing_artifact_row_or_column_fail() {
        let base = tmp("miss_base");
        let cur = tmp("miss_cur");
        write_artifact(&base, "BENCH_rwr.json", &[(2.0, 2.0), (5.0, 2.5)]);

        // Missing current artifact.
        std::fs::create_dir_all(&cur).unwrap();
        let report = check(&base, &cur, &rwr_gate(), 1.0);
        assert!(!report.passed());
        assert!(report.errors[0].contains("current"));

        // Missing row (current lost the Q=5 sweep point).
        write_artifact(&cur, "BENCH_rwr.json", &[(2.0, 2.0)]);
        let report = check(&base, &cur, &rwr_gate(), 1.0);
        assert!(!report.passed());
        assert!(report
            .rows
            .iter()
            .any(|r| same_x(r.x, 5.0) && r.current.is_none() && !r.pass));

        // Missing column.
        let mut gates = rwr_gate();
        gates[0].metrics[0].column = "no_such_metric".into();
        let report = check(&base, &cur, &gates, 1.0);
        assert!(!report.passed());
        assert!(report.errors.iter().any(|e| e.contains("no_such_metric")));

        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cur);
    }

    #[test]
    fn empty_report_does_not_pass() {
        assert!(!GateReport::default().passed());
    }

    #[test]
    fn min_x_restricts_gated_rows() {
        let base = tmp("minx_base");
        let cur = tmp("minx_cur");
        write_artifact(&base, "BENCH_rwr.json", &[(2.0, 2.0), (5.0, 2.5)]);
        // Q=2 collapses but the gate only watches Q >= 5.
        write_artifact(&cur, "BENCH_rwr.json", &[(2.0, 0.1), (5.0, 2.5)]);
        let mut gates = rwr_gate();
        gates[0].metrics[0] = gates[0].metrics[0].clone().min_x(5.0);
        let report = check(&base, &cur, &gates, 1.0);
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.rows.len(), 1, "Q=2 row skipped");
        assert!(same_x(report.rows[0].x, 5.0));
        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cur);
    }

    #[test]
    fn absolute_floor_binds_below_the_tolerance_band() {
        let base = tmp("floor_base");
        let cur = tmp("floor_cur");
        // Baseline 1.3 with a 40% band puts the relative floor at 0.78 —
        // but the absolute floor 1.0 still rejects 0.9.
        write_artifact(&base, "BENCH_rwr.json", &[(5.0, 1.3)]);
        write_artifact(&cur, "BENCH_rwr.json", &[(5.0, 0.9)]);
        let mut gates = rwr_gate();
        gates[0].metrics[0] = gates[0].metrics[0].clone().floor(1.0);
        let report = check(&base, &cur, &gates, 1.0);
        assert!(!report.passed(), "{}", report.render());
        assert_eq!(report.rows[0].floor, 1.0);
        // Scaling the tolerance cannot relax the absolute floor.
        assert!(!check(&base, &cur, &gates, 10.0).passed());
        // 1.05 clears it.
        write_artifact(&cur, "BENCH_rwr.json", &[(5.0, 1.05)]);
        assert!(check(&base, &cur, &gates, 1.0).passed());
        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cur);
    }

    #[test]
    fn default_gates_cover_headlines_including_par_speedup() {
        let gates = default_gates();
        let all: Vec<&MetricSpec> = gates.iter().flat_map(|g| g.metrics.iter()).collect();
        let names: Vec<&str> = all.iter().map(|m| m.column.as_str()).collect();
        assert!(names.contains(&"block_speedup"));
        assert!(names.contains(&"speedup"));
        assert!(names.contains(&"hit_rate"));
        assert!(names.contains(&"ok_rate"));
        assert!(names.contains(&"achieved_ratio"));
        let ok = all
            .iter()
            .find(|m| m.column == "ok_rate")
            .expect("ok_rate is gated");
        assert_eq!(ok.floor, Some(0.80), "clean-run floor never relaxes");
        let par = all
            .iter()
            .find(|m| m.column == "par_speedup")
            .expect("par_speedup is gated");
        assert_eq!(par.min_x, Some(5.0), "only gated at Q >= 5");
        assert_eq!(par.floor, Some(1.0), "parallel must never lose to block");
    }
}
