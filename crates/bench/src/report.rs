//! Table printing and machine-readable result files.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use serde::Serialize;

/// A printable/serializable result table: one figure series.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Table title (e.g. `"Fig 4(a): mean NRatio vs budget"`).
    pub title: String,
    /// Column headers; first column is the x-axis.
    pub columns: Vec<String>,
    /// Rows of cells, aligned with `columns`.
    pub rows: Vec<Vec<f64>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width disagrees with the header.
    pub fn push_row(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut cells: Vec<Vec<String>> = vec![self.columns.clone()];
        for row in &self.rows {
            cells.push(row.iter().map(|v| format_cell(*v)).collect());
        }
        let widths: Vec<usize> = (0..self.columns.len())
            .map(|c| cells.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();

        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        for (i, row) in cells.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:>w$}", w = w))
                .collect();
            let _ = writeln!(out, "  {}", line.join("  "));
            if i == 0 {
                let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
                let _ = writeln!(out, "  {}", rule.join("  "));
            }
        }
        out
    }

    /// Serializes as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    /// Writes the CSV file into `dir`, deriving the file name from the
    /// title (lowercase, non-alphanumerics collapsed to `_`).
    ///
    /// # Errors
    /// I/O errors creating the directory or file.
    pub fn write_csv(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let stem: String = self
            .title
            .to_lowercase()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let stem = stem.trim_matches('_').replace("__", "_");
        let path = dir.join(format!("{stem}.csv"));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

fn format_cell(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e9 {
        format!("{}", v as i64)
    } else if v.abs() >= 0.01 || v == 0.0 {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

/// Writes all tables plus run metadata as one JSON document.
///
/// # Errors
/// I/O or serialization failures.
pub fn write_json<M: Serialize>(
    dir: &Path,
    name: &str,
    meta: &M,
    tables: &[Table],
) -> io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    #[derive(Serialize)]
    struct Doc<'a, M> {
        meta: &'a M,
        tables: &'a [Table],
    }
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(&Doc { meta, tables })
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig X: demo", vec!["b".into(), "Q=2".into()]);
        t.push_row(vec![10.0, 0.95]);
        t.push_row(vec![20.0, 0.999]);
        t
    }

    #[test]
    fn render_aligns_and_includes_title() {
        let s = sample().render();
        assert!(s.contains("## Fig X: demo"));
        assert!(s.contains("Q=2"));
        assert!(s.contains("0.9500"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "b,Q=2");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn csv_file_name_derived_from_title() {
        let dir = std::env::temp_dir().join("ceps_report_test");
        let path = sample().write_csv(&dir).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("fig_x"));
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_bundle_written() {
        let dir = std::env::temp_dir().join("ceps_report_json_test");
        let path = write_json(&dir, "demo", &serde_json::json!({"seed": 1}), &[sample()]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"seed\": 1"));
        assert!(text.contains("Fig X: demo"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.push_row(vec![1.0, 2.0]);
    }
}
