//! Peak-RSS sampling for the scaling tables.
//!
//! Timings alone do not tell the paper-scale story: the blocked layout and
//! `f32` coefficients exist to shrink the *working set*, so the nodes ×
//! threads table records the process's peak resident set next to each
//! row's timings. Linux exposes the high-water mark as `VmHWM` in
//! `/proc/self/status`; a privileged writer can reset it between
//! measurements through `/proc/self/clear_refs`.
//!
//! Both reads are best-effort: on platforms without procfs (or when
//! `clear_refs` is not writable, as in unprivileged containers) the
//! functions return `None` / `false` and the benchmark reports `0` for the
//! RSS columns rather than failing the run.

use std::fs;

/// The process's peak resident set size (`VmHWM`), in kilobytes, or
/// `None` when `/proc/self/status` is unavailable or unparseable.
pub fn peak_rss_kb() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm_kb(&status)
}

/// Attempts to reset the peak-RSS high-water mark by writing `5` to
/// `/proc/self/clear_refs` (see `proc(5)`). Returns whether the write
/// succeeded; failure is normal in unprivileged containers, in which case
/// [`peak_rss_kb`] keeps reporting the process-lifetime peak.
pub fn reset_peak_rss() -> bool {
    fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Extracts the `VmHWM` value (kB) from `/proc/self/status` text.
fn parse_vm_hwm_kb(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let status = "Name:\tceps\nVmPeak:\t  123 kB\nVmHWM:\t   4567 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm_kb(status), Some(4567));
        assert_eq!(parse_vm_hwm_kb("Name:\tceps\n"), None);
        assert_eq!(parse_vm_hwm_kb("VmHWM:\tgarbage kB\n"), None);
    }

    #[test]
    fn live_reading_is_plausible_on_linux() {
        // On Linux the reading must exist and exceed a trivially small
        // floor (any Rust test binary maps megabytes). Elsewhere `None`
        // is the contract.
        if cfg!(target_os = "linux") {
            let kb = peak_rss_kb().expect("procfs should expose VmHWM on linux");
            assert!(kb > 1024, "implausibly small peak RSS: {kb} kB");
        } else {
            assert_eq!(peak_rss_kb(), None);
        }
    }

    #[test]
    fn reset_is_best_effort() {
        // Whether or not the container lets us write clear_refs, the call
        // must not panic and VmHWM must stay readable afterwards.
        let _ = reset_peak_rss();
        if cfg!(target_os = "linux") {
            assert!(peak_rss_kb().is_some());
        }
    }
}
