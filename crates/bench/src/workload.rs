//! Workload construction shared by the figure runners and benches.

use ceps_datagen::{CoauthorGraph, QueryRepository};

use crate::Scale;

/// A generated graph plus its query repository — the paper's "Data Set" +
/// "Source Queries" setup.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The co-authorship graph and metadata.
    pub data: CoauthorGraph,
    /// The 13/13/11/11 query repository.
    pub repository: QueryRepository,
}

impl Workload {
    /// Builds the workload for a scale and seed.
    pub fn build(scale: Scale, seed: u64) -> Workload {
        let data = scale.config().seed(seed).generate();
        let repository = QueryRepository::from_graph(&data);
        Workload { data, repository }
    }

    /// Node count of the generated graph.
    pub fn node_count(&self) -> usize {
        self.data.graph.node_count()
    }

    /// Edge count of the generated graph.
    pub fn edge_count(&self) -> usize {
        self.data.graph.edge_count()
    }
}

/// Simple statistics over repeated trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Sample count.
    pub n: usize,
}

/// Computes mean and population std of the samples (0.0/0.0 for empty).
pub fn stats(samples: &[f64]) -> Stats {
    let n = samples.len();
    if n == 0 {
        return Stats {
            mean: 0.0,
            std: 0.0,
            n: 0,
        };
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    Stats {
        mean,
        std: var.sqrt(),
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds_with_repository() {
        let w = Workload::build(Scale::Tiny, 3);
        assert_eq!(w.node_count(), 100);
        assert!(w.edge_count() > 0);
        assert_eq!(w.repository.group_count(), 4);
    }

    #[test]
    fn stats_basics() {
        let s = stats(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.n, 3);
        assert_eq!(stats(&[]).n, 0);
    }
}
