//! End-to-end `f32` precision gate on a non-toy workload.
//!
//! The unit test in `quality.rs` covers the tiny preset; this integration
//! test runs the same gate on the medium (~10K node) workload, where the
//! power iteration touches far more coefficients per solve and any
//! systematic `f32` drift would have room to accumulate past the bound.

use ceps_bench::quality::{precision_check, MAX_SCORE_ABS_DIFF};
use ceps_bench::Scale;

#[test]
fn f32_precision_holds_on_the_medium_workload() {
    let report = precision_check(Scale::Medium, 42);
    assert!(
        report.passed,
        "precision gate failed on medium: max |diff| = {:.3e} (bound {:.1e})\n{}",
        report.max_abs_diff,
        MAX_SCORE_ABS_DIFF,
        report.table.render()
    );
    // Sanity on the report shape: one row per query count, each recording
    // identical extraction and ranking (columns 2 and 3 are 1.0 flags).
    for row in &report.table.rows {
        assert_eq!(row[2], 1.0, "subgraph mismatch at Q = {}", row[0]);
        assert_eq!(row[3], 1.0, "top-node ranking mismatch at Q = {}", row[0]);
    }
}
