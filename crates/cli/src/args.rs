//! Argument parsing — hand-rolled to stay within the workspace's
//! dependency policy (no clap).

use std::collections::HashMap;
use std::path::PathBuf;

use ceps_core::QueryType;
use ceps_graph::Precision;
use ceps_load::ArrivalKind;

use crate::CliError;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `ceps generate` — write a synthetic co-authorship graph.
    Generate {
        /// Scale preset name.
        scale: String,
        /// Generator seed.
        seed: u64,
        /// Edge-list output path.
        out: PathBuf,
        /// Optional labels output path.
        labels_out: Option<PathBuf>,
    },
    /// `ceps stats` — print basic graph statistics.
    Stats {
        /// Edge-list input path.
        graph: PathBuf,
    },
    /// `ceps query` — run a center-piece query.
    Query {
        /// Edge-list input path.
        graph: PathBuf,
        /// Optional labels file (one name per line, line i = node i).
        labels: Option<PathBuf>,
        /// Comma-separated query nodes (names if labels given, else ids).
        queries: String,
        /// Query type.
        query_type: QueryType,
        /// Budget `b`.
        budget: usize,
        /// Normalization exponent `α`.
        alpha: f64,
        /// Optional DOT output path.
        dot: Option<PathBuf>,
        /// Emit JSON instead of text.
        json: bool,
        /// Forward-push threshold (None = power iteration).
        push: Option<f64>,
        /// RWR worker threads (`0` = auto: all available cores).
        threads: usize,
        /// Storage precision of the normalized operator (`f64` | `f32`).
        precision: Precision,
        /// Record per-stage spans/counters and print the profile tree.
        profile: bool,
        /// Where to write the `ceps-obs/v1` snapshot (default
        /// `results/OBS_profile.json`); only used with `--profile`.
        profile_out: Option<PathBuf>,
    },
    /// `ceps partition` — k-way partition a graph.
    Partition {
        /// Edge-list input path.
        graph: PathBuf,
        /// Number of parts.
        parts: usize,
        /// Seed.
        seed: u64,
        /// Output path for `node part` lines.
        out: PathBuf,
    },
    /// `ceps serve` — replay a synthetic query stream through a
    /// [`ceps_core::CepsService`] and report throughput + cache behaviour.
    Serve {
        /// Edge-list input path.
        graph: PathBuf,
        /// Number of query sets to serve.
        requests: usize,
        /// Query nodes per request.
        queries_per: usize,
        /// Worker threads serving the stream.
        workers: usize,
        /// Probability a query node is drawn from the hot (hub) pool.
        repeat: f64,
        /// Budget `b`.
        budget: usize,
        /// Normalization exponent `α`.
        alpha: f64,
        /// Row-cache budget in MiB (0 disables the cache).
        cache_mb: usize,
        /// Stream seed.
        seed: u64,
        /// RWR worker threads per solve (`0` = auto).
        threads: usize,
        /// Storage precision of the normalized operator (`f64` | `f32`).
        precision: Precision,
        /// Emit JSON instead of text.
        json: bool,
        /// Record per-stage spans/counters and print the profile tree.
        profile: bool,
        /// Where to write the `ceps-obs/v1` snapshot (default
        /// `results/OBS_profile.json`); only used with `--profile`.
        profile_out: Option<PathBuf>,
        /// Where to write the live Prometheus exposition file; enables the
        /// background metrics exporter (a `.jsonl` event stream is written
        /// next to it).
        metrics_out: Option<PathBuf>,
        /// Exporter flush interval in milliseconds.
        metrics_interval_ms: u64,
        /// Where to write sampled `ceps-trace/v1` request traces; enables
        /// per-request tracing.
        trace_out: Option<PathBuf>,
        /// Head-sampling rate for traces, in `[0, 1]`.
        trace_sample: f64,
        /// Listen address (`tcp://host:port`, `unix:///path`, `host:port`
        /// or a socket path). When set, `serve` runs a long-lived
        /// `ceps-wire/v1` server instead of replaying a synthetic stream.
        listen: Option<String>,
        /// Where to write the flight-recorder ring (`ceps-flight/v1`
        /// JSONL) when the server drains or panics; enables the recorder.
        flight_out: Option<PathBuf>,
    },
    /// `ceps client` — talk `ceps-wire/v1` to a running `serve --listen`.
    Client {
        /// Server address (same grammar as `--listen`).
        connect: String,
        /// What to ask the server.
        action: ClientAction,
        /// Emit JSON instead of text.
        json: bool,
        /// Reply deadline in milliseconds (`0` waits forever).
        timeout_ms: u64,
        /// Where to write client-side `ceps-trace/v1` lines (one per
        /// query reply); enables end-to-end trace propagation.
        trace_out: Option<PathBuf>,
    },
    /// `ceps loadgen` — open-loop load generation against a running
    /// `serve --listen`, with coordinated-omission-free latency and an
    /// optional SLO capacity search.
    Loadgen {
        /// Server address (same grammar as `--listen`).
        connect: String,
        /// Offered request rate (requests/second across all connections).
        rps: f64,
        /// Run length in seconds, warmup included.
        duration_s: f64,
        /// Leading seconds excluded from the measurement phase.
        warmup_s: f64,
        /// Arrival process.
        arrival: ArrivalKind,
        /// Concurrent client connections.
        connections: usize,
        /// Query nodes per request.
        queries_per: usize,
        /// Node ids are drawn from `0..nodes`.
        node_space: usize,
        /// Probability a request repeats an earlier query verbatim.
        repeat: f64,
        /// Schedule/query-mix seed.
        seed: u64,
        /// SLO: measurement-phase p99 bound in milliseconds.
        slo_p99_ms: f64,
        /// SLO: max sheds+errors fraction.
        max_error_rate: f64,
        /// Run the capacity search instead of a single fixed-rate run.
        search: bool,
        /// Emit JSON instead of text.
        json: bool,
        /// Also write the JSON report/curve to this path.
        out: Option<PathBuf>,
    },
    /// `ceps autok` — infer the softAND coefficient for a query set.
    AutoK {
        /// Edge-list input path.
        graph: PathBuf,
        /// Optional labels file.
        labels: Option<PathBuf>,
        /// Comma-separated query nodes.
        queries: String,
        /// Normalization exponent.
        alpha: f64,
        /// Worker threads for the RWR solves (`0` = auto).
        threads: usize,
    },
    /// `ceps import` — convert tab-separated co-author pairs to the
    /// edge-list + labels formats.
    Import {
        /// Co-author pairs input path.
        pairs: PathBuf,
        /// Edge-list output path.
        out: PathBuf,
        /// Labels output path.
        labels_out: PathBuf,
    },
    /// `ceps help` / no args.
    Help,
}

/// What a `ceps client` invocation asks the server to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientAction {
    /// One-shot query: comma-separated node ids.
    Query(String),
    /// Batch mode: one comma-separated query set per stdin line.
    Stdin,
    /// Server-side `K_softAND` inference for comma-separated node ids.
    AutoK(String),
    /// Liveness probe.
    Ping,
    /// Counter snapshot.
    Stats,
    /// Fetch the server's flight-recorder ring as `ceps-flight/v1` JSONL.
    DumpFlight,
    /// Ask the server to drain and exit.
    Shutdown,
}

/// Usage text shown by `ceps help` and on argument errors.
pub const USAGE: &str = "\
ceps — center-piece subgraph discovery (Tong & Faloutsos)

USAGE:
  ceps generate --scale <tiny|small|medium|large> [--seed N] --out FILE [--labels-out FILE]
  ceps stats    --graph FILE
  ceps query    --graph FILE [--labels FILE] --queries \"a,b,...\"
                [--type and|or|softand:K] [--budget N] [--alpha A]
                [--dot FILE] [--json] [--push EPS] [--threads N]
                [--precision f64|f32]
                [--profile] [--profile-out FILE]
  ceps serve    --graph FILE [--requests N] [--queries-per Q] [--workers W]
                [--repeat R] [--budget N] [--alpha A] [--cache-mb M]
                [--seed N] [--threads N] [--precision f64|f32] [--json]
                [--profile] [--profile-out FILE]
                [--metrics-out FILE.prom] [--metrics-interval MS]
                [--trace-out FILE.jsonl] [--trace-sample RATE]
                [--listen ADDR] [--flight-out FILE.jsonl]
  ceps client   --connect ADDR (--queries \"a,b,...\" | --stdin |
                --autok \"a,b,...\" | --ping | --stats | --dump-flight |
                --shutdown)
                [--json] [--timeout MS] [--trace-out FILE.jsonl]
  ceps loadgen  --connect ADDR [--rps R] [--duration S] [--warmup S]
                [--arrival poisson|constant] [--connections N]
                [--queries-per Q] [--nodes N] [--repeat R] [--seed N]
                [--slo-p99-ms X] [--max-error-rate F] [--search]
                [--json] [--out FILE]
  ceps partition --graph FILE --parts K [--seed N] --out FILE
  ceps autok    --graph FILE [--labels FILE] --queries \"a,b,...\" [--alpha A]
                [--threads N]
  ceps import   --pairs FILE --out FILE --labels-out FILE
  ceps help

  --threads N uses a persistent worker pool for the RWR solves; 0 = auto
  (all available cores, default 1). Small solves fall back to the
  sequential kernel automatically, so 0 is safe on any graph.

  --precision f32 stores the normalized operator's coefficients in half
  the memory (accumulation stays f64); scores drift by at most the f32
  rounding of each coefficient. Default f64 is bitwise-exact.

  serve --listen ADDR turns serve into a long-lived ceps-wire/v1 server
  (ADDR: tcp://host:port, unix:///path, host:port, or a socket path);
  client talks to it over the same address grammar. Wire replies are
  byte-identical to the in-process API's results.

  loadgen drives a running serve --listen open-loop: arrivals fire on a
  pre-built deterministic schedule and every latency is charged to the
  intended send time, so a stalled server cannot hide its backlog
  (coordinated-omission correction). --search steps/bisects the offered
  rate to find the max load meeting the SLO and prints the
  throughput-latency curve with the knee marked.

  client --trace-out attaches a trace context to every query; the server
  adopts it, so client and server ceps-trace/v1 lines share one trace_id
  per request. serve --flight-out enables the in-memory flight recorder
  and writes its ring (ceps-flight/v1 JSONL) when the server drains or
  panics; client --dump-flight fetches the same ring over the wire.
";

fn take_flags(args: &[String]) -> Result<HashMap<String, String>, CliError> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = &args[i];
        if !key.starts_with("--") {
            return Err(CliError(format!("unexpected argument {key:?}")));
        }
        if matches!(
            key.as_str(),
            "--json"
                | "--profile"
                | "--stdin"
                | "--ping"
                | "--stats"
                | "--dump-flight"
                | "--shutdown"
                | "--search"
        ) {
            flags.insert(key[2..].to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| CliError(format!("flag {key} needs a value")))?;
        flags.insert(key[2..].to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn parse_query_type(s: &str) -> Result<QueryType, CliError> {
    match s {
        "and" => Ok(QueryType::And),
        "or" => Ok(QueryType::Or),
        _ => {
            if let Some(k) = s.strip_prefix("softand:") {
                let k: usize = k
                    .parse()
                    .map_err(|_| CliError(format!("bad softand coefficient {k:?}")))?;
                Ok(QueryType::SoftAnd(k))
            } else {
                Err(CliError(format!(
                    "unknown query type {s:?} (and|or|softand:K)"
                )))
            }
        }
    }
}

fn parse_precision(flags: &HashMap<String, String>) -> Result<Precision, CliError> {
    match flags.get("precision") {
        None => Ok(Precision::F64),
        Some(v) => Precision::parse(v)
            .ok_or_else(|| CliError(format!("bad value for --precision: {v:?} (f64|f32)"))),
    }
}

fn num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, CliError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError(format!("bad value for --{key}: {v:?}"))),
    }
}

fn required(flags: &HashMap<String, String>, key: &str) -> Result<String, CliError> {
    flags
        .get(key)
        .cloned()
        .ok_or_else(|| CliError(format!("missing required flag --{key}")))
}

/// Parses a full argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            let flags = take_flags(rest)?;
            Ok(Command::Generate {
                scale: flags
                    .get("scale")
                    .cloned()
                    .unwrap_or_else(|| "small".into()),
                seed: num(&flags, "seed", 0u64)?,
                out: PathBuf::from(required(&flags, "out")?),
                labels_out: flags.get("labels-out").map(PathBuf::from),
            })
        }
        "stats" => {
            let flags = take_flags(rest)?;
            Ok(Command::Stats {
                graph: PathBuf::from(required(&flags, "graph")?),
            })
        }
        "query" => {
            let flags = take_flags(rest)?;
            Ok(Command::Query {
                graph: PathBuf::from(required(&flags, "graph")?),
                labels: flags.get("labels").map(PathBuf::from),
                queries: required(&flags, "queries")?,
                query_type: parse_query_type(
                    flags.get("type").map(String::as_str).unwrap_or("and"),
                )?,
                budget: num(&flags, "budget", 20usize)?,
                alpha: num(&flags, "alpha", 0.5f64)?,
                dot: flags.get("dot").map(PathBuf::from),
                json: flags.contains_key("json"),
                push: flags
                    .get("push")
                    .map(|v| {
                        v.parse::<f64>()
                            .map_err(|_| CliError(format!("bad push threshold {v:?}")))
                    })
                    .transpose()?,
                threads: num(&flags, "threads", 1usize)?,
                precision: parse_precision(&flags)?,
                profile: flags.contains_key("profile"),
                profile_out: flags.get("profile-out").map(PathBuf::from),
            })
        }
        "serve" => {
            let flags = take_flags(rest)?;
            let repeat: f64 = num(&flags, "repeat", 0.5f64)?;
            if !(0.0..=1.0).contains(&repeat) {
                return Err(CliError(format!("--repeat {repeat} must lie in [0, 1]")));
            }
            let trace_sample: f64 = num(&flags, "trace-sample", 1.0f64)?;
            if !(0.0..=1.0).contains(&trace_sample) {
                return Err(CliError(format!(
                    "--trace-sample {trace_sample} must lie in [0, 1]"
                )));
            }
            let metrics_interval_ms: u64 = num(&flags, "metrics-interval", 500u64)?;
            if metrics_interval_ms == 0 {
                return Err(CliError("--metrics-interval must be at least 1 ms".into()));
            }
            Ok(Command::Serve {
                graph: PathBuf::from(required(&flags, "graph")?),
                requests: num(&flags, "requests", 64usize)?,
                queries_per: num(&flags, "queries-per", 3usize)?,
                workers: num(&flags, "workers", 4usize)?,
                repeat,
                budget: num(&flags, "budget", 20usize)?,
                alpha: num(&flags, "alpha", 0.5f64)?,
                cache_mb: num(&flags, "cache-mb", 64usize)?,
                seed: num(&flags, "seed", 0u64)?,
                threads: num(&flags, "threads", 1usize)?,
                precision: parse_precision(&flags)?,
                json: flags.contains_key("json"),
                profile: flags.contains_key("profile"),
                profile_out: flags.get("profile-out").map(PathBuf::from),
                metrics_out: flags.get("metrics-out").map(PathBuf::from),
                metrics_interval_ms,
                trace_out: flags.get("trace-out").map(PathBuf::from),
                trace_sample,
                listen: flags.get("listen").cloned(),
                flight_out: flags.get("flight-out").map(PathBuf::from),
            })
        }
        "client" => {
            let flags = take_flags(rest)?;
            let mut actions = Vec::new();
            if let Some(q) = flags.get("queries") {
                actions.push(ClientAction::Query(q.clone()));
            }
            if let Some(q) = flags.get("autok") {
                actions.push(ClientAction::AutoK(q.clone()));
            }
            if flags.contains_key("stdin") {
                actions.push(ClientAction::Stdin);
            }
            if flags.contains_key("ping") {
                actions.push(ClientAction::Ping);
            }
            if flags.contains_key("stats") {
                actions.push(ClientAction::Stats);
            }
            if flags.contains_key("dump-flight") {
                actions.push(ClientAction::DumpFlight);
            }
            if flags.contains_key("shutdown") {
                actions.push(ClientAction::Shutdown);
            }
            let action = match actions.len() {
                0 => {
                    return Err(CliError(
                        "client needs exactly one action: --queries, --stdin, --autok, \
                         --ping, --stats, --dump-flight or --shutdown"
                            .into(),
                    ))
                }
                1 => actions.pop().expect("len checked"),
                _ => {
                    return Err(CliError(
                        "client takes one action at a time (got several of --queries/\
                         --stdin/--autok/--ping/--stats/--dump-flight/--shutdown)"
                            .into(),
                    ))
                }
            };
            Ok(Command::Client {
                connect: required(&flags, "connect")?,
                action,
                json: flags.contains_key("json"),
                timeout_ms: num(&flags, "timeout", 30_000u64)?,
                trace_out: flags.get("trace-out").map(PathBuf::from),
            })
        }
        "loadgen" => {
            let flags = take_flags(rest)?;
            let arrival_str = flags
                .get("arrival")
                .map(String::as_str)
                .unwrap_or("poisson");
            let arrival = ArrivalKind::parse(arrival_str).ok_or_else(|| {
                CliError(format!(
                    "bad value for --arrival: {arrival_str:?} (poisson|constant)"
                ))
            })?;
            let rps: f64 = num(&flags, "rps", 100.0f64)?;
            if rps <= 0.0 {
                return Err(CliError(format!("--rps {rps} must be positive")));
            }
            let duration_s: f64 = num(&flags, "duration", 10.0f64)?;
            let warmup_s: f64 = num(&flags, "warmup", (duration_s / 5.0).min(2.0))?;
            if !(0.0..duration_s).contains(&warmup_s) {
                return Err(CliError(format!(
                    "--warmup {warmup_s} must leave a measurement window inside \
                     --duration {duration_s}"
                )));
            }
            let repeat: f64 = num(&flags, "repeat", 0.3f64)?;
            if !(0.0..=1.0).contains(&repeat) {
                return Err(CliError(format!("--repeat {repeat} must lie in [0, 1]")));
            }
            Ok(Command::Loadgen {
                connect: required(&flags, "connect")?,
                rps,
                duration_s,
                warmup_s,
                arrival,
                connections: num(&flags, "connections", 4usize)?,
                queries_per: num(&flags, "queries-per", 3usize)?,
                node_space: num(&flags, "nodes", 1000usize)?,
                repeat,
                seed: num(&flags, "seed", 42u64)?,
                slo_p99_ms: num(&flags, "slo-p99-ms", 100.0f64)?,
                max_error_rate: num(&flags, "max-error-rate", 0.01f64)?,
                search: flags.contains_key("search"),
                json: flags.contains_key("json"),
                out: flags.get("out").map(PathBuf::from),
            })
        }
        "autok" => {
            let flags = take_flags(rest)?;
            Ok(Command::AutoK {
                graph: PathBuf::from(required(&flags, "graph")?),
                labels: flags.get("labels").map(PathBuf::from),
                queries: required(&flags, "queries")?,
                alpha: num(&flags, "alpha", 0.5f64)?,
                threads: num(&flags, "threads", 1usize)?,
            })
        }
        "import" => {
            let flags = take_flags(rest)?;
            Ok(Command::Import {
                pairs: PathBuf::from(required(&flags, "pairs")?),
                out: PathBuf::from(required(&flags, "out")?),
                labels_out: PathBuf::from(required(&flags, "labels-out")?),
            })
        }
        "partition" => {
            let flags = take_flags(rest)?;
            Ok(Command::Partition {
                graph: PathBuf::from(required(&flags, "graph")?),
                parts: num(&flags, "parts", 0usize).and_then(|p| {
                    if p == 0 {
                        Err(CliError("missing or zero --parts".into()))
                    } else {
                        Ok(p)
                    }
                })?,
                seed: num(&flags, "seed", 0u64)?,
                out: PathBuf::from(required(&flags, "out")?),
            })
        }
        other => Err(CliError(format!("unknown command {other:?}\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&v(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse(&v(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn generate_defaults_and_overrides() {
        let c = parse(&v(&["generate", "--out", "g.txt"])).unwrap();
        match c {
            Command::Generate {
                scale,
                seed,
                out,
                labels_out,
            } => {
                assert_eq!(scale, "small");
                assert_eq!(seed, 0);
                assert_eq!(out, PathBuf::from("g.txt"));
                assert!(labels_out.is_none());
            }
            other => panic!("{other:?}"),
        }
        let c = parse(&v(&[
            "generate",
            "--scale",
            "tiny",
            "--seed",
            "9",
            "--out",
            "g",
            "--labels-out",
            "l",
        ]))
        .unwrap();
        assert!(matches!(c, Command::Generate { seed: 9, .. }));
    }

    #[test]
    fn query_parses_types() {
        let base = ["query", "--graph", "g", "--queries", "0,1"];
        let c = parse(&v(&base)).unwrap();
        assert!(matches!(
            c,
            Command::Query {
                query_type: QueryType::And,
                budget: 20,
                ..
            }
        ));

        let mut with_type = v(&base);
        with_type.extend(v(&["--type", "softand:2", "--budget", "5", "--json"]));
        let c = parse(&with_type).unwrap();
        match c {
            Command::Query {
                query_type,
                budget,
                json,
                ..
            } => {
                assert_eq!(query_type, QueryType::SoftAnd(2));
                assert_eq!(budget, 5);
                assert!(json);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn profile_flags_parse_on_query_and_serve() {
        let c = parse(&v(&["query", "--graph", "g", "--queries", "0,1"])).unwrap();
        assert!(matches!(
            c,
            Command::Query {
                profile: false,
                profile_out: None,
                ..
            }
        ));
        let c = parse(&v(&[
            "query",
            "--graph",
            "g",
            "--queries",
            "0,1",
            "--profile",
        ]))
        .unwrap();
        assert!(matches!(c, Command::Query { profile: true, .. }));
        let c = parse(&v(&[
            "serve",
            "--graph",
            "g",
            "--profile",
            "--profile-out",
            "/tmp/p.json",
        ]))
        .unwrap();
        match c {
            Command::Serve {
                profile,
                profile_out,
                ..
            } => {
                assert!(profile);
                assert_eq!(profile_out, Some(PathBuf::from("/tmp/p.json")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serve_defaults_and_bounds() {
        let c = parse(&v(&["serve", "--graph", "g"])).unwrap();
        match c {
            Command::Serve {
                requests,
                queries_per,
                workers,
                repeat,
                cache_mb,
                json,
                ..
            } => {
                assert_eq!(requests, 64);
                assert_eq!(queries_per, 3);
                assert_eq!(workers, 4);
                assert_eq!(repeat, 0.5);
                assert_eq!(cache_mb, 64);
                assert!(!json);
            }
            other => panic!("{other:?}"),
        }
        let c = parse(&v(&[
            "serve",
            "--graph",
            "g",
            "--repeat",
            "0.9",
            "--cache-mb",
            "0",
            "--json",
        ]))
        .unwrap();
        assert!(matches!(
            c,
            Command::Serve {
                cache_mb: 0,
                json: true,
                ..
            }
        ));
        assert!(parse(&v(&["serve", "--graph", "g", "--repeat", "1.5"]))
            .unwrap_err()
            .0
            .contains("--repeat"));
        assert!(parse(&v(&["serve"])).unwrap_err().0.contains("--graph"));
    }

    #[test]
    fn serve_telemetry_flags_parse_with_defaults_and_bounds() {
        let c = parse(&v(&["serve", "--graph", "g"])).unwrap();
        match c {
            Command::Serve {
                metrics_out,
                metrics_interval_ms,
                trace_out,
                trace_sample,
                ..
            } => {
                assert!(metrics_out.is_none());
                assert_eq!(metrics_interval_ms, 500);
                assert!(trace_out.is_none());
                assert_eq!(trace_sample, 1.0);
            }
            other => panic!("{other:?}"),
        }
        let c = parse(&v(&[
            "serve",
            "--graph",
            "g",
            "--metrics-out",
            "m.prom",
            "--metrics-interval",
            "250",
            "--trace-out",
            "t.jsonl",
            "--trace-sample",
            "0.1",
        ]))
        .unwrap();
        match c {
            Command::Serve {
                metrics_out,
                metrics_interval_ms,
                trace_out,
                trace_sample,
                ..
            } => {
                assert_eq!(metrics_out, Some(PathBuf::from("m.prom")));
                assert_eq!(metrics_interval_ms, 250);
                assert_eq!(trace_out, Some(PathBuf::from("t.jsonl")));
                assert_eq!(trace_sample, 0.1);
            }
            other => panic!("{other:?}"),
        }
        assert!(
            parse(&v(&["serve", "--graph", "g", "--trace-sample", "1.5"]))
                .unwrap_err()
                .0
                .contains("--trace-sample")
        );
        assert!(
            parse(&v(&["serve", "--graph", "g", "--metrics-interval", "0"]))
                .unwrap_err()
                .0
                .contains("--metrics-interval")
        );
    }

    #[test]
    fn precision_flag_parses_on_query_and_serve() {
        let c = parse(&v(&["query", "--graph", "g", "--queries", "0,1"])).unwrap();
        assert!(matches!(
            c,
            Command::Query {
                precision: Precision::F64,
                ..
            }
        ));
        let c = parse(&v(&[
            "query",
            "--graph",
            "g",
            "--queries",
            "0,1",
            "--precision",
            "f32",
        ]))
        .unwrap();
        assert!(matches!(
            c,
            Command::Query {
                precision: Precision::F32,
                ..
            }
        ));
        let c = parse(&v(&["serve", "--graph", "g", "--precision", "f32"])).unwrap();
        assert!(matches!(
            c,
            Command::Serve {
                precision: Precision::F32,
                ..
            }
        ));
        assert!(parse(&v(&[
            "query",
            "--graph",
            "g",
            "--queries",
            "0",
            "--precision",
            "f16"
        ]))
        .unwrap_err()
        .0
        .contains("--precision"));
    }

    #[test]
    fn autok_and_import_parse() {
        let c = parse(&v(&["autok", "--graph", "g", "--queries", "a,b"])).unwrap();
        assert!(matches!(c, Command::AutoK { .. }));
        let c = parse(&v(&[
            "import",
            "--pairs",
            "p.tsv",
            "--out",
            "g.txt",
            "--labels-out",
            "l.txt",
        ]))
        .unwrap();
        assert!(matches!(c, Command::Import { .. }));
        assert!(parse(&v(&["import", "--pairs", "p"])).is_err());
    }

    #[test]
    fn serve_listen_and_client_parse() {
        let c = parse(&v(&["serve", "--graph", "g"])).unwrap();
        assert!(matches!(c, Command::Serve { listen: None, .. }));
        let c = parse(&v(&[
            "serve",
            "--graph",
            "g",
            "--listen",
            "unix:///tmp/c.sock",
        ]))
        .unwrap();
        match c {
            Command::Serve { listen, .. } => {
                assert_eq!(listen.as_deref(), Some("unix:///tmp/c.sock"))
            }
            other => panic!("{other:?}"),
        }

        let c = parse(&v(&[
            "client",
            "--connect",
            "/tmp/c.sock",
            "--queries",
            "0,4",
        ]))
        .unwrap();
        match c {
            Command::Client {
                connect,
                action,
                json,
                timeout_ms,
                trace_out,
            } => {
                assert_eq!(connect, "/tmp/c.sock");
                assert_eq!(action, ClientAction::Query("0,4".into()));
                assert!(!json);
                assert_eq!(timeout_ms, 30_000);
                assert!(trace_out.is_none());
            }
            other => panic!("{other:?}"),
        }
        let c = parse(&v(&[
            "client",
            "--connect",
            "tcp://127.0.0.1:7070",
            "--ping",
            "--json",
            "--timeout",
            "500",
        ]))
        .unwrap();
        assert!(matches!(
            c,
            Command::Client {
                action: ClientAction::Ping,
                json: true,
                timeout_ms: 500,
                ..
            }
        ));
        for flag in ["--stdin", "--stats", "--dump-flight", "--shutdown"] {
            let c = parse(&v(&["client", "--connect", "a", flag])).unwrap();
            assert!(matches!(c, Command::Client { .. }));
        }
        let c = parse(&v(&["client", "--connect", "a", "--autok", "1,2,3"])).unwrap();
        assert!(matches!(
            c,
            Command::Client {
                action: ClientAction::AutoK(_),
                ..
            }
        ));

        // Exactly one action.
        assert!(parse(&v(&["client", "--connect", "a"]))
            .unwrap_err()
            .0
            .contains("exactly one action"));
        assert!(
            parse(&v(&["client", "--connect", "a", "--ping", "--stats"]))
                .unwrap_err()
                .0
                .contains("one action at a time")
        );
        assert!(parse(&v(&["client", "--ping"]))
            .unwrap_err()
            .0
            .contains("--connect"));
    }

    #[test]
    fn tracing_and_flight_flags_parse() {
        let c = parse(&v(&["serve", "--graph", "g"])).unwrap();
        assert!(matches!(
            c,
            Command::Serve {
                flight_out: None,
                ..
            }
        ));
        let c = parse(&v(&[
            "serve",
            "--graph",
            "g",
            "--listen",
            "unix:///tmp/c.sock",
            "--flight-out",
            "flight.jsonl",
        ]))
        .unwrap();
        match c {
            Command::Serve { flight_out, .. } => {
                assert_eq!(flight_out, Some(PathBuf::from("flight.jsonl")))
            }
            other => panic!("{other:?}"),
        }

        let c = parse(&v(&["client", "--connect", "a", "--dump-flight"])).unwrap();
        assert!(matches!(
            c,
            Command::Client {
                action: ClientAction::DumpFlight,
                ..
            }
        ));
        let c = parse(&v(&[
            "client",
            "--connect",
            "a",
            "--queries",
            "0,4",
            "--trace-out",
            "client-trace.jsonl",
        ]))
        .unwrap();
        match c {
            Command::Client { trace_out, .. } => {
                assert_eq!(trace_out, Some(PathBuf::from("client-trace.jsonl")))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn loadgen_defaults_overrides_and_bounds() {
        let c = parse(&v(&["loadgen", "--connect", "unix:///tmp/c.sock"])).unwrap();
        match c {
            Command::Loadgen {
                connect,
                rps,
                duration_s,
                warmup_s,
                arrival,
                connections,
                search,
                json,
                out,
                ..
            } => {
                assert_eq!(connect, "unix:///tmp/c.sock");
                assert_eq!(rps, 100.0);
                assert_eq!(duration_s, 10.0);
                assert_eq!(warmup_s, 2.0);
                assert_eq!(arrival, ArrivalKind::Poisson);
                assert_eq!(connections, 4);
                assert!(!search && !json);
                assert!(out.is_none());
            }
            other => panic!("{other:?}"),
        }
        let c = parse(&v(&[
            "loadgen",
            "--connect",
            "a",
            "--rps",
            "500",
            "--duration",
            "4",
            "--warmup",
            "1",
            "--arrival",
            "constant",
            "--connections",
            "8",
            "--slo-p99-ms",
            "25",
            "--search",
            "--json",
            "--out",
            "curve.json",
        ]))
        .unwrap();
        match c {
            Command::Loadgen {
                rps,
                duration_s,
                warmup_s,
                arrival,
                connections,
                slo_p99_ms,
                search,
                json,
                out,
                ..
            } => {
                assert_eq!(rps, 500.0);
                assert_eq!(duration_s, 4.0);
                assert_eq!(warmup_s, 1.0);
                assert_eq!(arrival, ArrivalKind::Constant);
                assert_eq!(connections, 8);
                assert_eq!(slo_p99_ms, 25.0);
                assert!(search && json);
                assert_eq!(out, Some(PathBuf::from("curve.json")));
            }
            other => panic!("{other:?}"),
        }

        assert!(parse(&v(&["loadgen"])).unwrap_err().0.contains("--connect"));
        assert!(
            parse(&v(&["loadgen", "--connect", "a", "--arrival", "uniform"]))
                .unwrap_err()
                .0
                .contains("--arrival")
        );
        assert!(parse(&v(&["loadgen", "--connect", "a", "--rps", "0"]))
            .unwrap_err()
            .0
            .contains("--rps"));
        assert!(parse(&v(&[
            "loadgen",
            "--connect",
            "a",
            "--duration",
            "2",
            "--warmup",
            "2"
        ]))
        .unwrap_err()
        .0
        .contains("--warmup"));
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&v(&["bogus"]))
            .unwrap_err()
            .0
            .contains("unknown command"));
        assert!(parse(&v(&["stats"])).unwrap_err().0.contains("--graph"));
        assert!(parse(&v(&[
            "query",
            "--graph",
            "g",
            "--queries",
            "a",
            "--type",
            "nand"
        ]))
        .unwrap_err()
        .0
        .contains("unknown query type"));
        assert!(parse(&v(&["partition", "--graph", "g", "--out", "o"]))
            .unwrap_err()
            .0
            .contains("--parts"));
        assert!(parse(&v(&["stats", "--graph"]))
            .unwrap_err()
            .0
            .contains("needs a value"));
    }
}
