//! Command implementations. Each returns the text it would print, so tests
//! exercise the full path without capturing stdout.

use std::fs;
use std::io::BufReader;
use std::path::Path;

use ceps_core::{eval, CepsConfig, CepsEngine, CepsServiceBuilder, QueryType, ServeRequest};
use ceps_graph::{io as gio, CsrGraph, NodeId, NodeLabels};
use ceps_partition::{partition_graph, PartitionConfig};

use crate::args::ClientAction;
use crate::{CliError, Command};

/// Executes a parsed command, returning its stdout text.
///
/// # Errors
/// Any I/O, parse or pipeline error, rendered as a [`CliError`].
pub fn execute(cmd: Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(crate::args::USAGE.to_string()),
        Command::Generate {
            scale,
            seed,
            out,
            labels_out,
        } => generate(&scale, seed, &out, labels_out.as_deref()),
        Command::Stats { graph } => stats(&graph),
        Command::Query {
            graph,
            labels,
            queries,
            query_type,
            budget,
            alpha,
            dot,
            json,
            push,
            threads,
            precision,
            profile,
            profile_out,
        } => query(
            &graph,
            labels.as_deref(),
            &queries,
            QueryOptions {
                query_type,
                budget,
                alpha,
                dot,
                json,
                push,
                threads,
                precision,
                profile,
                profile_out,
            },
        ),
        Command::Partition {
            graph,
            parts,
            seed,
            out,
        } => partition(&graph, parts, seed, &out),
        Command::AutoK {
            graph,
            labels,
            queries,
            alpha,
            threads,
        } => autok(&graph, labels.as_deref(), &queries, alpha, threads),
        Command::Serve {
            graph,
            requests,
            queries_per,
            workers,
            repeat,
            budget,
            alpha,
            cache_mb,
            seed,
            threads,
            precision,
            json,
            profile,
            profile_out,
            metrics_out,
            metrics_interval_ms,
            trace_out,
            trace_sample,
            listen,
            flight_out,
        } => serve(
            &graph,
            ServeOptions {
                requests,
                queries_per,
                workers,
                repeat,
                budget,
                alpha,
                cache_mb,
                seed,
                threads,
                precision,
                json,
                profile,
                profile_out,
                metrics_out,
                metrics_interval_ms,
                trace_out,
                trace_sample,
                listen,
                flight_out,
            },
        ),
        Command::Client {
            connect,
            action,
            json,
            timeout_ms,
            trace_out,
        } => client(&connect, action, json, timeout_ms, trace_out.as_deref()),
        Command::Loadgen {
            connect,
            rps,
            duration_s,
            warmup_s,
            arrival,
            connections,
            queries_per,
            node_space,
            repeat,
            seed,
            slo_p99_ms,
            max_error_rate,
            search,
            json,
            out,
        } => loadgen(
            &connect,
            LoadgenOptions {
                cfg: ceps_load::LoadConfig {
                    rps,
                    duration_s,
                    warmup_s,
                    arrival,
                    connections,
                    queries_per,
                    node_space,
                    repeat,
                    seed,
                },
                slo: ceps_load::SloSpec {
                    p99_ms: slo_p99_ms,
                    max_error_rate,
                },
                search,
                json,
                out,
            },
        ),
        Command::Import {
            pairs,
            out,
            labels_out,
        } => import(&pairs, &out, &labels_out),
    }
}

fn load_graph(path: &Path) -> Result<CsrGraph, CliError> {
    let file = fs::File::open(path)
        .map_err(|e| CliError(format!("cannot open {}: {e}", path.display())))?;
    Ok(gio::read_edge_list(BufReader::new(file))?)
}

fn load_labels(path: &Path) -> Result<NodeLabels, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot open {}: {e}", path.display())))?;
    Ok(NodeLabels::from_names(text.lines().map(str::to_string)))
}

fn generate(
    scale: &str,
    seed: u64,
    out: &Path,
    labels_out: Option<&Path>,
) -> Result<String, CliError> {
    let cfg = match scale {
        "tiny" => ceps_datagen::CoauthorConfig::tiny(),
        "small" => ceps_datagen::CoauthorConfig::small(),
        "medium" => ceps_datagen::CoauthorConfig::medium(),
        "large" => ceps_datagen::CoauthorConfig::large(),
        other => return Err(CliError(format!("unknown scale {other:?}"))),
    };
    let data = cfg.seed(seed).generate();
    let mut buf = Vec::new();
    gio::write_edge_list(&data.graph, &mut buf)?;
    fs::write(out, buf)?;
    let mut msg = format!(
        "wrote {} ({} nodes, {} edges, seed {seed})\n",
        out.display(),
        data.graph.node_count(),
        data.graph.edge_count()
    );
    if let Some(lpath) = labels_out {
        let names: Vec<String> = (0..data.graph.node_count())
            .map(|i| data.labels.name(NodeId::from_index(i)))
            .collect();
        fs::write(lpath, names.join("\n") + "\n")?;
        msg.push_str(&format!("wrote {}\n", lpath.display()));
    }
    Ok(msg)
}

fn stats(path: &Path) -> Result<String, CliError> {
    let g = load_graph(path)?;
    let comp = ceps_graph::algo::connected_components(&g);
    let giant = comp.sizes().into_iter().max().unwrap_or(0);
    let s = ceps_graph::stats::graph_stats(&g);
    let mut out = format!(
        "nodes: {}\nedges: {}\ntotal weight: {}\nmean degree: {:.2} (max {})\n\
         mean weighted degree: {:.2} (max {})\ndegree gini: {:.3}\nclustering: {:.3}\n\
         components: {} (largest {})\ndegree histogram (log buckets):\n",
        s.nodes,
        s.edges,
        s.total_weight,
        s.mean_degree,
        s.max_degree,
        s.mean_weighted_degree,
        s.max_weighted_degree,
        s.degree_gini,
        s.clustering,
        comp.count,
        giant,
    );
    for (bucket, count) in ceps_graph::stats::log_degree_histogram(&g) {
        out.push_str(&format!("  deg >= {bucket:>5}: {count}\n"));
    }
    Ok(out)
}

fn resolve_queries(
    spec: &str,
    labels: Option<&NodeLabels>,
    graph: &CsrGraph,
) -> Result<Vec<NodeId>, CliError> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let id = if let Some(labels) = labels {
            labels
                .id(part)
                .or_else(|| part.parse::<u32>().ok().map(NodeId))
                .ok_or_else(|| CliError(format!("unknown author {part:?}")))?
        } else {
            NodeId(part.parse::<u32>().map_err(|_| {
                CliError(format!(
                    "query {part:?} is not a node id (supply --labels for names)"
                ))
            })?)
        };
        graph.check_node(id)?;
        out.push(id);
    }
    if out.is_empty() {
        return Err(CliError("no query nodes supplied".into()));
    }
    Ok(out)
}

/// Options of the `query` subcommand, bundled to keep the signature sane.
struct QueryOptions {
    query_type: QueryType,
    budget: usize,
    alpha: f64,
    dot: Option<std::path::PathBuf>,
    json: bool,
    push: Option<f64>,
    threads: usize,
    precision: ceps_graph::Precision,
    profile: bool,
    profile_out: Option<std::path::PathBuf>,
}

/// Default snapshot path for `--profile` without `--profile-out`.
const DEFAULT_PROFILE_OUT: &str = "results/OBS_profile.json";

/// Serializes the current `ceps-obs` snapshot (schema `ceps-obs/v1`) to
/// `path` (or [`DEFAULT_PROFILE_OUT`]), creating parent directories.
fn write_profile(path: Option<&Path>, label: &str) -> Result<std::path::PathBuf, CliError> {
    let path = path.map_or_else(
        || std::path::PathBuf::from(DEFAULT_PROFILE_OUT),
        Path::to_path_buf,
    );
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let meta = ceps_obs::RunMeta::collect("cli", label);
    fs::write(&path, ceps_obs::snapshot().to_json(&meta))?;
    Ok(path)
}

fn query(
    graph_path: &Path,
    labels_path: Option<&Path>,
    queries: &str,
    opts: QueryOptions,
) -> Result<String, CliError> {
    let QueryOptions {
        query_type,
        budget,
        alpha,
        dot,
        json,
        push,
        threads,
        precision,
        profile,
        profile_out,
    } = opts;
    let dot = dot.as_deref();
    let graph = load_graph(graph_path)?;
    let labels = labels_path.map(load_labels).transpose()?;
    let query_nodes = resolve_queries(queries, labels.as_ref(), &graph)?;

    let mut cfg = CepsConfig::default()
        .budget(budget)
        .query_type(query_type)
        .alpha(alpha)
        .threads(threads)
        .precision(precision);
    if let Some(epsilon) = push {
        cfg = cfg.push_scores(epsilon);
    }
    let engine = CepsEngine::new(&graph, cfg)?;
    if profile {
        ceps_obs::install_recorder();
        ceps_obs::reset();
    }
    let started = std::time::Instant::now();
    let run_out = {
        let _root = ceps_obs::span("query");
        engine.run_timed(&query_nodes)
    };
    let total_ms = started.elapsed().as_secs_f64() * 1e3;
    let (result, stages) = run_out?;
    let nratio = eval::node_ratio(&result.combined, &result.subgraph);

    if let Some(dot_path) = dot {
        let dot_text = ceps_viz::result_to_dot(
            &graph,
            &result,
            &query_nodes,
            labels.as_ref(),
            &ceps_viz::DotStyle::default(),
        );
        fs::write(dot_path, dot_text)?;
    }

    let name = |v: NodeId| {
        labels
            .as_ref()
            .map(|l| l.name(v))
            .unwrap_or_else(|| v.to_string())
    };

    if json {
        let members: Vec<_> = result
            .subgraph
            .nodes()
            .map(|v| {
                serde_json::json!({
                    "id": v.0,
                    "name": name(v),
                    "score": result.combined[v.index()],
                    "is_query": query_nodes.contains(&v),
                })
            })
            .collect();
        let paths: Vec<_> = result
            .paths
            .iter()
            .map(|p| {
                serde_json::json!({
                    "source_index": p.source_index,
                    "nodes": p.nodes.iter().map(|v| v.0).collect::<Vec<_>>(),
                })
            })
            .collect();
        let doc = serde_json::json!({
            "query_type": query_type.to_string(),
            "budget": budget,
            "alpha": alpha,
            "k": result.k,
            "nratio": nratio,
            "total_ms": total_ms,
            "stage_ms": serde_json::json!({
                "scores": stages.scores_ms,
                "combine": stages.combine_ms,
                "extract": stages.extract_ms,
            }),
            "subgraph": members,
            "paths": paths,
        });
        if profile {
            // Stdout stays pure JSON; the snapshot goes to the file only.
            write_profile(profile_out.as_deref(), "query")?;
        }
        return Ok(format!(
            "{}\n",
            serde_json::to_string_pretty(&doc).map_err(|e| CliError(format!("json error: {e}")))?
        ));
    }

    let mut out = format!(
        "{} query over {} nodes, budget {budget}, alpha {alpha}\n\
         subgraph: {} nodes, NRatio {:.4}\n",
        query_type,
        graph.node_count(),
        result.subgraph.len(),
        nratio,
    );
    let mut members: Vec<NodeId> = result.subgraph.nodes().collect();
    members.sort_by(|a, b| result.combined[b.index()].total_cmp(&result.combined[a.index()]));
    for v in members {
        let marker = if query_nodes.contains(&v) {
            " (query)"
        } else {
            ""
        };
        out.push_str(&format!(
            "  {:<24} {:.4e}{marker}\n",
            name(v),
            result.combined[v.index()]
        ));
    }
    out.push_str("\nwhy (discovery order):\n");
    out.push_str(&ceps_core::explain::render(&result, labels.as_ref()));
    if profile {
        out.push_str(&format!(
            "\nprofile: end-to-end {total_ms:.3} ms \
             (scores {:.3} + combine {:.3} + extract {:.3} = {:.3} ms)\n",
            stages.scores_ms,
            stages.combine_ms,
            stages.extract_ms,
            stages.total_ms(),
        ));
        out.push_str(&ceps_obs::snapshot().render_tree());
        let written = write_profile(profile_out.as_deref(), "query")?;
        out.push_str(&format!("profile written to {}\n", written.display()));
    }
    Ok(out)
}

fn autok(
    graph_path: &Path,
    labels_path: Option<&Path>,
    queries: &str,
    alpha: f64,
    threads: usize,
) -> Result<String, CliError> {
    let graph = load_graph(graph_path)?;
    let labels = labels_path.map(load_labels).transpose()?;
    let query_nodes = resolve_queries(queries, labels.as_ref(), &graph)?;

    let cfg = CepsConfig::default().alpha(alpha).threads(threads);
    let engine = CepsEngine::new(&graph, cfg)?;
    let inference = ceps_core::infer_soft_and_k(&engine, &query_nodes)?;

    let mut out = format!(
        "inferred K_softAND coefficient: k = {} (of Q = {})\n",
        inference.k,
        query_nodes.len()
    );
    if !inference.mean_ranks.is_empty() {
        out.push_str("mean held-out retrieval rank per candidate k' (lower = better):\n");
        for (i, r) in inference.mean_ranks.iter().enumerate() {
            out.push_str(&format!("  k' = {}: {r:.2}\n", i + 1));
        }
    }
    out.push_str(&format!(
        "suggested invocation: ceps query ... --type softand:{}\n",
        inference.k
    ));
    Ok(out)
}

/// Options of the `serve` subcommand.
struct ServeOptions {
    requests: usize,
    queries_per: usize,
    workers: usize,
    repeat: f64,
    budget: usize,
    alpha: f64,
    cache_mb: usize,
    seed: u64,
    threads: usize,
    precision: ceps_graph::Precision,
    json: bool,
    profile: bool,
    profile_out: Option<std::path::PathBuf>,
    metrics_out: Option<std::path::PathBuf>,
    metrics_interval_ms: u64,
    trace_out: Option<std::path::PathBuf>,
    trace_sample: f64,
    listen: Option<String>,
    flight_out: Option<std::path::PathBuf>,
}

/// The `ceps-metrics/v1` event stream lives next to the Prometheus file:
/// same stem, `.jsonl` extension (`.events.jsonl` if the metrics path
/// itself ends in `.jsonl`, so the two sinks never collide).
fn metrics_events_path(prom: &Path) -> std::path::PathBuf {
    if prom.extension().is_some_and(|e| e == "jsonl") {
        prom.with_extension("events.jsonl")
    } else {
        prom.with_extension("jsonl")
    }
}

/// splitmix64 — a tiny deterministic generator for the synthetic stream, so
/// the CLI needs no RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds a repository-style query stream: each query node comes from a
/// small pool of hub (highest-degree) nodes with probability `repeat`, and
/// uniformly from the whole graph otherwise. Nodes within a request are
/// distinct.
fn synthetic_stream(
    graph: &CsrGraph,
    requests: usize,
    queries_per: usize,
    repeat: f64,
    seed: u64,
) -> Vec<Vec<NodeId>> {
    let n = graph.node_count() as u64;
    let mut by_degree: Vec<NodeId> = graph.nodes().collect();
    by_degree.sort_by(|&a, &b| {
        graph
            .degree(b)
            .total_cmp(&graph.degree(a))
            .then(a.0.cmp(&b.0))
    });
    let pool: Vec<NodeId> = by_degree
        .into_iter()
        .take(32.min(graph.node_count()))
        .collect();

    let mut state = seed ^ 0xceb5_0000;
    let mut stream = Vec::with_capacity(requests);
    for _ in 0..requests {
        let mut set: Vec<NodeId> = Vec::with_capacity(queries_per);
        while set.len() < queries_per.min(graph.node_count()) {
            let roll = splitmix64(&mut state) as f64 / u64::MAX as f64;
            let candidate = if roll < repeat {
                pool[(splitmix64(&mut state) % pool.len() as u64) as usize]
            } else {
                NodeId((splitmix64(&mut state) % n) as u32)
            };
            if !set.contains(&candidate) {
                set.push(candidate);
            }
        }
        stream.push(set);
    }
    stream
}

fn serve(graph_path: &Path, opts: ServeOptions) -> Result<String, CliError> {
    let graph = load_graph(graph_path)?;
    let cfg = CepsConfig::default()
        .budget(opts.budget)
        .alpha(opts.alpha)
        .threads(opts.threads)
        .precision(opts.precision);
    let engine = CepsEngine::new(graph, cfg)?;
    let service = CepsServiceBuilder::new()
        .cache_bytes(opts.cache_mb << 20)
        .workers(opts.workers)
        .build(engine);

    if let Some(addr) = &opts.listen {
        return serve_listen(service, addr, &opts);
    }

    let stream = synthetic_stream(
        service.engine().graph(),
        opts.requests,
        opts.queries_per,
        opts.repeat,
        opts.seed,
    );
    // Both --profile and --metrics-out need the registry live; no recorder
    // (and no exporter thread) exists unless one of them asked for it.
    if opts.profile || opts.metrics_out.is_some() {
        ceps_obs::install_recorder();
        ceps_obs::reset();
    }
    let exporter = opts
        .metrics_out
        .as_ref()
        .map(|prom| {
            let cfg = ceps_obs::ExporterConfig::new(opts.metrics_interval_ms)
                .prom(prom.clone())
                .events(metrics_events_path(prom));
            ceps_obs::MetricsExporter::start(cfg)
                .map_err(|e| CliError(format!("cannot start metrics exporter: {e}")))
        })
        .transpose()?;
    let tracer = opts
        .trace_out
        .as_ref()
        .map(|path| {
            ceps_core::RequestTracer::to_file(path, opts.trace_sample)
                .map_err(|e| CliError(format!("cannot open {}: {e}", path.display())))
        })
        .transpose()?;

    let served = service.serve_stream_traced(&stream, opts.workers, tracer.as_ref());
    // Stop the exporter before reporting (even on error): the drop performs
    // one final flush, so the .prom file matches the final registry state.
    drop(exporter);
    let outcome = served?;
    let mean_stages = outcome.mean_stage_ms();

    if opts.json {
        let latency = serde_json::json!({
            "p50": outcome.latency_percentile_ms(50.0),
            "p95": outcome.latency_percentile_ms(95.0),
            "p99": outcome.latency_percentile_ms(99.0),
        });
        let doc = serde_json::json!({
            "requests": outcome.completed,
            "workers": outcome.workers,
            "repeat_rate": opts.repeat,
            "cache_mb": opts.cache_mb,
            "wall_ms": outcome.wall_ms,
            "throughput_qps": outcome.throughput_qps(),
            "hit_rate": outcome.hit_rate(),
            "latency_ms": latency,
            "mean_stage_ms": serde_json::json!({
                "scores": mean_stages.scores_ms,
                "combine": mean_stages.combine_ms,
                "extract": mean_stages.extract_ms,
            }),
        });
        if opts.profile {
            write_profile(opts.profile_out.as_deref(), "serve")?;
        }
        return Ok(format!(
            "{}\n",
            serde_json::to_string_pretty(&doc).map_err(|e| CliError(format!("json error: {e}")))?
        ));
    }

    let mut out = format!(
        "served {} requests on {} workers in {:.1} ms ({:.1} q/s)\n\
         latency p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms\n",
        outcome.completed,
        outcome.workers,
        outcome.wall_ms,
        outcome.throughput_qps(),
        outcome.latency_percentile_ms(50.0),
        outcome.latency_percentile_ms(95.0),
        outcome.latency_percentile_ms(99.0),
    );
    match outcome.cache {
        Some(stats) => {
            // hit_rate is None until the cache saw at least one lookup.
            let rate = outcome
                .hit_rate()
                .map_or_else(|| "n/a".to_string(), |r| format!("{:.1}%", 100.0 * r));
            out.push_str(&format!(
                "cache: {rate} hits ({} hits / {} misses, {} evictions, budget {} MiB)\n",
                stats.hits, stats.misses, stats.evictions, opts.cache_mb,
            ));
        }
        None => out.push_str("cache: disabled\n"),
    }
    out.push_str(&format!(
        "mean stage time per request: scores {:.3} ms, combine {:.3} ms, extract {:.3} ms\n",
        mean_stages.scores_ms, mean_stages.combine_ms, mean_stages.extract_ms,
    ));
    if let Some(prom) = &opts.metrics_out {
        out.push_str(&format!(
            "metrics written to {} (events: {})\n",
            prom.display(),
            metrics_events_path(prom).display(),
        ));
    }
    if let (Some(path), Some(tracer)) = (&opts.trace_out, &tracer) {
        out.push_str(&format!(
            "traces written to {} ({} lines, head rate {})\n",
            path.display(),
            tracer.written(),
            tracer.sample_rate(),
        ));
    }
    if opts.profile {
        out.push('\n');
        out.push_str(&ceps_obs::snapshot().render_tree());
        let written = write_profile(opts.profile_out.as_deref(), "serve")?;
        out.push_str(&format!("profile written to {}\n", written.display()));
    }
    Ok(out)
}

/// `serve --listen`: run a long-lived `ceps-wire/v1` server over the
/// built service instead of replaying a synthetic stream. Blocks until a
/// wire `Shutdown` frame drains the server, then reports final counters.
fn serve_listen(
    service: ceps_core::CepsService,
    addr: &str,
    opts: &ServeOptions,
) -> Result<String, CliError> {
    // The flight recorder feeds on span enter/exit events, which only
    // fire while the registry recorder is installed — so --flight-out
    // turns the recorder on too.
    if opts.profile || opts.metrics_out.is_some() || opts.flight_out.is_some() {
        ceps_obs::install_recorder();
        ceps_obs::reset();
    }
    if let Some(path) = &opts.flight_out {
        // The ring must survive a crash: the panic hook writes it to the
        // same path even when the drain path below is never reached.
        ceps_obs::flight_enable(ceps_obs::DEFAULT_FLIGHT_CAPACITY);
        ceps_obs::install_flight_panic_hook(path.clone());
    }
    let exporter = opts
        .metrics_out
        .as_ref()
        .map(|prom| {
            let cfg = ceps_obs::ExporterConfig::new(opts.metrics_interval_ms)
                .prom(prom.clone())
                .events(metrics_events_path(prom));
            ceps_obs::MetricsExporter::start(cfg)
                .map_err(|e| CliError(format!("cannot start metrics exporter: {e}")))
        })
        .transpose()?;
    let tracer = opts
        .trace_out
        .as_ref()
        .map(|path| {
            ceps_core::RequestTracer::to_file(path, opts.trace_sample)
                .map_err(|e| CliError(format!("cannot open {}: {e}", path.display())))
        })
        .transpose()?;

    let listen = ceps_net::ListenAddr::parse(addr);
    let mut transport = listen
        .bind()
        .map_err(|e| CliError(format!("cannot bind {listen}: {e}")))?;
    let mut server = ceps_net::CepsServer::new(
        service,
        ceps_net::ServerConfig {
            workers: opts.workers,
            ..ceps_net::ServerConfig::default()
        },
    );
    if let Some(tracer) = tracer {
        server = server.with_tracer(tracer);
    }
    // Readiness goes to stderr eagerly (execute() output prints only on
    // exit, and with --json stdout must stay pure JSON).
    eprintln!(
        "ceps: serving {} on {} ({} workers; stop with `ceps client --connect {addr} --shutdown`)",
        ceps_net::WIRE_VERSION,
        transport.addr(),
        opts.workers,
    );
    let stats = server
        .serve(transport.as_mut())
        .map_err(|e| CliError(format!("server failed: {e}")))?;
    // Final exporter flush happens on drop, after the last frame counted.
    drop(exporter);
    if let Some(path) = &opts.flight_out {
        ceps_obs::flight_dump_to(path)
            .map_err(|e| CliError(format!("cannot write {}: {e}", path.display())))?;
    }

    let cache = server.service().cache_stats();
    if opts.json {
        let doc = serde_json::json!({
            "listen": transport.addr(),
            "server": stats,
            "cache": cache.map(|c| {
                serde_json::json!({
                    "hits": c.hits,
                    "misses": c.misses,
                    "evictions": c.evictions,
                })
            }),
            "traces_written": server.tracer().map(ceps_core::RequestTracer::written),
            "flight_out": opts.flight_out.as_ref().map(|p| p.display().to_string()),
        });
        return Ok(format!(
            "{}\n",
            serde_json::to_string_pretty(&doc).map_err(|e| CliError(format!("json error: {e}")))?
        ));
    }
    let mut out = format!(
        "server drained after {:.1} s on {}\n{}",
        stats.uptime_ms as f64 / 1e3,
        transport.addr(),
        render_server_health(&stats),
    );
    if let Some(prom) = &opts.metrics_out {
        out.push_str(&format!(
            "metrics written to {} (events: {})\n",
            prom.display(),
            metrics_events_path(prom).display(),
        ));
    }
    if let (Some(path), Some(tracer)) = (&opts.trace_out, server.tracer()) {
        out.push_str(&format!(
            "traces written to {} ({} lines, head rate {})\n",
            path.display(),
            tracer.written(),
            tracer.sample_rate(),
        ));
    }
    if let Some(path) = &opts.flight_out {
        out.push_str(&format!("flight ring written to {}\n", path.display()));
    }
    Ok(out)
}

/// Renders the health core of a [`ceps_net::ServerStats`] — counters,
/// windowed latency and queue-delay percentiles, cache — one helper for
/// both the `serve --listen` drain summary and `client --stats`, so the
/// two text surfaces cannot drift. (Server-side, both snapshots already
/// come out of the single `CepsServer::stats` path; a test there pins
/// the equality.)
fn render_server_health(stats: &ceps_net::ServerStats) -> String {
    format!(
        "{} connections, {} frames, {} queries ({} in flight), {} sheds, {} errors\n\
         windowed latency p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms \
         (queue p50 {:.2} ms, p99 {:.2} ms)\n{}",
        stats.connections,
        stats.frames,
        stats.queries,
        stats.in_flight,
        stats.sheds,
        stats.errors,
        stats.p50_ms,
        stats.p90_ms,
        stats.p99_ms,
        stats.queue_p50_ms,
        stats.queue_p99_ms,
        stats.cache.as_ref().map_or(String::new(), |c| format!(
            "cache: {} hits / {} misses, {} evictions\n",
            c.hits, c.misses, c.evictions
        )),
    )
}

/// Parses the client's comma-separated node ids (names need labels,
/// which live server-side; the wire speaks ids only).
fn parse_wire_queries(spec: &str) -> Result<Vec<NodeId>, CliError> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(NodeId(part.parse::<u32>().map_err(|_| {
            CliError(format!("query {part:?} is not a node id"))
        })?));
    }
    if out.is_empty() {
        return Err(CliError("no query nodes supplied".into()));
    }
    Ok(out)
}

/// Renders a wire `Scores` reply for humans.
fn render_serve_reply(reply: &ceps_core::ServeReply) -> String {
    let mut out = format!(
        "k = {}, subgraph of {} nodes\n",
        reply.k,
        reply.members.len()
    );
    for m in &reply.members {
        let marker = if m.is_query { " (query)" } else { "" };
        out.push_str(&format!("  {:<8} {:.4e}{marker}\n", m.id.0, m.score));
    }
    if !reply.paths.is_empty() {
        out.push_str(&format!("{} extraction paths\n", reply.paths.len()));
    }
    out
}

/// How many stdin-batch requests may be in flight on the stream at once.
const CLIENT_PIPELINE_WINDOW: usize = 4;

/// `ceps client` — one-shot or stdin-batch requests against a running
/// `serve --listen` server.
fn client(
    connect: &str,
    action: ClientAction,
    json: bool,
    timeout_ms: u64,
    trace_out: Option<&Path>,
) -> Result<String, CliError> {
    let mut c = ceps_net::CepsClient::connect(connect)
        .map_err(|e| CliError(format!("cannot connect to {connect}: {e}")))?;
    if timeout_ms > 0 {
        c.set_timeout(Some(std::time::Duration::from_millis(timeout_ms)))?;
    }
    if let Some(path) = trace_out {
        let file = fs::File::create(path)
            .map_err(|e| CliError(format!("cannot open {}: {e}", path.display())))?;
        c = c.with_trace_sink(Box::new(file));
    }
    match action {
        ClientAction::Ping => {
            let proto = c.ping()?;
            Ok(if json {
                format!(
                    "{}\n",
                    serde_json::json!({ "proto": proto }).to_json_string()
                )
            } else {
                format!("server alive ({proto})\n")
            })
        }
        ClientAction::Stats => {
            let stats = c.stats()?;
            Ok(if json {
                format!(
                    "{}\n",
                    serde_json::to_string_pretty(&stats)
                        .map_err(|e| CliError(format!("json error: {e}")))?
                )
            } else {
                format!(
                    "{} up {:.1} s\n{}",
                    stats.proto,
                    stats.uptime_ms as f64 / 1e3,
                    render_server_health(&stats),
                )
            })
        }
        ClientAction::DumpFlight => {
            let dump = c.dump_flight()?;
            // The dump is already machine-readable ceps-flight/v1 JSONL;
            // --json returns it verbatim, text mode adds a summary line.
            Ok(if json {
                dump
            } else if dump.is_empty() {
                "flight ring empty (recorder off, or no events yet)\n".to_string()
            } else {
                let events = dump.lines().count();
                format!("{dump}flight ring: {events} events\n")
            })
        }
        ClientAction::Shutdown => {
            c.shutdown()?;
            Ok(if json {
                format!(
                    "{}\n",
                    serde_json::json!({ "shutdown": true }).to_json_string()
                )
            } else {
                "server drained\n".to_string()
            })
        }
        ClientAction::AutoK(spec) => {
            let queries = parse_wire_queries(&spec)?;
            let q = queries.len();
            let inference = c.autok(queries)?;
            Ok(if json {
                format!(
                    "{}\n",
                    serde_json::json!({
                        "k": inference.k,
                        "mean_ranks": inference.mean_ranks,
                    })
                    .to_json_string_pretty()
                )
            } else {
                format!(
                    "inferred K_softAND coefficient: k = {} (of Q = {q})\n",
                    inference.k
                )
            })
        }
        ClientAction::Query(spec) => {
            let reply = c.request(&ServeRequest::new(parse_wire_queries(&spec)?))?;
            Ok(if json {
                format!(
                    "{}\n",
                    serde_json::to_string_pretty(&reply)
                        .map_err(|e| CliError(format!("json error: {e}")))?
                )
            } else {
                let mut out = render_serve_reply(&reply);
                if let Some(path) = trace_out {
                    out.push_str(&format!(
                        "client traces written to {} ({} lines)\n",
                        path.display(),
                        c.traces_written(),
                    ));
                }
                out
            })
        }
        ClientAction::Stdin => {
            use std::io::BufRead;
            let mut sets = Vec::new();
            for line in std::io::stdin().lock().lines() {
                let line = line?;
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    continue;
                }
                sets.push(parse_wire_queries(trimmed)?);
            }
            let mut out = client_batch(&mut c, &sets, json)?;
            if let (Some(path), false) = (trace_out, json) {
                out.push_str(&format!(
                    "client traces written to {} ({} lines)\n",
                    path.display(),
                    c.traces_written(),
                ));
            }
            Ok(out)
        }
    }
}

/// Pipelines `sets` through one connection, a bounded window of requests
/// in flight, and renders one line per reply (JSONL with `--json`).
fn client_batch(
    c: &mut ceps_net::CepsClient,
    sets: &[Vec<NodeId>],
    json: bool,
) -> Result<String, CliError> {
    let mut out = String::new();
    let mut pending = std::collections::VecDeque::new();
    let (mut sent, mut done, mut ok, mut failed) = (0usize, 0usize, 0usize, 0usize);
    while done < sets.len() {
        while sent < sets.len() && pending.len() < CLIENT_PIPELINE_WINDOW {
            pending.push_back(c.send_request(&ServeRequest::new(sets[sent].clone()))?);
            sent += 1;
        }
        let expect = pending.pop_front().expect("done < sent implies pending");
        match c.recv_reply()? {
            ceps_net::Reply::Scores { id, reply } if id == expect => {
                ok += 1;
                if json {
                    out.push_str(
                        &serde_json::to_string(&reply)
                            .map_err(|e| CliError(format!("json error: {e}")))?,
                    );
                    out.push('\n');
                } else {
                    let top = reply
                        .members
                        .iter()
                        .find(|m| !m.is_query)
                        .or_else(|| reply.members.first());
                    let top = top.map_or_else(
                        || "none".to_string(),
                        |m| format!("{} ({:.4e})", m.id.0, m.score),
                    );
                    out.push_str(&format!(
                        "[{done}] k={} members={} center={top}\n",
                        reply.k,
                        reply.members.len(),
                    ));
                }
            }
            ceps_net::Reply::Error { error, .. } => {
                failed += 1;
                out.push_str(&format!(
                    "[{done}] error ({:?}): {}\n",
                    error.kind, error.message
                ));
            }
            other => {
                return Err(CliError(format!(
                    "unexpected reply {other:?} for request id {expect}"
                )))
            }
        }
        done += 1;
    }
    if !json {
        out.push_str(&format!(
            "{ok} ok, {failed} failed of {} query sets\n",
            sets.len()
        ));
    }
    Ok(out)
}

fn import(pairs: &Path, out: &Path, labels_out: &Path) -> Result<String, CliError> {
    let file = fs::File::open(pairs)
        .map_err(|e| CliError(format!("cannot open {}: {e}", pairs.display())))?;
    let data = ceps_datagen::read_coauthor_pairs(BufReader::new(file))?;
    let mut buf = Vec::new();
    gio::write_edge_list(&data.graph, &mut buf)?;
    fs::write(out, buf)?;
    let names: Vec<String> = (0..data.graph.node_count())
        .map(|i| data.labels.name(NodeId::from_index(i)))
        .collect();
    fs::write(labels_out, names.join("\n") + "\n")?;
    Ok(format!(
        "imported {} authors, {} edges -> {} + {}\n",
        data.graph.node_count(),
        data.graph.edge_count(),
        out.display(),
        labels_out.display(),
    ))
}

fn partition(graph_path: &Path, parts: usize, seed: u64, out: &Path) -> Result<String, CliError> {
    let graph = load_graph(graph_path)?;
    let cfg = PartitionConfig {
        seed,
        ..PartitionConfig::with_parts(parts)
    };
    let p = partition_graph(&graph, &cfg)?;
    let mut text = String::new();
    for v in graph.nodes() {
        text.push_str(&format!("{} {}\n", v.0, p.part_of(v)));
    }
    fs::write(out, text)?;
    Ok(format!(
        "wrote {} ({} parts, edge cut {:.1}, balance {:.3})\n",
        out.display(),
        parts,
        p.edge_cut(&graph),
        p.balance(),
    ))
}

/// Everything `ceps loadgen` needs beyond the server address.
struct LoadgenOptions {
    cfg: ceps_load::LoadConfig,
    slo: ceps_load::SloSpec,
    search: bool,
    json: bool,
    out: Option<std::path::PathBuf>,
}

/// Hand-rolled JSON for a capacity curve (`ceps-load-curve/v1`): the
/// probes sorted by offered rate, each with its full `ceps-load/v1`
/// report, plus the SLO and the detected knee.
fn curve_json(curve: &ceps_load::CapacityCurve, slo: &ceps_load::SloSpec) -> String {
    let points: Vec<String> = curve
        .sorted_points()
        .iter()
        .map(|p| {
            format!(
                "{{\"offered_rps\": {}, \"slo_met\": {}, \"report\": {}}}",
                p.offered_rps,
                p.slo_met,
                p.report.to_json()
            )
        })
        .collect();
    format!(
        "{{\"schema\": \"ceps-load-curve/v1\", \
         \"slo\": {{\"p99_ms\": {}, \"max_error_rate\": {}}}, \
         \"knee_rps\": {}, \"points\": [{}]}}",
        slo.p99_ms,
        slo.max_error_rate,
        curve.knee_rps.map_or("null".to_string(), |k| k.to_string()),
        points.join(", "),
    )
}

/// `ceps loadgen` — a single fixed-rate open-loop run, or (with
/// `--search`) a capacity search for the highest offered rate meeting
/// the SLO.
fn loadgen(connect: &str, opts: LoadgenOptions) -> Result<String, CliError> {
    let connect_err = |e: std::io::Error| CliError(format!("cannot connect to {connect}: {e}"));
    if opts.search {
        let factory = || ceps_net::CepsClient::connect(connect);
        let curve = ceps_load::capacity_search(
            &opts.cfg,
            &opts.slo,
            &ceps_load::SearchConfig {
                start_rps: opts.cfg.rps,
                ..ceps_load::SearchConfig::default()
            },
            &factory,
            // Progress goes to stderr eagerly; stdout stays reserved for
            // the final report (pure JSON under --json).
            |p| {
                eprintln!(
                    "ceps loadgen: probed {:.1} rps -> p99 {:.2} ms, {} ({})",
                    p.offered_rps,
                    p.report.measure.p99_ms,
                    if p.slo_met { "slo met" } else { "slo violated" },
                    p.report.measure.count,
                )
            },
        )
        .map_err(connect_err)?;
        let json = curve_json(&curve, &opts.slo);
        if let Some(path) = &opts.out {
            fs::write(path, format!("{json}\n"))
                .map_err(|e| CliError(format!("cannot write {}: {e}", path.display())))?;
        }
        if opts.json {
            return Ok(format!("{json}\n"));
        }
        let mut out = format!(
            "capacity search: {} probes against {connect}, SLO p99 <= {} ms, \
             shed/error rate <= {}\n",
            curve.points.len(),
            opts.slo.p99_ms,
            opts.slo.max_error_rate,
        );
        out.push_str(&format!(
            "  {:>10}  {:>10}  {:>9}  {:>7}  slo\n",
            "offered", "achieved", "p99(ms)", "err%"
        ));
        for p in curve.sorted_points() {
            out.push_str(&format!(
                "  {:>10.1}  {:>10.1}  {:>9.2}  {:>7.2}  {}\n",
                p.offered_rps,
                p.report.achieved_rps,
                p.report.measure.p99_ms,
                100.0 * p.report.measure.error_rate(),
                if p.slo_met { "met" } else { "VIOLATED" },
            ));
        }
        out.push_str(&match curve.knee_rps {
            Some(knee) => format!("knee: {knee:.1} rps (max sustainable load meeting the SLO)\n"),
            None => "knee: none — even the starting rate violated the SLO\n".to_string(),
        });
        if let Some(path) = &opts.out {
            out.push_str(&format!("curve written to {}\n", path.display()));
        }
        Ok(out)
    } else {
        let report = ceps_load::run(&opts.cfg, connect).map_err(connect_err)?;
        let met = opts.slo.met_by(&report);
        if let Some(path) = &opts.out {
            fs::write(path, format!("{}\n", report.to_json()))
                .map_err(|e| CliError(format!("cannot write {}: {e}", path.display())))?;
        }
        if opts.json {
            return Ok(format!("{}\n", report.to_json()));
        }
        let mut out = report.render();
        out.push_str(&format!(
            "slo (p99 <= {} ms, shed/error rate <= {}): {}\n",
            opts.slo.p99_ms,
            opts.slo.max_error_rate,
            if met { "met" } else { "VIOLATED" },
        ));
        if let Some(path) = &opts.out {
            out.push_str(&format!("report written to {}\n", path.display()));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ceps_cli_tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// Serializes tests that install/uninstall the global `ceps-obs`
    /// recorder (they would otherwise reset each other's counters).
    fn recorder_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn generated() -> (PathBuf, PathBuf) {
        let g = tmp("g.txt");
        let l = tmp("l.txt");
        let msg = execute(Command::Generate {
            scale: "tiny".into(),
            seed: 3,
            out: g.clone(),
            labels_out: Some(l.clone()),
        })
        .unwrap();
        assert!(msg.contains("100 nodes"));
        (g, l)
    }

    #[test]
    fn generate_then_stats() {
        let (g, _) = generated();
        let out = execute(Command::Stats { graph: g }).unwrap();
        assert!(out.contains("nodes: 100"));
        assert!(out.contains("components:"));
    }

    #[test]
    fn query_by_name_and_by_id() {
        let (g, l) = generated();
        let labels = load_labels(&l).unwrap();
        let name0 = labels.name(NodeId(0));
        let name1 = labels.name(NodeId(30));
        let out = execute(Command::Query {
            graph: g.clone(),
            labels: Some(l.clone()),
            queries: format!("{name0},{name1}"),
            query_type: QueryType::And,
            budget: 5,
            alpha: 0.5,
            dot: None,
            json: false,
            push: None,
            threads: 1,
            precision: ceps_graph::Precision::F64,
            profile: false,
            profile_out: None,
        })
        .unwrap();
        assert!(out.contains("AND query"));
        assert!(out.contains("(query)"));

        let out = execute(Command::Query {
            graph: g,
            labels: None,
            queries: "0,30".into(),
            query_type: QueryType::Or,
            budget: 5,
            alpha: 0.5,
            dot: None,
            json: false,
            push: None,
            threads: 1,
            precision: ceps_graph::Precision::F64,
            profile: false,
            profile_out: None,
        })
        .unwrap();
        assert!(out.contains("OR query"));
    }

    #[test]
    fn query_json_and_dot_outputs() {
        let (g, l) = generated();
        let dot_path = tmp("out.dot");
        let out = execute(Command::Query {
            graph: g,
            labels: Some(l),
            queries: "0,30".into(),
            query_type: QueryType::SoftAnd(1),
            budget: 4,
            alpha: 0.5,
            dot: Some(dot_path.clone()),
            json: true,
            push: None,
            threads: 1,
            precision: ceps_graph::Precision::F64,
            profile: false,
            profile_out: None,
        })
        .unwrap();
        let doc: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(doc["query_type"], "1_softAND");
        assert!(doc["subgraph"].as_array().unwrap().len() >= 2);
        let dot = fs::read_to_string(dot_path).unwrap();
        assert!(dot.starts_with("graph"));
    }

    #[test]
    fn query_profile_prints_tree_and_writes_snapshot() {
        let _guard = recorder_lock();
        let (g, l) = generated();
        let profile_path = tmp("obs_profile.json");
        let out = execute(Command::Query {
            graph: g,
            labels: Some(l),
            queries: "0,30".into(),
            query_type: QueryType::And,
            budget: 5,
            alpha: 0.5,
            dot: None,
            json: false,
            push: None,
            threads: 1,
            precision: ceps_graph::Precision::F64,
            profile: true,
            profile_out: Some(profile_path.clone()),
        })
        .unwrap();
        assert!(out.contains("profile: end-to-end"));
        assert!(out.contains("stage.individual_scores"));
        assert!(out.contains("stage.combine"));
        assert!(out.contains("stage.extract"));
        assert!(out.contains("profile written to"));
        let json = fs::read_to_string(profile_path).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(doc["schema"], "ceps-obs/v1");
        assert!(!doc["spans"].as_array().unwrap().is_empty());
        ceps_obs::uninstall_recorder();
    }

    #[test]
    fn partition_writes_assignments() {
        let (g, _) = generated();
        let out_path = tmp("parts.txt");
        let msg = execute(Command::Partition {
            graph: g,
            parts: 4,
            seed: 1,
            out: out_path.clone(),
        })
        .unwrap();
        assert!(msg.contains("4 parts"));
        let text = fs::read_to_string(out_path).unwrap();
        assert_eq!(text.lines().count(), 100);
    }

    #[test]
    fn unknown_author_is_a_clean_error() {
        let (g, l) = generated();
        let err = execute(Command::Query {
            graph: g,
            labels: Some(l),
            queries: "Nobody Atall".into(),
            query_type: QueryType::And,
            budget: 5,
            alpha: 0.5,
            dot: None,
            json: false,
            push: None,
            threads: 1,
            precision: ceps_graph::Precision::F64,
            profile: false,
            profile_out: None,
        })
        .unwrap_err();
        assert!(err.0.contains("unknown author"));
    }

    #[test]
    fn autok_reports_k_and_ranks() {
        let (g, l) = generated();
        let out = execute(Command::AutoK {
            graph: g,
            labels: Some(l),
            queries: "0,1,2".into(),
            alpha: 0.5,
            threads: 1,
        })
        .unwrap();
        assert!(out.contains("inferred K_softAND"));
        assert!(out.contains("k' = 1"));
        assert!(out.contains("softand:"));
    }

    #[test]
    fn import_round_trips_through_query() {
        let pairs = tmp("pairs.tsv");
        fs::write(
            &pairs,
            "Ada Lovelace\tCharles Babbage\t3\nAda Lovelace\tLuigi Menabrea\n",
        )
        .unwrap();
        let g = tmp("imported.txt");
        let l = tmp("imported_labels.txt");
        let msg = execute(Command::Import {
            pairs,
            out: g.clone(),
            labels_out: l.clone(),
        })
        .unwrap();
        assert!(msg.contains("3 authors"));
        let out = execute(Command::Query {
            graph: g,
            labels: Some(l),
            queries: "Charles Babbage,Luigi Menabrea".into(),
            query_type: QueryType::And,
            budget: 2,
            alpha: 0.5,
            dot: None,
            json: false,
            push: None,
            threads: 1,
            precision: ceps_graph::Precision::F64,
            profile: false,
            profile_out: None,
        })
        .unwrap();
        assert!(out.contains("Ada Lovelace"), "center-piece missing: {out}");
    }

    #[test]
    fn serve_reports_throughput_and_cache() {
        let (g, _) = generated();
        let out = execute(Command::Serve {
            graph: g.clone(),
            requests: 10,
            queries_per: 2,
            workers: 2,
            repeat: 0.8,
            budget: 4,
            alpha: 0.5,
            cache_mb: 16,
            seed: 1,
            threads: 1,
            precision: ceps_graph::Precision::F64,
            json: false,
            profile: false,
            profile_out: None,
            metrics_out: None,
            metrics_interval_ms: 500,
            trace_out: None,
            trace_sample: 1.0,
            listen: None,
            flight_out: None,
        })
        .unwrap();
        assert!(out.contains("served 10 requests"));
        assert!(out.contains("cache:"), "missing cache line: {out}");

        let out = execute(Command::Serve {
            graph: g,
            requests: 6,
            queries_per: 2,
            workers: 1,
            repeat: 0.0,
            budget: 4,
            alpha: 0.5,
            cache_mb: 0,
            seed: 1,
            threads: 1,
            precision: ceps_graph::Precision::F64,
            json: true,
            profile: false,
            profile_out: None,
            metrics_out: None,
            metrics_interval_ms: 500,
            trace_out: None,
            trace_sample: 1.0,
            listen: None,
            flight_out: None,
        })
        .unwrap();
        let doc: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(doc["requests"], 6);
        // Cache disabled: no hit rate exists, reported as null (not 0.0).
        assert!(doc["hit_rate"].is_null(), "{doc:?}");
        assert!(doc["latency_ms"]["p50"].as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn serve_listen_and_client_round_trip_over_unix_socket() {
        let (g, _) = generated();
        let sock = tmp(&format!("cli-net-{}.sock", std::process::id()));
        let _ = fs::remove_file(&sock);
        let addr = sock.display().to_string();

        let server = std::thread::spawn({
            let g = g.clone();
            let addr = addr.clone();
            move || {
                execute(Command::Serve {
                    graph: g,
                    requests: 0,
                    queries_per: 2,
                    workers: 2,
                    repeat: 0.5,
                    budget: 4,
                    alpha: 0.5,
                    cache_mb: 16,
                    seed: 1,
                    threads: 1,
                    precision: ceps_graph::Precision::F64,
                    json: false,
                    profile: false,
                    profile_out: None,
                    metrics_out: None,
                    metrics_interval_ms: 500,
                    trace_out: None,
                    trace_sample: 1.0,
                    listen: Some(addr),
                    flight_out: None,
                })
                .unwrap()
            }
        });
        // Wait for the socket to appear.
        for _ in 0..200 {
            if sock.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        let out = execute(Command::Client {
            connect: addr.clone(),
            action: ClientAction::Ping,
            json: false,
            timeout_ms: 5_000,
            trace_out: None,
        })
        .unwrap();
        assert!(out.contains("ceps-wire/v1"), "{out}");

        let out = execute(Command::Client {
            connect: addr.clone(),
            action: ClientAction::Query("0,30".into()),
            json: true,
            timeout_ms: 10_000,
            trace_out: None,
        })
        .unwrap();
        let doc: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(!doc["members"].as_array().unwrap().is_empty());

        let out = execute(Command::Client {
            connect: addr.clone(),
            action: ClientAction::Stats,
            json: false,
            timeout_ms: 5_000,
            trace_out: None,
        })
        .unwrap();
        assert!(out.contains("1 queries"), "{out}");

        let out = execute(Command::Client {
            connect: addr,
            action: ClientAction::Shutdown,
            json: false,
            timeout_ms: 5_000,
            trace_out: None,
        })
        .unwrap();
        assert!(out.contains("server drained"));

        let summary = server.join().unwrap();
        assert!(summary.contains("server drained after"), "{summary}");
        assert!(summary.contains("1 queries"), "{summary}");
    }

    #[test]
    fn loadgen_drives_a_unix_socket_server_and_checks_the_slo() {
        let (g, _) = generated();
        let sock = tmp(&format!("cli-load-{}.sock", std::process::id()));
        let _ = fs::remove_file(&sock);
        let addr = sock.display().to_string();

        let server = std::thread::spawn({
            let g = g.clone();
            let addr = addr.clone();
            move || {
                execute(Command::Serve {
                    graph: g,
                    requests: 0,
                    queries_per: 2,
                    workers: 2,
                    repeat: 0.5,
                    budget: 4,
                    alpha: 0.5,
                    cache_mb: 16,
                    seed: 1,
                    threads: 1,
                    precision: ceps_graph::Precision::F64,
                    json: false,
                    profile: false,
                    profile_out: None,
                    metrics_out: None,
                    metrics_interval_ms: 500,
                    trace_out: None,
                    trace_sample: 1.0,
                    listen: Some(addr),
                    flight_out: None,
                })
                .unwrap()
            }
        });
        for _ in 0..200 {
            if sock.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        let out_path = tmp("loadgen-report.json");
        let out = execute(Command::Loadgen {
            connect: addr.clone(),
            rps: 40.0,
            duration_s: 1.0,
            warmup_s: 0.2,
            arrival: ceps_load::ArrivalKind::Constant,
            connections: 2,
            queries_per: 2,
            node_space: 100,
            repeat: 0.5,
            seed: 7,
            slo_p99_ms: 60_000.0,
            max_error_rate: 0.0,
            search: false,
            json: false,
            out: Some(out_path.clone()),
        })
        .unwrap();
        assert!(out.contains("achieved"), "{out}");
        assert!(out.contains("slo (p99 <= 60000 ms"), "{out}");
        assert!(out.contains("met"), "{out}");

        // The JSON artifact parses and shows a clean run.
        let json = fs::read_to_string(&out_path).unwrap();
        let doc: serde_json::Value = serde_json::from_str(json.trim()).unwrap();
        assert_eq!(doc["schema"], "ceps-load/v1");
        assert_eq!(doc["measure"]["errors"], 0);
        assert_eq!(doc["measure"]["sheds"], 0);
        assert!(doc["achieved_rps"].as_f64().unwrap() > 0.0);

        let out = execute(Command::Client {
            connect: addr,
            action: ClientAction::Shutdown,
            json: false,
            timeout_ms: 5_000,
            trace_out: None,
        })
        .unwrap();
        assert!(out.contains("server drained"));
        let summary = server.join().unwrap();
        assert!(summary.contains("queue p50"), "{summary}");
    }

    #[test]
    fn traced_wire_round_trip_shares_trace_ids_and_dumps_the_flight_ring() {
        let (g, _) = generated();
        let pid = std::process::id();
        let sock = tmp(&format!("cli-traced-{pid}.sock"));
        let server_traces = tmp(&format!("server-traces-{pid}.jsonl"));
        let client_traces = tmp(&format!("client-traces-{pid}.jsonl"));
        let flight = tmp(&format!("flight-{pid}.jsonl"));
        for p in [&sock, &server_traces, &client_traces, &flight] {
            let _ = fs::remove_file(p);
        }
        let addr = sock.display().to_string();

        let server = std::thread::spawn({
            let g = g.clone();
            let addr = addr.clone();
            let server_traces = server_traces.clone();
            let flight = flight.clone();
            move || {
                execute(Command::Serve {
                    graph: g,
                    requests: 0,
                    queries_per: 2,
                    workers: 2,
                    repeat: 0.5,
                    budget: 4,
                    alpha: 0.5,
                    cache_mb: 16,
                    seed: 1,
                    threads: 1,
                    precision: ceps_graph::Precision::F64,
                    json: false,
                    profile: false,
                    profile_out: None,
                    metrics_out: None,
                    metrics_interval_ms: 500,
                    trace_out: Some(server_traces),
                    trace_sample: 1.0,
                    listen: Some(addr),
                    flight_out: Some(flight),
                })
                .unwrap()
            }
        });
        for _ in 0..200 {
            if sock.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        let out = execute(Command::Client {
            connect: addr.clone(),
            action: ClientAction::Query("0,30".into()),
            json: false,
            timeout_ms: 10_000,
            trace_out: Some(client_traces.clone()),
        })
        .unwrap();
        assert!(out.contains("client traces written to"), "{out}");

        let dump = execute(Command::Client {
            connect: addr.clone(),
            action: ClientAction::DumpFlight,
            json: true,
            timeout_ms: 5_000,
            trace_out: None,
        })
        .unwrap();
        assert!(
            dump.contains("\"schema\": \"ceps-flight/v1\""),
            "--flight-out must have enabled the recorder: {dump}"
        );

        let out = execute(Command::Client {
            connect: addr,
            action: ClientAction::Shutdown,
            json: false,
            timeout_ms: 5_000,
            trace_out: None,
        })
        .unwrap();
        assert!(out.contains("server drained"));
        let summary = server.join().unwrap();
        assert!(summary.contains("windowed latency p50"), "{summary}");
        assert!(summary.contains("traces written to"), "{summary}");
        assert!(summary.contains("flight ring written to"), "{summary}");

        // One query → one line on each side, sharing one trace_id; the
        // server line carries the stage-level breakdown.
        let client_line = fs::read_to_string(&client_traces).unwrap();
        let server_line = fs::read_to_string(&server_traces).unwrap();
        assert_eq!(client_line.lines().count(), 1, "{client_line}");
        assert_eq!(server_line.lines().count(), 1, "{server_line}");
        let cdoc: serde_json::Value = serde_json::from_str(client_line.trim()).unwrap();
        let sdoc: serde_json::Value = serde_json::from_str(server_line.trim()).unwrap();
        assert_eq!(cdoc["schema"], "ceps-trace/v1");
        assert_eq!(cdoc["side"], "client");
        assert_eq!(sdoc["schema"], "ceps-trace/v1");
        let tid = cdoc["trace_id"].as_str().unwrap();
        assert_eq!(tid.len(), 16);
        assert_eq!(sdoc["trace_id"].as_str().unwrap(), tid);
        assert!(sdoc["scores_ms"].as_f64().unwrap() >= 0.0);
        assert!(
            cdoc["latency_ms"].as_f64().unwrap() >= sdoc["latency_ms"].as_f64().unwrap(),
            "client-observed latency includes the wire: {cdoc:?} vs {sdoc:?}"
        );

        // The drain wrote the ring; every line is valid ceps-flight/v1.
        let flight_text = fs::read_to_string(&flight).unwrap();
        assert!(!flight_text.is_empty());
        for line in flight_text.lines() {
            let doc: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(doc["schema"], "ceps-flight/v1");
        }
        ceps_obs::flight_disable();
    }

    #[test]
    fn serve_writes_metrics_and_traces() {
        let _guard = recorder_lock();
        let (g, _) = generated();
        let prom = tmp("serve_metrics.prom");
        let events = tmp("serve_metrics.jsonl");
        let traces = tmp("serve_traces.jsonl");
        let _ = fs::remove_file(&events);
        let out = execute(Command::Serve {
            graph: g,
            requests: 8,
            queries_per: 2,
            workers: 2,
            repeat: 0.8,
            budget: 4,
            alpha: 0.5,
            cache_mb: 16,
            seed: 1,
            threads: 1,
            precision: ceps_graph::Precision::F64,
            json: false,
            profile: false,
            profile_out: None,
            metrics_out: Some(prom.clone()),
            metrics_interval_ms: 20,
            trace_out: Some(traces.clone()),
            trace_sample: 1.0,
            listen: None,
            flight_out: None,
        })
        .unwrap();
        assert!(out.contains("metrics written to"));
        assert!(out.contains("traces written to"));

        // Final flush on exporter drop: the .prom reflects the full run.
        let text = fs::read_to_string(&prom).unwrap();
        assert!(text.contains("# TYPE ceps_serve_requests counter"));
        assert!(text.contains("ceps_serve_requests 8"), "{text}");
        assert!(text.contains("# TYPE ceps_serve_latency_ms histogram"));
        assert!(text.contains("ceps_serve_latency_ms_count 8"));

        let events_text = fs::read_to_string(&events).unwrap();
        assert!(!events_text.is_empty());
        for line in events_text.lines() {
            assert!(line.starts_with("{\"schema\": \"ceps-metrics/v1\""));
        }

        let trace_text = fs::read_to_string(&traces).unwrap();
        assert_eq!(trace_text.lines().count(), 8, "rate 1.0 → one per request");
        for line in trace_text.lines() {
            let doc: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(doc["schema"], "ceps-trace/v1");
            assert_eq!(doc["outcome"], "ok");
        }
        ceps_obs::uninstall_recorder();
    }

    #[test]
    fn metrics_events_path_never_collides() {
        assert_eq!(
            metrics_events_path(Path::new("m.prom")),
            PathBuf::from("m.jsonl")
        );
        assert_eq!(
            metrics_events_path(Path::new("dir/metrics")),
            PathBuf::from("dir/metrics.jsonl")
        );
        assert_eq!(
            metrics_events_path(Path::new("m.jsonl")),
            PathBuf::from("m.events.jsonl")
        );
    }

    #[test]
    fn help_prints_usage() {
        let out = execute(Command::Help).unwrap();
        assert!(out.contains("USAGE"));
    }
}
