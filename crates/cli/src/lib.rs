//! # ceps-cli
//!
//! The `ceps` command-line tool: center-piece subgraph queries over plain
//! edge-list files. The binary in `src/main.rs` is a thin shell around this
//! library so every command is unit-testable.
//!
//! ```text
//! ceps generate --scale small --seed 7 --out graph.txt --labels-out names.txt
//! ceps stats    --graph graph.txt
//! ceps query    --graph graph.txt --labels names.txt \
//!               --queries "Ada Abara,Chen Ivanova" --type and --budget 10
//! ceps partition --graph graph.txt --parts 8 --out parts.txt
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{parse, ClientAction, Command};

/// CLI-level errors: argument problems or propagated library errors, all
/// rendered as user-facing strings by `main`.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError(s)
    }
}

impl From<&str> for CliError {
    fn from(s: &str) -> Self {
        CliError(s.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("i/o error: {e}"))
    }
}

impl From<ceps_graph::GraphError> for CliError {
    fn from(e: ceps_graph::GraphError) -> Self {
        CliError(e.to_string())
    }
}

impl From<ceps_core::CepsError> for CliError {
    fn from(e: ceps_core::CepsError) -> Self {
        CliError(e.to_string())
    }
}

impl From<ceps_net::NetError> for CliError {
    fn from(e: ceps_net::NetError) -> Self {
        CliError(e.to_string())
    }
}

impl From<ceps_partition::PartitionError> for CliError {
    fn from(e: ceps_partition::PartitionError) -> Self {
        CliError(e.to_string())
    }
}
