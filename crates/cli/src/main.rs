//! The `ceps` binary — see `ceps help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match ceps_cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            ceps_obs::error!("error: {e}");
            eprintln!("{}", ceps_cli::args::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match ceps_cli::commands::execute(cmd) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            ceps_obs::error!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
