//! End-to-end tests of the actual `ceps` binary: spawn the executable,
//! drive a full generate → stats → query → partition session through a
//! temp directory, and check exit codes and output.

use std::path::PathBuf;
use std::process::Command;

fn ceps() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ceps"))
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ceps_bin_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_session_generate_stats_query_partition() {
    let dir = tmpdir();
    let graph = dir.join("g.txt");
    let labels = dir.join("l.txt");

    // generate
    let out = ceps()
        .args(["generate", "--scale", "tiny", "--seed", "5"])
        .args(["--out", graph.to_str().unwrap()])
        .args(["--labels-out", labels.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("100 nodes"));

    // stats
    let out = ceps()
        .args(["stats", "--graph", graph.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("nodes: 100"));
    assert!(text.contains("clustering:"));

    // query by ids, JSON output
    let out = ceps()
        .args(["query", "--graph", graph.to_str().unwrap()])
        .args([
            "--queries",
            "0,30",
            "--type",
            "and",
            "--budget",
            "5",
            "--json",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("query --json emits valid JSON");
    assert_eq!(doc["query_type"], "AND");
    assert!(doc["subgraph"].as_array().unwrap().len() >= 2);

    // query with push scoring and a thread pool
    let out = ceps()
        .args(["query", "--graph", graph.to_str().unwrap()])
        .args([
            "--queries",
            "0,30",
            "--push",
            "1e-8",
            "--threads",
            "2",
            "--budget",
            "4",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("why (discovery order)"));

    // partition
    let parts = dir.join("parts.txt");
    let out = ceps()
        .args(["partition", "--graph", graph.to_str().unwrap()])
        .args(["--parts", "4", "--out", parts.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(
        std::fs::read_to_string(&parts).unwrap().lines().count(),
        100
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_arguments_fail_with_usage() {
    let out = ceps().args(["bogus-command"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    let out = ceps()
        .args(["query", "--graph", "/nonexistent/file", "--queries", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));
}

#[test]
fn help_succeeds() {
    let out = ceps().args(["help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("center-piece"));
}
