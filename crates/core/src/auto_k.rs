//! Automatic `K_softAND` coefficient selection — future-work item 3 of the
//! paper, implemented with the cross-validation approach the authors
//! sketch:
//!
//! > "if the user does not provide the `K_softAND` coefficient, how can we
//! > infer the 'optimal' k. One possible way to attack this problem is
//! > through cross validation (by treating CePS as a retrieval tool)."
//!
//! The scheme here is **leave-one-out retrieval**: hold out each query
//! `q_i` in turn, combine the remaining `Q − 1` individual score vectors
//! under every candidate coefficient `k'`, and ask how well the combined
//! score *retrieves* the held-out query (its rank among all nodes — rank 1
//! is best). A coherent query set (all one community) retrieves held-out
//! members best under strict combination (`k' = Q − 1`, i.e. `AND`); a
//! query set split across communities retrieves them best under a looser
//! `k'` that only demands closeness to the held-out query's own cluster.
//! The inferred coefficient for the full set is the best `k' + 1` (the
//! held-out query rejoins the set).

use ceps_graph::NodeId;
use ceps_rwr::{combine, ScoreMatrix};

use crate::pipeline::CepsEngine;
use crate::{CepsError, Result};

/// Outcome of the inference: the chosen `k` plus the evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct KInference {
    /// The inferred `K_softAND` coefficient for the full query set.
    pub k: usize,
    /// Mean held-out retrieval rank per candidate `k'` (for the reduced
    /// `Q − 1`-query sets); `mean_ranks[k' - 1]` is the rank for `k'`.
    /// Lower is better.
    pub mean_ranks: Vec<f64>,
}

/// Rank of `target` under `scores` (1 = highest score). Ties count as
/// better-ranked to stay conservative.
fn rank_of(scores: &[f64], target: NodeId) -> f64 {
    let s = scores[target.index()];
    let better = scores.iter().filter(|&&x| x > s).count();
    (better + 1) as f64
}

/// Infers a `K_softAND` coefficient for `queries` via leave-one-out
/// retrieval over `engine`'s graph and configuration.
///
/// Returns `k = 1` immediately for a single query (no choice exists).
///
/// # Errors
/// Query validation errors as in [`CepsEngine::run`].
pub fn infer_soft_and_k(engine: &CepsEngine, queries: &[NodeId]) -> Result<KInference> {
    if queries.is_empty() {
        return Err(CepsError::NoQueries);
    }
    let q = queries.len();
    if q == 1 {
        return Ok(KInference {
            k: 1,
            mean_ranks: vec![],
        });
    }

    // One RWR solve for the full set; leave-one-out reuses the rows.
    let scores: ScoreMatrix = engine.individual_scores(queries)?;
    let n = scores.node_count();

    let mut mean_ranks = vec![0f64; q - 1];
    let mut combined = vec![0f64; n];
    for hold in 0..q {
        // Rows of the reduced set, borrowed straight from the solved R.
        let reduced: Vec<&[f64]> = (0..q)
            .filter(|&i| i != hold)
            .map(|i| scores.row(i))
            .collect();
        for k_prime in 1..q {
            // Combined score of every node under k' over the reduced set;
            // the row-sweeping combiner fills the hoisted buffer without
            // per-node column gathers.
            combine::combine_rows(&reduced, k_prime, &mut combined)
                .expect("1 <= k' <= Q - 1 by construction");
            // Remaining queries would trivially top the ranking; exclude
            // them so the rank reflects retrieval among non-query nodes.
            for (i, &other) in queries.iter().enumerate() {
                if i != hold {
                    combined[other.index()] = 0.0;
                }
            }
            mean_ranks[k_prime - 1] += rank_of(&combined, queries[hold]) / q as f64;
        }
    }

    // Best (lowest mean rank) k'; ties break toward the stricter k.
    let mut best = 0usize;
    for k_idx in 1..mean_ranks.len() {
        if mean_ranks[k_idx] <= mean_ranks[best] {
            best = k_idx;
        }
    }
    Ok(KInference {
        k: best + 2,
        mean_ranks,
    }) // k' = best + 1, full-set k = k' + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CepsConfig;
    use ceps_graph::{CsrGraph, GraphBuilder};

    /// Two 6-cliques joined by a single weak bridge. Edges among
    /// `boosted` nodes get weight 9 (a tight collaboration core), the
    /// rest weight 3 — the inference needs the query set to be mutually
    /// tighter than the background, as real query sets are.
    fn two_cliques(boosted: &[(u32, u32)]) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for base in [0u32, 6] {
            for i in 0..6 {
                for j in (i + 1)..6 {
                    let (x, y) = (base + i, base + j);
                    let w = if boosted.contains(&(x, y)) || boosted.contains(&(y, x)) {
                        9.0
                    } else {
                        3.0
                    };
                    b.add_edge(NodeId(x), NodeId(y), w).unwrap();
                }
            }
        }
        b.add_edge(NodeId(0), NodeId(6), 0.2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn single_query_is_trivially_k1() {
        let g = two_cliques(&[]);
        let engine = CepsEngine::new(&g, CepsConfig::default()).unwrap();
        let inf = infer_soft_and_k(&engine, &[NodeId(1)]).unwrap();
        assert_eq!(inf.k, 1);
    }

    #[test]
    fn coherent_queries_infer_and() {
        // Three queries in the same clique: held-out members are retrieved
        // best when the combination demands closeness to both others.
        let g = two_cliques(&[(1, 2), (2, 3), (1, 3)]);
        let engine = CepsEngine::new(&g, CepsConfig::default()).unwrap();
        let inf = infer_soft_and_k(&engine, &[NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        assert_eq!(inf.k, 3, "mean ranks {:?}", inf.mean_ranks);
    }

    #[test]
    fn split_queries_infer_a_softer_k() {
        // Two queries per clique: a held-out query is close to its one
        // clique-mate but not to the two cross-clique queries, so strict
        // AND over the remaining three ranks it poorly.
        let g = two_cliques(&[(1, 2), (7, 8)]);
        let engine = CepsEngine::new(&g, CepsConfig::default()).unwrap();
        let inf = infer_soft_and_k(&engine, &[NodeId(1), NodeId(2), NodeId(7), NodeId(8)]).unwrap();
        assert!(
            inf.k < 4,
            "expected softAND, got k = {} ({:?})",
            inf.k,
            inf.mean_ranks
        );
        assert_eq!(inf.k, 2, "mean ranks {:?}", inf.mean_ranks);
    }

    #[test]
    fn empty_query_set_rejected() {
        let g = two_cliques(&[]);
        let engine = CepsEngine::new(&g, CepsConfig::default()).unwrap();
        assert!(matches!(
            infer_soft_and_k(&engine, &[]),
            Err(CepsError::NoQueries)
        ));
    }

    #[test]
    fn mean_ranks_are_reported_per_candidate() {
        let g = two_cliques(&[(1, 2), (2, 3), (1, 3)]);
        let engine = CepsEngine::new(&g, CepsConfig::default()).unwrap();
        let inf = infer_soft_and_k(&engine, &[NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        assert_eq!(inf.mean_ranks.len(), 2);
        assert!(inf.mean_ranks.iter().all(|&r| r >= 1.0));
    }
}
