//! Pipeline configuration.

use std::sync::Arc;

use ceps_graph::{CsrGraph, Precision, Transition};
use ceps_partition::{partition_graph, PartitionConfig};
use ceps_pool::PoolHandle;
use ceps_rwr::blockwise::BlockwiseRwr;
use ceps_rwr::precomputed::PrecomputedRwr;
use ceps_rwr::{IterativeScores, PushScores, RwrConfig, ScoreBackend};

use crate::{CepsError, QueryType, Result};

/// How Step 1 (individual score calculation, Eq. 4) is solved.
///
/// Every variant maps to one [`ScoreBackend`] implementation via
/// [`ScoreMethod::build_backend`]; the pipeline holds the trait object and
/// never dispatches on this enum again after construction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ScoreMethod {
    /// Fixed-iteration power iteration — the paper's method (`m = 50`).
    #[default]
    Iterative,
    /// Forward push with the given residual threshold: visits only the
    /// region of the graph the walk's mass actually reaches, exploiting
    /// the score skew Sec. 6 observes. The reported residual bounds the
    /// L1 error per query.
    Push {
        /// Push threshold; smaller = more accurate and more expensive.
        epsilon: f64,
    },
    /// Dense offline inversion `(1 − c)(I − c W̃)⁻¹` (Eq. 12): `O(N³)`
    /// once, then every query is a column copy. Only viable for small
    /// graphs — construction refuses more than `max_nodes` nodes.
    Precomputed {
        /// Hard ceiling on the node count (`N²` dense memory).
        max_nodes: usize,
    },
    /// The paper's Sec. 6 blockwise approximation: partition the graph,
    /// invert each diagonal block, drop cross-block mass.
    Blockwise {
        /// Number of partition blocks `p`.
        parts: usize,
        /// Partitioner seed (randomized matching and seed placement).
        seed: u64,
        /// Refuse blocks larger than this (dense per-block cost).
        max_block: usize,
    },
}

impl ScoreMethod {
    /// Builds the [`ScoreBackend`] this method names, over a shared
    /// normalized operator. `graph` is only consulted by
    /// [`ScoreMethod::Blockwise`] (its partitioner runs on the raw
    /// adjacency, not the operator). `pool` is the engine-wide worker-pool
    /// handle; the iterative backend dispatches its batched products
    /// through it (the other backends solve without it).
    ///
    /// # Errors
    /// Backend construction errors: solver validation, dense-size refusals
    /// ([`ceps_rwr::RwrError::GraphTooLarge`]) or partitioner failures.
    pub fn build_backend(
        &self,
        graph: &CsrGraph,
        transition: &Arc<Transition>,
        rwr: RwrConfig,
        pool: PoolHandle,
    ) -> Result<Arc<dyn ScoreBackend>> {
        Ok(match *self {
            ScoreMethod::Iterative => Arc::new(IterativeScores::with_pool(
                Arc::clone(transition),
                rwr,
                pool,
            )?),
            ScoreMethod::Push { epsilon } => {
                if !(epsilon.is_finite() && epsilon > 0.0) {
                    return Err(CepsError::BadPushEpsilon { epsilon });
                }
                Arc::new(PushScores::new(Arc::clone(transition), rwr.c, epsilon)?)
            }
            ScoreMethod::Precomputed { max_nodes } => {
                Arc::new(PrecomputedRwr::new(transition, rwr.c, max_nodes)?)
            }
            ScoreMethod::Blockwise {
                parts,
                seed,
                max_block,
            } => {
                let pcfg = PartitionConfig {
                    seed,
                    ..PartitionConfig::with_parts(parts)
                };
                let partitioning = partition_graph(graph, &pcfg)?;
                Arc::new(BlockwiseRwr::new(
                    transition,
                    partitioning.assignment(),
                    rwr.c,
                    max_block,
                )?)
            }
        })
    }
}

/// How Step 2 (combining individual scores) is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CombineMethod {
    /// Meeting probabilities (Eqs. 6–9) — the paper's main definition.
    #[default]
    MeetingProbability,
    /// Order statistics (appendix Variant 2, Eq. 21): the `k`-th largest
    /// individual score — `min` for `AND`, `max` for `OR`.
    OrderStatistic,
}

/// Configuration for a [`crate::CepsEngine`].
///
/// Defaults mirror the paper's experimental setup (Sec. 7, "Parameter
/// Setting"): `c = 0.5`, `m = 50` iterations, degree-penalization
/// `α = 0.5`, `AND` query, budget `b = 20`. The maximum allowable path
/// length defaults to `⌈b / k⌉` where `k` is the number of active sources
/// ("The maximum allowable path length len is decided by the budget b and
/// the number of active sources k as [b/k]").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CepsConfig {
    /// Random-walk-with-restart parameters (Eq. 4).
    pub rwr: RwrConfig,
    /// Degree-penalization exponent `α` (Eq. 10). `0.0` disables the
    /// normalization step (plain Eq. 5).
    pub alpha: f64,
    /// The query type (Sec. 4.2).
    pub query: QueryType,
    /// Budget `b`: target number of non-query nodes in the output.
    pub budget: usize,
    /// Override for the maximum allowable path length `len`; `None` uses
    /// the paper's `⌈b / k⌉`.
    pub max_path_len: Option<usize>,
    /// Individual-score solver (Step 1 of Table 1).
    pub score_method: ScoreMethod,
    /// Score combinator (Step 2 of Table 1).
    pub combine_method: CombineMethod,
    /// Appendix Variant 1: use the symmetric manifold-ranking operator
    /// `S = D^{-1/2} W D^{-1/2}` (Eq. 20) instead of the (penalized)
    /// column-stochastic `W̃`. Makes `r(i, j) = r(j, i)`; `alpha` is
    /// ignored when set.
    pub manifold_ranking: bool,
    /// Storage precision of the normalized operator's coefficients.
    /// [`Precision::F32`] halves the transition matrix's memory bandwidth
    /// (accumulation stays in `f64`) at the cost of ~1e-7 relative rounding
    /// per coefficient; the `experiments -- check` quality gate bounds the
    /// end-to-end score drift.
    pub precision: Precision,
}

impl Default for CepsConfig {
    fn default() -> Self {
        CepsConfig {
            rwr: RwrConfig::default(),
            alpha: 0.5,
            query: QueryType::And,
            budget: 20,
            max_path_len: None,
            score_method: ScoreMethod::Iterative,
            combine_method: CombineMethod::MeetingProbability,
            manifold_ranking: false,
            precision: Precision::F64,
        }
    }
}

impl CepsConfig {
    /// Sets the budget `b`.
    pub fn budget(mut self, b: usize) -> Self {
        self.budget = b;
        self
    }

    /// Sets the query type.
    pub fn query_type(mut self, q: QueryType) -> Self {
        self.query = q;
        self
    }

    /// Sets the degree-penalization exponent `α`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the RWR restart coefficient `c`.
    pub fn restart(mut self, c: f64) -> Self {
        self.rwr.c = c;
        self
    }

    /// Sets the RWR iteration count `m`.
    pub fn iterations(mut self, m: usize) -> Self {
        self.rwr.max_iterations = m;
        self
    }

    /// Sets the number of RWR worker threads. `0` = auto (the machine's
    /// available parallelism); `1` = always sequential. Small solves fall
    /// back to the sequential kernel regardless (see
    /// [`ceps_pool::DEFAULT_MIN_WORK`]), so auto is safe everywhere.
    pub fn threads(mut self, threads: usize) -> Self {
        self.rwr.threads = threads;
        self
    }

    /// Overrides the maximum allowable path length.
    pub fn max_path_len(mut self, len: usize) -> Self {
        self.max_path_len = Some(len);
        self
    }

    /// Switches Step 1 to forward push with threshold `epsilon`.
    pub fn push_scores(mut self, epsilon: f64) -> Self {
        self.score_method = ScoreMethod::Push { epsilon };
        self
    }

    /// Switches Step 1 to the dense precomputed inverse (Eq. 12), refusing
    /// graphs above `max_nodes` nodes.
    pub fn precomputed_scores(mut self, max_nodes: usize) -> Self {
        self.score_method = ScoreMethod::Precomputed { max_nodes };
        self
    }

    /// Switches Step 1 to the Sec. 6 blockwise approximation with `parts`
    /// partition blocks (partitioner seed `seed`), refusing blocks above
    /// `max_block` nodes.
    pub fn blockwise_scores(mut self, parts: usize, seed: u64, max_block: usize) -> Self {
        self.score_method = ScoreMethod::Blockwise {
            parts,
            seed,
            max_block,
        };
        self
    }

    /// Switches Step 2 to the order-statistic combinator (appendix
    /// Variant 2, Eq. 21).
    pub fn order_statistic(mut self) -> Self {
        self.combine_method = CombineMethod::OrderStatistic;
        self
    }

    /// Switches Step 1's operator to manifold ranking (appendix Variant 1,
    /// Eq. 20).
    pub fn manifold(mut self) -> Self {
        self.manifold_ranking = true;
        self
    }

    /// Sets the storage precision of the normalized operator
    /// (`Precision::F32` halves its memory traffic; scores drift by at most
    /// the coefficient rounding, bounded by the benchmark quality gate).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// The effective maximum path length for `k` active sources:
    /// the override if set, else `⌈b / k⌉`, never below 2 (a path needs at
    /// least room for one intermediate plus the destination).
    pub fn effective_path_len(&self, k: usize) -> usize {
        let len = self
            .max_path_len
            .unwrap_or_else(|| self.budget.div_ceil(k.max(1)));
        len.max(2)
    }

    /// Validates the configuration against a query count.
    ///
    /// # Errors
    /// [`CepsError::ZeroBudget`], [`CepsError::BadAlpha`], or the errors of
    /// [`QueryType::soft_and_k`] / [`RwrConfig::validate`].
    pub fn validate(&self, query_count: usize) -> Result<()> {
        if self.budget == 0 {
            return Err(CepsError::ZeroBudget);
        }
        if !(self.alpha.is_finite() && self.alpha >= 0.0) {
            return Err(CepsError::BadAlpha { alpha: self.alpha });
        }
        if let ScoreMethod::Push { epsilon } = self.score_method {
            if !(epsilon.is_finite() && epsilon > 0.0) {
                return Err(CepsError::BadPushEpsilon { epsilon });
            }
        }
        self.query.soft_and_k(query_count)?;
        self.rwr.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = CepsConfig::default();
        assert_eq!(c.rwr.c, 0.5);
        assert_eq!(c.rwr.max_iterations, 50);
        assert_eq!(c.alpha, 0.5);
        assert_eq!(c.query, QueryType::And);
        assert_eq!(c.budget, 20);
    }

    #[test]
    fn effective_path_len_is_budget_over_k() {
        let c = CepsConfig::default().budget(20);
        assert_eq!(c.effective_path_len(4), 5);
        assert_eq!(c.effective_path_len(3), 7); // ceil(20/3)
        assert_eq!(c.effective_path_len(1), 20);
        // Floors at 2 even for absurd k.
        assert_eq!(c.effective_path_len(100), 2);
        // Override wins.
        assert_eq!(c.max_path_len(9).effective_path_len(4), 9);
    }

    #[test]
    fn push_method_validates_epsilon() {
        let ok = CepsConfig::default().push_scores(1e-6);
        assert!(ok.validate(2).is_ok());
        assert!(matches!(ok.score_method, ScoreMethod::Push { .. }));
        for bad in [0.0, -1.0, f64::NAN] {
            let cfg = CepsConfig::default().push_scores(bad);
            assert!(matches!(
                cfg.validate(2),
                Err(CepsError::BadPushEpsilon { .. })
            ));
        }
    }

    #[test]
    fn validation_rejects_bad_settings() {
        assert!(matches!(
            CepsConfig::default().budget(0).validate(2),
            Err(CepsError::ZeroBudget)
        ));
        assert!(matches!(
            CepsConfig::default().alpha(f64::NAN).validate(2),
            Err(CepsError::BadAlpha { .. })
        ));
        assert!(CepsConfig::default().restart(1.5).validate(2).is_err());
        assert!(CepsConfig::default()
            .query_type(QueryType::SoftAnd(3))
            .validate(2)
            .is_err());
        assert!(CepsConfig::default().validate(2).is_ok());
    }
}
