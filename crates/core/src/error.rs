//! Typed errors for the CePS pipeline.

use std::fmt;

use ceps_graph::{GraphError, NodeId};
use ceps_partition::PartitionError;
use ceps_rwr::RwrError;

/// Errors produced by `ceps-core`.
#[derive(Debug)]
#[non_exhaustive]
pub enum CepsError {
    /// The query set was empty.
    NoQueries,
    /// A query node appeared twice; duplicate particles make the meeting
    /// probabilities degenerate (`K_softAND` would double-count).
    DuplicateQuery {
        /// The repeated node.
        node: NodeId,
    },
    /// The budget was zero — the problem asks for a non-trivial subgraph.
    ZeroBudget,
    /// A `K_softAND` coefficient was outside `1..=Q`.
    BadSoftAndK {
        /// The rejected coefficient.
        k: usize,
        /// Number of queries.
        query_count: usize,
    },
    /// The degree-penalization exponent was not finite and non-negative.
    BadAlpha {
        /// The rejected exponent.
        alpha: f64,
    },
    /// The forward-push threshold was not finite and positive.
    BadPushEpsilon {
        /// The rejected threshold.
        epsilon: f64,
    },
    /// A caller-supplied score matrix does not match the query set and
    /// graph it is being combined against
    /// (see [`crate::CepsEngine::run_with_scores`]).
    ScoreShapeMismatch {
        /// Rows in the supplied matrix.
        rows: usize,
        /// Columns (nodes) in the supplied matrix.
        cols: usize,
        /// Number of queries it was paired with.
        queries: usize,
        /// Node count of the engine's graph.
        nodes: usize,
    },
    /// An error from the graph substrate.
    Graph(GraphError),
    /// An error from the RWR engine.
    Rwr(RwrError),
    /// An error from the partitioner (Fast CePS only).
    Partition(PartitionError),
}

impl fmt::Display for CepsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CepsError::NoQueries => write!(f, "query set is empty"),
            CepsError::DuplicateQuery { node } => {
                write!(f, "query node {node} appears more than once")
            }
            CepsError::ZeroBudget => write!(f, "budget must be at least 1"),
            CepsError::BadSoftAndK { k, query_count } => {
                write!(
                    f,
                    "K_softAND coefficient k = {k} must lie in 1..={query_count}"
                )
            }
            CepsError::BadAlpha { alpha } => {
                write!(
                    f,
                    "normalization exponent alpha = {alpha} must be finite and >= 0"
                )
            }
            CepsError::BadPushEpsilon { epsilon } => {
                write!(
                    f,
                    "push threshold epsilon = {epsilon} must be finite and > 0"
                )
            }
            CepsError::ScoreShapeMismatch {
                rows,
                cols,
                queries,
                nodes,
            } => {
                write!(
                    f,
                    "score matrix is {rows}x{cols} but the run needs {queries}x{nodes}"
                )
            }
            CepsError::Graph(e) => write!(f, "graph error: {e}"),
            CepsError::Rwr(e) => write!(f, "rwr error: {e}"),
            CepsError::Partition(e) => write!(f, "partition error: {e}"),
        }
    }
}

impl std::error::Error for CepsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CepsError::Graph(e) => Some(e),
            CepsError::Rwr(e) => Some(e),
            CepsError::Partition(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CepsError {
    fn from(e: GraphError) -> Self {
        CepsError::Graph(e)
    }
}

impl From<RwrError> for CepsError {
    fn from(e: RwrError) -> Self {
        CepsError::Rwr(e)
    }
}

impl From<PartitionError> for CepsError {
    fn from(e: PartitionError) -> Self {
        CepsError::Partition(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        assert!(CepsError::NoQueries.to_string().contains("empty"));
        assert!(CepsError::ZeroBudget.to_string().contains("budget"));
        assert!(CepsError::DuplicateQuery { node: NodeId(3) }
            .to_string()
            .contains("3"));
    }

    #[test]
    fn wrapped_errors_expose_sources() {
        use std::error::Error;
        let e = CepsError::from(RwrError::NoQueries);
        assert!(e.source().is_some());
    }
}
