//! Evaluation metrics (Sec. 7): `NRatio`, `ERatio`, `RelRatio`.

use ceps_graph::{CsrGraph, Subgraph, Transition};
use ceps_rwr::{edge_scores::EdgeScores, ScoreMatrix};

use crate::Result;

/// Eq. 13 — **Important Node Ratio**: the fraction of total combined node
/// goodness captured by the subgraph,
/// `Σ_{j ∈ H} r(Q, j) / Σ_{j ∈ W} r(Q, j)`.
///
/// Returns 0.0 when the graph-wide total is zero (no node has any closeness
/// to the query set — e.g. an `AND` query across disconnected components).
pub fn node_ratio(combined: &[f64], subgraph: &Subgraph) -> f64 {
    let total: f64 = combined.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let captured: f64 = subgraph.nodes().map(|v| combined[v.index()]).sum();
    captured / total
}

/// Eq. 14 — **Important Edge Ratio**: the fraction of total combined edge
/// goodness captured by the subgraph's induced edges,
/// `Σ_{(j,l) ∈ H} r(Q, (j,l)) / Σ_{(j,l) ∈ W} r(Q, (j,l))`.
///
/// `k` is the same softAND coefficient used for the node scores.
///
/// # Errors
/// Propagates [`ceps_rwr::RwrError::BadSoftAndK`].
pub fn edge_ratio(
    graph: &CsrGraph,
    transition: &Transition,
    scores: &ScoreMatrix,
    subgraph: &Subgraph,
    k: usize,
) -> Result<f64> {
    let es = EdgeScores::new(scores, transition);
    let total = es.total_combined(graph, k)?;
    if total <= 0.0 {
        return Ok(0.0);
    }
    let captured = es.sum_combined(subgraph.induced_edges(graph).map(|(a, b, _)| (a, b)), k)?;
    Ok(captured / total)
}

/// Eq. 19 — **Relative Important Node Ratio**: quality retained by the
/// pre-partition speedup, `NRatio(H_fast) / NRatio(H_full)`.
///
/// Both subgraphs must be measured against the *same* whole-graph combined
/// scores (the denominators of the two NRatios then cancel, so this is
/// simply the captured-goodness ratio). Returns 0.0 if the full run
/// captured nothing.
pub fn rel_ratio(combined_full: &[f64], fast: &Subgraph, full: &Subgraph) -> f64 {
    let full_captured: f64 = full.nodes().map(|v| combined_full[v.index()]).sum();
    if full_captured <= 0.0 {
        return 0.0;
    }
    let fast_captured: f64 = fast.nodes().map(|v| combined_full[v.index()]).sum();
    fast_captured / full_captured
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::{normalize::Normalization, GraphBuilder, NodeId};
    use ceps_rwr::{RwrConfig, RwrEngine};

    fn setup() -> (CsrGraph, Transition, ScoreMatrix) {
        let mut b = GraphBuilder::new();
        for (x, y) in [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)] {
            b.add_edge(NodeId(x), NodeId(y), 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let t = Transition::new(&g, Normalization::ColumnStochastic);
        let m = RwrEngine::new(&t, RwrConfig::default())
            .unwrap()
            .solve_many(&[NodeId(0), NodeId(2)])
            .unwrap();
        (g, t, m)
    }

    #[test]
    fn node_ratio_is_one_for_whole_graph_zero_for_empty() {
        let combined = vec![0.1, 0.2, 0.3, 0.4];
        let all = Subgraph::from_nodes((0..4).map(NodeId));
        assert!((node_ratio(&combined, &all) - 1.0).abs() < 1e-12);
        assert_eq!(node_ratio(&combined, &Subgraph::new()), 0.0);
        let half = Subgraph::from_nodes([NodeId(2), NodeId(3)]);
        assert!((node_ratio(&combined, &half) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn node_ratio_handles_zero_total() {
        let combined = vec![0.0; 4];
        let sub = Subgraph::from_nodes([NodeId(0)]);
        assert_eq!(node_ratio(&combined, &sub), 0.0);
    }

    #[test]
    fn edge_ratio_full_graph_is_one() {
        let (g, t, m) = setup();
        let all = Subgraph::from_nodes(g.nodes());
        let r = edge_ratio(&g, &t, &m, &all, 2).unwrap();
        assert!((r - 1.0).abs() < 1e-12, "ratio {r}");
    }

    #[test]
    fn edge_ratio_monotone_in_subgraph() {
        let (g, t, m) = setup();
        let small = Subgraph::from_nodes([NodeId(0), NodeId(1)]);
        let big = Subgraph::from_nodes([NodeId(0), NodeId(1), NodeId(3)]);
        let rs = edge_ratio(&g, &t, &m, &small, 2).unwrap();
        let rb = edge_ratio(&g, &t, &m, &big, 2).unwrap();
        assert!(rb >= rs);
        assert!((0.0..=1.0).contains(&rs));
        assert!((0.0..=1.0).contains(&rb));
    }

    #[test]
    fn rel_ratio_compares_captured_goodness() {
        let combined = vec![0.4, 0.3, 0.2, 0.1];
        let full = Subgraph::from_nodes([NodeId(0), NodeId(1)]); // 0.7
        let fast = Subgraph::from_nodes([NodeId(0), NodeId(3)]); // 0.5
        let r = rel_ratio(&combined, &fast, &full);
        assert!((r - 0.5 / 0.7).abs() < 1e-12);
        // Identical subgraphs → 1.0.
        assert!((rel_ratio(&combined, &full, &full) - 1.0).abs() < 1e-12);
        // Degenerate full run.
        assert_eq!(rel_ratio(&[0.0; 4], &fast, &full), 0.0);
    }
}
