//! Human-readable explanations of a CePS result.
//!
//! The paper motivates EXTRACT not just as an optimizer but as an
//! *explainer*: "not only does the algorithm select good/close nodes wrt
//! the query set, but also it provides some interpretations on why such
//! nodes are good" (Sec. 5). This module turns a [`CepsResult`] into that
//! interpretation: per destination, the key paths that justified it, with
//! scores, grouped and ordered the way the algorithm discovered them.
//!
//! Both the CLI and the examples render through here so the explanation
//! format is consistent (and tested) in one place.

use ceps_graph::{NodeId, NodeLabels};

use crate::pipeline::CepsResult;

/// One destination's justification: which sources reached it and how.
#[derive(Debug, Clone)]
pub struct DestinationExplanation {
    /// The destination node `pd`.
    pub destination: NodeId,
    /// Its combined closeness score `r(Q, pd)`.
    pub score: f64,
    /// Indices of the key paths (into `CepsResult::paths`) serving it.
    pub path_indices: Vec<usize>,
    /// Whether the destination was added without any connecting path.
    pub orphan: bool,
}

/// Structured explanation of a whole run.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Destinations in discovery order (Eq. 11 argmax order).
    pub destinations: Vec<DestinationExplanation>,
}

/// Builds the explanation from a result.
pub fn explain(result: &CepsResult) -> Explanation {
    let destinations = result
        .destinations
        .iter()
        .map(|&pd| {
            let path_indices: Vec<usize> = result
                .paths
                .iter()
                .enumerate()
                .filter(|(_, p)| p.dest == pd)
                .map(|(i, _)| i)
                .collect();
            DestinationExplanation {
                destination: pd,
                score: result.combined[pd.index()],
                orphan: result.orphan_destinations.contains(&pd),
                path_indices,
            }
        })
        .collect();
    Explanation { destinations }
}

/// Renders the explanation as indented text, with names when available.
pub fn render(result: &CepsResult, labels: Option<&NodeLabels>) -> String {
    let name = |v: NodeId| -> String { labels.map(|l| l.name(v)).unwrap_or_else(|| v.to_string()) };
    let expl = explain(result);
    let mut out = String::new();
    for (round, d) in expl.destinations.iter().enumerate() {
        out.push_str(&format!(
            "{}. {} (r(Q, j) = {:.3e}){}\n",
            round + 1,
            name(d.destination),
            d.score,
            if d.orphan {
                " [no connecting path: taken alone]"
            } else {
                ""
            },
        ));
        for &pi in &d.path_indices {
            let p = &result.paths[pi];
            let chain: Vec<String> = p.nodes.iter().map(|&v| name(v)).collect();
            out.push_str(&format!(
                "     via query {}: {}\n",
                p.source_index,
                chain.join(" -> ")
            ));
        }
    }
    if expl.destinations.is_empty() {
        out.push_str("no destinations were added (queries only)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CepsConfig, CepsEngine, QueryType};
    use ceps_graph::{GraphBuilder, NodeLabels};

    fn run_sample() -> (CepsResult, NodeLabels) {
        // Barbell with a planted bridge; names for readable output.
        let mut b = GraphBuilder::new();
        for (x, y) in [
            (0, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (4, 6),
        ] {
            b.add_edge(NodeId(x), NodeId(y), 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let labels =
            NodeLabels::from_names(["ann", "bob", "carol", "dave", "erin", "frank", "gail"]);
        let cfg = CepsConfig::default().budget(3).query_type(QueryType::And);
        let res = CepsEngine::new(&g, cfg)
            .unwrap()
            .run(&[NodeId(0), NodeId(6)])
            .unwrap();
        (res, labels)
    }

    #[test]
    fn every_destination_is_explained_in_order() {
        let (res, _) = run_sample();
        let expl = explain(&res);
        assert_eq!(expl.destinations.len(), res.destinations.len());
        for (d, &pd) in expl.destinations.iter().zip(&res.destinations) {
            assert_eq!(d.destination, pd);
            assert_eq!(d.score, res.combined[pd.index()]);
        }
    }

    #[test]
    fn path_indices_point_at_matching_paths() {
        let (res, _) = run_sample();
        let expl = explain(&res);
        let mut covered = 0;
        for d in &expl.destinations {
            for &pi in &d.path_indices {
                assert_eq!(res.paths[pi].dest, d.destination);
                covered += 1;
            }
            assert!(d.orphan || !d.path_indices.is_empty());
        }
        assert_eq!(
            covered,
            res.paths.len(),
            "every path belongs to a destination"
        );
    }

    #[test]
    fn rendered_text_uses_names_and_arrows() {
        let (res, labels) = run_sample();
        let text = render(&res, Some(&labels));
        assert!(text.contains("via query"));
        assert!(text.contains(" -> "));
        // The bridge node dave (id 3) is the center-piece here.
        assert!(text.contains("dave"), "text:\n{text}");
        // Without labels, raw ids appear instead.
        let raw = render(&res, None);
        assert!(raw.contains("3"));
    }

    #[test]
    fn empty_extraction_renders_gracefully() {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let g = b.build().unwrap();
        let cfg = CepsConfig::default().budget(2).query_type(QueryType::And);
        // Query 2 isolated: AND scores vanish, nothing extracted.
        let res = CepsEngine::new(&g, cfg)
            .unwrap()
            .run(&[NodeId(0), NodeId(2)])
            .unwrap();
        let text = render(&res, None);
        assert!(text.contains("queries only"));
    }
}
