//! Active-source selection (Sec. 5).
//!
//! For a destination node `pd`, source `q_i` is **active** iff
//! `r(i, pd) ≥ r^(k)(i, pd)` — its individual score at `pd` is among the `k`
//! largest over all sources. Footnote 2 of the paper notes the number of
//! active sources is exactly `k` for every query type (`OR` ⇒ 1,
//! `AND` ⇒ `Q`), so we return exactly the top `k`, breaking score ties by
//! source index for determinism.

/// Indices of the `k` active sources for one destination, given the
/// destination's column of individual scores `r(·, pd)`.
///
/// The result is sorted by descending score (ties by ascending index).
///
/// # Panics
/// Panics unless `1 ≤ k ≤ scores.len()` — the query type resolved `k`
/// against `Q` long before this point.
pub fn active_sources(scores: &[f64], k: usize) -> Vec<usize> {
    assert!(
        k >= 1 && k <= scores.len(),
        "active source count k = {k} out of 1..={}",
        scores.len()
    );
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_unstable_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    order.truncate(k);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn or_takes_single_best() {
        assert_eq!(active_sources(&[0.1, 0.7, 0.3], 1), vec![1]);
    }

    #[test]
    fn and_takes_all_in_score_order() {
        assert_eq!(active_sources(&[0.1, 0.7, 0.3], 3), vec![1, 2, 0]);
    }

    #[test]
    fn soft_and_takes_top_k() {
        assert_eq!(active_sources(&[0.1, 0.7, 0.3, 0.5], 2), vec![1, 3]);
    }

    #[test]
    fn ties_break_by_index() {
        assert_eq!(active_sources(&[0.5, 0.5, 0.5], 2), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of 1..=")]
    fn k_zero_panics() {
        let _ = active_sources(&[0.5], 0);
    }

    #[test]
    #[should_panic(expected = "out of 1..=")]
    fn k_too_large_panics() {
        let _ = active_sources(&[0.5, 0.5], 3);
    }
}
