//! The EXTRACT algorithm (Sec. 5, Table 4).
//!
//! EXTRACT turns the combined closeness scores into an actual subgraph. It
//! repeatedly:
//!
//! 1. picks the most promising **destination node** `pd` — the best-scoring
//!    node not yet in the output (Eq. 11);
//! 2. determines the **active sources** for `pd` (the `k` queries whose
//!    individual score at `pd` is highest — [`active::active_sources`]);
//! 3. for each active source, discovers a **key path** from that source to
//!    `pd` maximizing captured goodness per new node
//!    ([`path::discover_key_path`], Table 3) and merges it into the output.
//!
//! The loop stops once the budget of non-query nodes is spent (or no
//! positive-score destination remains). Because a path is added atomically —
//! splitting one would break the "reasonably connected" requirement — the
//! final round may overshoot the budget by at most `k · len` nodes; callers
//! that need a hard cap can lower `budget` accordingly.

pub mod active;
pub mod path;

pub use path::{PathWorkspace, SharingRule};

use ceps_graph::{CsrGraph, NodeId, Subgraph};
use ceps_rwr::ScoreMatrix;

use self::active::active_sources;
use self::path::{discover_key_path_in_cone, PathQuery, SourceCone};

/// One key path discovered during extraction, for interpretability: the
/// paper stresses that EXTRACT "provides some interpretations on why such
/// nodes are good/close wrt the query set".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPath {
    /// Index (into the query set) of the source this path serves.
    pub source_index: usize,
    /// The destination node `pd` the path reaches.
    pub dest: NodeId,
    /// The full node sequence, source first, `dest` last.
    pub nodes: Vec<NodeId>,
}

/// The result of one EXTRACT run.
#[derive(Debug, Clone)]
pub struct ExtractOutcome {
    /// The output subgraph `H` (query nodes included).
    pub subgraph: Subgraph,
    /// Destination nodes in the order they were chosen (Eq. 11 argmax trace).
    pub destinations: Vec<NodeId>,
    /// Every key path that was merged into `H`.
    pub paths: Vec<KeyPath>,
    /// Destinations for which **no** active source had a downhill path —
    /// they were added alone (disconnected queries, or `OR` queries whose
    /// communities are separate).
    pub orphan_destinations: Vec<NodeId>,
}

/// Inputs to [`extract`].
#[derive(Debug, Clone, Copy)]
pub struct ExtractParams<'a> {
    /// The graph `W`.
    pub graph: &'a CsrGraph,
    /// Individual score matrix `R` (one row per query).
    pub scores: &'a ScoreMatrix,
    /// Combined scores `r(Q, ·)`.
    pub combined: &'a [f64],
    /// Number of active sources per destination (the resolved softAND `k`).
    pub k: usize,
    /// Budget `b`: target number of non-query output nodes.
    pub budget: usize,
    /// Maximum allowable path length (`⌈b/k⌉` in the paper).
    pub max_path_len: usize,
    /// Node-sharing ablation switch (the paper's rule by default).
    pub sharing: SharingRule,
}

/// Runs EXTRACT (Table 4).
///
/// The output always contains every query node; all other content is
/// budget-bounded as described in the module docs.
pub fn extract(params: ExtractParams<'_>) -> ExtractOutcome {
    let ExtractParams {
        graph,
        scores,
        combined,
        k,
        budget,
        max_path_len,
        sharing,
    } = params;
    let n = graph.node_count();
    debug_assert_eq!(combined.len(), n);

    let queries = scores.sources();
    let mut in_h = vec![false; n];
    let mut subgraph = Subgraph::new();
    for &q in queries {
        in_h[q.index()] = true;
        subgraph.insert(q);
    }

    let mut destinations = Vec::new();
    let mut paths = Vec::new();
    let mut orphans = Vec::new();
    let mut added = 0usize; // non-query nodes added so far
    let mut col = vec![0f64; queries.len()];
    let mut ws = PathWorkspace::new();
    // Downhill reachability from a source depends only on its score row —
    // not on the destination or the growing subgraph — so each active
    // source's cone is computed once and shared across every round.
    let mut cones: Vec<Option<SourceCone>> = vec![None; queries.len()];

    while added < budget {
        // Eq. 11: pd = argmax_{j ∉ H} r(Q, j); ties by id for determinism.
        let mut pd: Option<(u32, f64)> = None;
        for j in 0..n as u32 {
            if in_h[j as usize] {
                continue;
            }
            let s = combined[j as usize];
            match pd {
                Some((_, bs)) if bs >= s => {}
                _ => pd = Some((j, s)),
            }
        }
        let Some((pd, pd_score)) = pd else { break };
        if pd_score <= 0.0 {
            // Nothing left with any closeness to the query set: adding
            // zero-score nodes cannot improve g(H).
            break;
        }
        let pd = NodeId(pd);
        destinations.push(pd);

        scores.column_into(pd, &mut col);
        let actives = active_sources(&col, k);

        let mut found_any = false;
        for &i in &actives {
            let cone = cones[i]
                .get_or_insert_with(|| SourceCone::compute(graph, scores.row(i), queries[i]));
            let key_path = discover_key_path_in_cone(
                PathQuery {
                    graph,
                    individual: scores.row(i),
                    combined,
                    in_subgraph: &in_h,
                    source: queries[i],
                    dest: pd,
                    max_new_nodes: max_path_len,
                    sharing,
                },
                cone,
                &mut ws,
            );
            let Some(nodes) = key_path else { continue };
            found_any = true;
            for &v in &nodes {
                if !in_h[v.index()] {
                    in_h[v.index()] = true;
                    subgraph.insert(v);
                    added += 1;
                }
            }
            paths.push(KeyPath {
                source_index: i,
                dest: pd,
                nodes,
            });
        }

        if !found_any {
            // pd is unreachable downhill from every active source (e.g. a
            // separate component under an OR query). Take the node itself —
            // it still carries goodness — and move on.
            in_h[pd.index()] = true;
            subgraph.insert(pd);
            added += 1;
            orphans.push(pd);
        }
        debug_assert!(in_h[pd.index()], "every round must consume pd");
    }

    if ceps_obs::enabled() {
        ceps_obs::counter("extract.rounds", destinations.len() as u64);
        ceps_obs::counter("extract.paths", paths.len() as u64);
        ceps_obs::counter("extract.orphans", orphans.len() as u64);
        ceps_obs::counter("extract.nodes_added", added as u64);
    }

    ExtractOutcome {
        subgraph,
        destinations,
        paths,
        orphan_destinations: orphans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::GraphBuilder;
    use ceps_rwr::ScoreMatrix;

    /// Barbell: triangle {0,1,2} — bridge 2-3-4 — triangle {4,5,6}.
    fn barbell() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for (x, y) in [
            (0, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (4, 6),
        ] {
            b.add_edge(NodeId(x), NodeId(y), 1.0).unwrap();
        }
        b.build().unwrap()
    }

    /// Hand-built scores: queries 0 and 6, bridge nodes score well for both.
    fn barbell_scores() -> (ScoreMatrix, Vec<f64>) {
        let r0 = vec![0.90, 0.30, 0.40, 0.20, 0.10, 0.05, 0.04];
        let r6 = vec![0.04, 0.05, 0.10, 0.20, 0.40, 0.30, 0.90];
        let combined: Vec<f64> = r0.iter().zip(&r6).map(|(a, b)| a * b).collect();
        let m = ScoreMatrix::new(vec![NodeId(0), NodeId(6)], vec![r0, r6]).unwrap();
        (m, combined)
    }

    #[test]
    fn connects_queries_through_the_bridge() {
        let g = barbell();
        let (scores, combined) = barbell_scores();
        let out = extract(ExtractParams {
            graph: &g,
            scores: &scores,
            combined: &combined,
            k: 2,
            budget: 3,
            max_path_len: 4,
            sharing: SharingRule::default(),
        });
        assert!(out.subgraph.contains(NodeId(0)));
        assert!(out.subgraph.contains(NodeId(6)));
        // The bridge 2-3-4 is the only route; it must be in the subgraph and
        // the whole thing connected.
        for v in [2u32, 3, 4] {
            assert!(out.subgraph.contains(NodeId(v)), "missing bridge node {v}");
        }
        assert!(out.subgraph.is_connected(&g));
        assert!(out.orphan_destinations.is_empty());
        assert!(!out.paths.is_empty());
    }

    #[test]
    fn queries_always_present_even_with_tiny_budget() {
        let g = barbell();
        let (scores, combined) = barbell_scores();
        let out = extract(ExtractParams {
            graph: &g,
            scores: &scores,
            combined: &combined,
            k: 2,
            budget: 1,
            max_path_len: 4,
            sharing: SharingRule::default(),
        });
        assert!(out.subgraph.contains(NodeId(0)));
        assert!(out.subgraph.contains(NodeId(6)));
    }

    #[test]
    fn budget_overshoot_is_bounded() {
        let g = barbell();
        let (scores, combined) = barbell_scores();
        for budget in 1..=6 {
            let out = extract(ExtractParams {
                graph: &g,
                scores: &scores,
                combined: &combined,
                k: 2,
                budget,
                max_path_len: 3,
                sharing: SharingRule::default(),
            });
            let non_query = out.subgraph.len() - 2;
            assert!(
                non_query <= budget - 1 + 2 * 3,
                "budget {budget}: {non_query} non-query nodes"
            );
        }
    }

    #[test]
    fn zero_scores_stop_extraction() {
        let g = barbell();
        let r0 = vec![0.9, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let r6 = vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.9];
        let combined: Vec<f64> = r0.iter().zip(&r6).map(|(a, b)| a * b).collect();
        let scores = ScoreMatrix::new(vec![NodeId(0), NodeId(6)], vec![r0, r6]).unwrap();
        let out = extract(ExtractParams {
            graph: &g,
            scores: &scores,
            combined: &combined,
            k: 2,
            budget: 5,
            max_path_len: 4,
            sharing: SharingRule::default(),
        });
        // AND scores are zero everywhere: only the queries survive.
        assert_eq!(out.subgraph.len(), 2);
        assert!(out.destinations.is_empty());
    }

    #[test]
    fn disconnected_queries_or_query_yields_orphans() {
        // Two components; OR query (k = 1) wants good nodes near either.
        let mut b = GraphBuilder::with_nodes(6);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(3), NodeId(4), 1.0).unwrap();
        b.add_edge(NodeId(4), NodeId(5), 1.0).unwrap();
        let g = b.build().unwrap();
        let r0 = vec![0.7, 0.2, 0.1, 0.0, 0.0, 0.0];
        let r5 = vec![0.0, 0.0, 0.0, 0.1, 0.2, 0.7];
        let or: Vec<f64> = r0
            .iter()
            .zip(&r5)
            .map(|(a, b)| 1.0 - (1.0 - a) * (1.0 - b))
            .collect();
        let scores = ScoreMatrix::new(vec![NodeId(0), NodeId(5)], vec![r0, r5]).unwrap();
        let out = extract(ExtractParams {
            graph: &g,
            scores: &scores,
            combined: &or,
            k: 1,
            budget: 4,
            max_path_len: 4,
            sharing: SharingRule::default(),
        });
        // All four intermediates have positive OR scores and are downhill
        // from their own query, so both components grow — the result is
        // (at least) two components, like Fig. 1(a)'s split communities.
        assert!(out.subgraph.component_count(&g) >= 2);
        assert!(out.subgraph.len() >= 4);
    }

    #[test]
    fn paths_record_their_sources_and_destinations() {
        let g = barbell();
        let (scores, combined) = barbell_scores();
        let out = extract(ExtractParams {
            graph: &g,
            scores: &scores,
            combined: &combined,
            k: 2,
            budget: 4,
            max_path_len: 4,
            sharing: SharingRule::default(),
        });
        for p in &out.paths {
            assert_eq!(p.nodes.first(), Some(&scores.sources()[p.source_index]));
            assert_eq!(p.nodes.last(), Some(&p.dest));
            // Every path node made it into H.
            for v in &p.nodes {
                assert!(out.subgraph.contains(*v));
            }
        }
    }
}
