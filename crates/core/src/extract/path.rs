//! Single key path discovery — the dynamic program of Table 3.
//!
//! Given a source query `q_i` and a destination `pd`, find the *downhill*
//! path (monotonically decreasing individual score `r(i, ·)`) from `q_i` to
//! `pd` that maximizes **captured combined goodness per new node**:
//! `C_s(i, pd) / s`, where `s` counts only nodes not already in the output
//! subgraph `H`. Sharing nodes with `H` is free, which is how EXTRACT
//! encourages its paths to overlap and stay within budget (Sec. 5).
//!
//! Mechanics, following the paper:
//!
//! * Only nodes with `r(i, u) ≥ r(i, pd)` participate ("all nodes with
//!   smaller `r(i, j)` than `r(i, pd)` are ignored").
//! * Nodes are processed in descending `r(i, ·)` order; an edge `u → v` is
//!   *downhill* when `u` precedes `v` in that order. We break score ties by
//!   ascending node id so the order is a strict total order — without this,
//!   tied nodes would be mutually unreachable and the DP could miss paths
//!   the paper's prose intends to allow.
//! * `C_s(i, v) = max_{u →ᵢ v} C_{s'}(i, u) + r(Q, v)` with `s' = s` when
//!   `v ∈ H` (it consumes no budget) and `s' = s − 1` otherwise.

use ceps_graph::{CsrGraph, NodeId};

/// How the path-length DP counts nodes that are already in the output
/// subgraph `H` — an ablation switch for the paper's node-sharing design.
///
/// The paper's rule ([`SharingRule::FreeSharedNodes`]) is that a node
/// already in `H` consumes no budget (`s' = s` in Table 3), which makes
/// paths *prefer* to overlap and is the mechanism keeping the subgraph
/// connected within budget. [`SharingRule::CountAllNodes`] disables that
/// (every node on the path costs one unit), so the ablation benchmark can
/// quantify what sharing buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SharingRule {
    /// Nodes already in `H` are free (the paper's Table 3 rule).
    #[default]
    FreeSharedNodes,
    /// Every path node costs one length unit, shared or not.
    CountAllNodes,
}

/// Inputs to one path discovery.
#[derive(Debug, Clone, Copy)]
pub struct PathQuery<'a> {
    /// The big graph `W`.
    pub graph: &'a CsrGraph,
    /// Individual scores `r(i, ·)` of the source being connected.
    pub individual: &'a [f64],
    /// Combined scores `r(Q, ·)` — the goodness being captured.
    pub combined: &'a [f64],
    /// Membership mask of the partially built output subgraph `H`.
    pub in_subgraph: &'a [bool],
    /// The source query node `q_i`.
    pub source: NodeId,
    /// The destination node `pd`.
    pub dest: NodeId,
    /// Maximum allowable path length `len` (new-node count).
    pub max_new_nodes: usize,
    /// Node-sharing ablation switch (the paper's rule by default).
    pub sharing: SharingRule,
}

/// Strict total "downhill" order key: higher score first, ties by id.
#[inline]
fn key(individual: &[f64], v: u32) -> (f64, std::cmp::Reverse<u32>) {
    (individual[v as usize], std::cmp::Reverse(v))
}

/// Reusable scratch buffers for [`discover_key_path_with`].
///
/// Path discovery runs once per (destination, active source) pair — dozens
/// of times per EXTRACT call — and its working set is proportional to the
/// local neighbourhood actually explored, not the graph. The two `n`-sized
/// maps here (`reach` stamps, candidate positions) are the only full-graph
/// state, and this struct amortizes them across calls: stamps are
/// invalidated by bumping `epoch`, positions are un-set on exit via the
/// candidate list, so no per-call `O(n)` clearing happens either.
#[derive(Debug, Default)]
pub struct PathWorkspace {
    /// Candidate stamps: a node is a candidate of the current call iff its
    /// stamp equals the call's epoch.
    reach: Vec<u32>,
    /// Position of candidate `v` in downhill order. Only ever read for
    /// nodes stamped as candidates of the current call, so entries from
    /// earlier calls need no clearing.
    pos_of: Vec<u32>,
    epoch: u32,
    stack: Vec<u32>,
    candidates: Vec<u32>,
    /// Downhill edges between candidates, `(lower, upper)` node ids, as
    /// recorded by the ascending sweep.
    edges: Vec<(u32, u32)>,
    /// CSR over `edges` by destination position: in-edge sources (as
    /// positions) of candidate `p` live at
    /// `edge_src[edge_starts[p]..edge_starts[p + 1]]`.
    edge_starts: Vec<u32>,
    edge_src: Vec<u32>,
    dp: Vec<f64>,
    parent: Vec<(u32, u32)>,
    /// Bit `s` set ⇔ `dp[p * width + s]` holds finite mass; lets the DP
    /// inner loop touch only live `(candidate, s)` slots.
    occupied: Vec<u64>,
}

impl PathWorkspace {
    /// A workspace usable with graphs of any size (buffers grow on demand).
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, n: usize) {
        if self.reach.len() < n {
            self.reach.resize(n, 0);
            self.pos_of.resize(n, 0);
        }
        // One stamp value per call; on wrap-around, re-zero once.
        if self.epoch == u32::MAX {
            self.reach.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.stack.clear();
        self.candidates.clear();
        self.edges.clear();
    }
}

/// The downhill-reachable cone of one source under one score row.
///
/// A node is in the cone when some strictly score-descending walk from the
/// source reaches it. Crucially this is independent of the destination:
/// every intermediate node of a downhill walk to `v` scores above `v`, so
/// a walk that ends inside the `[r(i, pd), r(i, q_i)]` band never leaves
/// it. It is also independent of the partially built subgraph. EXTRACT
/// therefore computes one cone per active source and reuses it across all
/// of that source's destinations.
#[derive(Debug, Clone)]
pub struct SourceCone {
    source: NodeId,
    reach: Vec<bool>,
}

impl SourceCone {
    /// Computes the cone of `source` under the score row `individual`.
    pub fn compute(graph: &CsrGraph, individual: &[f64], source: NodeId) -> Self {
        let n = graph.node_count();
        debug_assert_eq!(individual.len(), n);
        let mut reach = vec![false; n];
        let mut stack = vec![source.0];
        reach[source.index()] = true;
        while let Some(v) = stack.pop() {
            let vk = key(individual, v);
            for (u, _w) in graph.neighbors(NodeId(v)) {
                let u = u.0;
                if !reach[u as usize] && key(individual, u) < vk {
                    reach[u as usize] = true;
                    stack.push(u);
                }
            }
        }
        SourceCone { source, reach }
    }

    /// The source the cone was computed from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Whether `v` is downhill-reachable from the source.
    pub fn contains(&self, v: NodeId) -> bool {
        self.reach[v.index()]
    }
}

/// Discovers the key path, returning its nodes `source..=dest`, or `None`
/// when no downhill path within the length bound exists (including the
/// degenerate case `source == dest`).
///
/// Convenience wrapper over [`discover_key_path_with`] that allocates a
/// fresh [`PathWorkspace`]; loops should reuse one instead.
pub fn discover_key_path(q: PathQuery<'_>) -> Option<Vec<NodeId>> {
    discover_key_path_with(q, &mut PathWorkspace::new())
}

/// [`discover_key_path`] with caller-provided scratch space; computes the
/// source's [`SourceCone`] inline. Callers issuing several discoveries from
/// one source should compute the cone once and use
/// [`discover_key_path_in_cone`].
pub fn discover_key_path_with(q: PathQuery<'_>, ws: &mut PathWorkspace) -> Option<Vec<NodeId>> {
    if q.source == q.dest {
        return None;
    }
    let cone = SourceCone::compute(q.graph, q.individual, q.source);
    discover_key_path_in_cone(q, &cone, ws)
}

/// [`discover_key_path`] against a precomputed [`SourceCone`].
///
/// The DP only ever assigns mass to nodes on some downhill walk from the
/// source, and only nodes with a downhill walk into `pd` can contribute to
/// the answer — so instead of enumerating every node whose score lies in
/// the `[r(i, pd), r(i, q_i)]` band (which on a power-law graph is most of
/// the high-score cone), the candidate set is computed exactly as
/// {cone of the source} ∩ {backward-reachable from `pd`} with one
/// score-ascending traversal from `pd` that never leaves the cone. The
/// surviving candidates keep their relative downhill order, every downhill
/// edge among them is preserved, and the pruned nodes carried no DP mass,
/// so the discovered path is identical to the unpruned computation's.
///
/// # Panics
/// Debug-asserts that `cone` belongs to `q.source` and `q.graph`.
pub fn discover_key_path_in_cone(
    q: PathQuery<'_>,
    cone: &SourceCone,
    ws: &mut PathWorkspace,
) -> Option<Vec<NodeId>> {
    if q.source == q.dest {
        return None;
    }
    let n = q.graph.node_count();
    debug_assert_eq!(q.individual.len(), n);
    debug_assert_eq!(q.combined.len(), n);
    debug_assert_eq!(q.in_subgraph.len(), n);
    debug_assert_eq!(cone.source, q.source);
    debug_assert_eq!(cone.reach.len(), n);

    let dest_key = key(q.individual, q.dest.0);
    let src_key = key(q.individual, q.source.0);
    if src_key < dest_key {
        return None; // the source itself is "below" pd: no downhill path
    }
    if !cone.reach[q.dest.index()] {
        return None; // pd is not downhill-reachable at all
    }

    ws.begin(n);
    let mark = ws.epoch;

    // Ascending sweep from pd inside the cone; what it marks is exactly
    // the candidate set (and it never inspects more than their edges).
    // Every downhill edge between candidates is recorded as it is first
    // seen — from its lower endpoint, which the sweep pops exactly once —
    // so the DP below never has to rescan adjacency lists.
    ws.reach[q.dest.index()] = mark;
    ws.stack.push(q.dest.0);
    ws.candidates.push(q.dest.0);
    while let Some(v) = ws.stack.pop() {
        let vk = key(q.individual, v);
        for (u, _w) in q.graph.neighbors(NodeId(v)) {
            let u = u.0;
            if !cone.reach[u as usize] {
                continue; // outside the cone: never a candidate
            }
            if key(q.individual, u) > vk {
                ws.edges.push((v, u));
                if ws.reach[u as usize] != mark {
                    ws.reach[u as usize] = mark;
                    ws.stack.push(u);
                    ws.candidates.push(u);
                }
            }
        }
    }

    let individual = q.individual;
    ws.candidates.sort_unstable_by(|&a, &b| {
        key(individual, b)
            .partial_cmp(&key(individual, a))
            .expect("finite scores")
    });
    let candidates = &ws.candidates;
    // Positions: candidates[0] == source, last == dest.
    debug_assert_eq!(candidates.first(), Some(&q.source.0));
    debug_assert_eq!(candidates.last(), Some(&q.dest.0));
    let m = candidates.len();
    for (p, &v) in candidates.iter().enumerate() {
        ws.pos_of[v as usize] = p as u32;
    }
    if ceps_obs::enabled() {
        // Candidate-prune effectiveness: sweep size vs. the whole graph.
        ceps_obs::record("extract.candidates", m as f64);
    }

    // Bucket the recorded edges by destination position (counting sort):
    // the DP wants, per candidate, its downhill in-edges as positions.
    let ecount = ws.edges.len();
    ws.edge_starts.clear();
    ws.edge_starts.resize(m + 1, 0);
    for &(v, _) in &ws.edges {
        ws.edge_starts[ws.pos_of[v as usize] as usize + 1] += 1;
    }
    for p in 0..m {
        ws.edge_starts[p + 1] += ws.edge_starts[p];
    }
    ws.edge_src.clear();
    ws.edge_src.resize(ecount, 0);
    {
        // `edge_starts` doubles as the scatter cursor; shifting it back
        // afterwards restores the prefix sums.
        let starts = &mut ws.edge_starts;
        for &(v, u) in &ws.edges {
            let slot = &mut starts[ws.pos_of[v as usize] as usize];
            ws.edge_src[*slot as usize] = ws.pos_of[u as usize];
            *slot += 1;
        }
        for p in (1..=m).rev() {
            starts[p] = starts[p - 1];
        }
        starts[0] = 0;
    }

    let len = q.max_new_nodes;
    let width = len + 1;
    const NEG: f64 = f64::NEG_INFINITY;
    // dp[p * width + s] = best captured goodness of a prefix path ending at
    // candidate p using exactly s new nodes; parent stores (prev_pos, prev_s).
    ws.dp.clear();
    ws.dp.resize(m * width, NEG);
    ws.parent.clear();
    ws.parent.resize(m * width, (u32::MAX, u32::MAX));
    let dp = &mut ws.dp;
    let parent = &mut ws.parent;

    let share_free = q.sharing == SharingRule::FreeSharedNodes;
    let s0 = usize::from(!(share_free && q.in_subgraph[q.source.index()]));
    if s0 > len {
        return None;
    }
    dp[s0] = q.combined[q.source.index()]; // position 0 is the source

    // Occupancy masks make the relaxation sparse: a predecessor with no
    // finite slot is skipped in one load, and only live source slots are
    // visited (in the same ascending-`s` order and with the same strict
    // `>` updates as the dense loop, so the chosen path is unchanged).
    // Widths beyond 64 (budget > 63·k) fall back to dense relaxation.
    let occ = &mut ws.occupied;
    occ.clear();
    occ.resize(m, 0);
    let masked = width <= 64;
    if masked {
        occ[0] = 1u64 << s0;
    }

    for p in 1..m {
        let v = candidates[p];
        let v_free = share_free && q.in_subgraph[v as usize];
        let gain = q.combined[v as usize];
        let s_min = usize::from(!v_free);
        let pb = p * width;
        let mut pocc = 0u64;
        let es = ws.edge_starts[p] as usize;
        let ee = ws.edge_starts[p + 1] as usize;
        for &up in &ws.edge_src[es..ee] {
            let up = up as usize;
            debug_assert!(up < p, "recorded edges must be downhill");
            let ub = up * width;
            if masked {
                // Transfer: slot s_prev feeds s = s_prev (free node) or
                // s_prev + 1 (new node); drop anything past the bound.
                let mut bits = if v_free { occ[up] } else { occ[up] << 1 };
                if width < 64 {
                    bits &= (1u64 << width) - 1;
                }
                while bits != 0 {
                    let s = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let s_prev = if v_free { s } else { s - 1 };
                    let val = dp[ub + s_prev] + gain;
                    if val > dp[pb + s] {
                        dp[pb + s] = val;
                        parent[pb + s] = (up as u32, s_prev as u32);
                        pocc |= 1u64 << s;
                    }
                }
            } else {
                for s in s_min..width {
                    let s_prev = if v_free { s } else { s - 1 };
                    let cand = dp[ub + s_prev];
                    if cand == NEG {
                        continue;
                    }
                    let val = cand + gain;
                    if val > dp[pb + s] {
                        dp[pb + s] = val;
                        parent[pb + s] = (up as u32, s_prev as u32);
                    }
                }
            }
        }
        if masked {
            occ[p] = pocc;
        }
    }

    if ceps_obs::enabled() {
        // Live DP slots after relaxation — the sparse-relaxation win over
        // the dense m × width table.
        let slots: u64 = if masked {
            occ.iter().map(|&bits| u64::from(bits.count_ones())).sum()
        } else {
            dp.iter().filter(|&&v| v != NEG).count() as u64
        };
        ceps_obs::counter("extract.dp_slots", slots);
        ceps_obs::counter("extract.dp_calls", 1);
    }

    // Best s >= 1 by goodness-per-new-node at the destination.
    let dest_pos = m - 1;
    let mut best: Option<(usize, f64)> = None;
    for s in 1..width {
        let v = dp[dest_pos * width + s];
        if v == NEG {
            continue;
        }
        let ratio = v / s as f64;
        match best {
            Some((_, br)) if br >= ratio => {}
            _ => best = Some((s, ratio)),
        }
    }
    let (mut s, _) = best?;

    // Backtrack.
    let mut path = Vec::new();
    let mut p = dest_pos;
    loop {
        path.push(NodeId(candidates[p]));
        if p == 0 {
            break;
        }
        let (pp, ps) = parent[p * width + s];
        debug_assert_ne!(pp, u32::MAX, "broken parent chain");
        p = pp as usize;
        s = ps as usize;
    }
    path.reverse();
    debug_assert_eq!(path.first(), Some(&q.source));
    debug_assert_eq!(path.last(), Some(&q.dest));
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::GraphBuilder;

    /// Diamond: 0 − {1, 2} − 3 where node 1 outranks node 2 in combined
    /// goodness; individual scores strictly decrease 0 > 1 > 2 > 3.
    fn diamond() -> (CsrGraph, Vec<f64>, Vec<f64>) {
        let mut b = GraphBuilder::new();
        for (x, y) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(NodeId(x), NodeId(y), 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let individual = vec![0.9, 0.5, 0.4, 0.2];
        let combined = vec![0.8, 0.6, 0.1, 0.3];
        (g, individual, combined)
    }

    #[test]
    fn picks_the_higher_goodness_branch() {
        let (g, ind, comb) = diamond();
        let in_h = vec![false; 4];
        let path = discover_key_path(PathQuery {
            graph: &g,
            individual: &ind,
            combined: &comb,
            in_subgraph: &in_h,
            source: NodeId(0),
            dest: NodeId(3),
            max_new_nodes: 4,
            sharing: SharingRule::default(),
        })
        .unwrap();
        assert_eq!(path, vec![NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn shared_nodes_are_free_and_attract_the_path() {
        // Make the low-goodness branch node 2 already part of H: the path
        // through it captures 0.8 + 0.1 + 0.3 over s = 2 new nodes
        // (0 and 3) = 0.6 per node, beating branch 1's
        // (0.8 + 0.6 + 0.3) / 3 ≈ 0.567.
        let (g, ind, comb) = diamond();
        let mut in_h = vec![false; 4];
        in_h[2] = true;
        let path = discover_key_path(PathQuery {
            graph: &g,
            individual: &ind,
            combined: &comb,
            in_subgraph: &in_h,
            source: NodeId(0),
            dest: NodeId(3),
            max_new_nodes: 4,
            sharing: SharingRule::default(),
        })
        .unwrap();
        assert_eq!(path, vec![NodeId(0), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn counting_shared_nodes_removes_the_sharing_incentive() {
        // Same setup as above, but under the ablation rule the path through
        // the already-present node 2 costs a full 3 new nodes, so the
        // higher-goodness branch via node 1 wins again.
        let (g, ind, comb) = diamond();
        let mut in_h = vec![false; 4];
        in_h[2] = true;
        let path = discover_key_path(PathQuery {
            graph: &g,
            individual: &ind,
            combined: &comb,
            in_subgraph: &in_h,
            source: NodeId(0),
            dest: NodeId(3),
            max_new_nodes: 4,
            sharing: SharingRule::CountAllNodes,
        })
        .unwrap();
        assert_eq!(path, vec![NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn respects_length_bound() {
        // Path graph 0-1-2-3 requires 4 new nodes; bound of 3 forbids it.
        let mut b = GraphBuilder::new();
        for i in 0..3u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let ind = vec![0.9, 0.6, 0.4, 0.2];
        let comb = vec![0.5; 4];
        let in_h = vec![false; 4];
        let q = PathQuery {
            graph: &g,
            individual: &ind,
            combined: &comb,
            in_subgraph: &in_h,
            source: NodeId(0),
            dest: NodeId(3),
            max_new_nodes: 3,
            sharing: SharingRule::default(),
        };
        assert!(discover_key_path(q).is_none());
        let q4 = PathQuery {
            max_new_nodes: 4,
            ..q
        };
        assert_eq!(
            discover_key_path(q4).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn uphill_destination_is_unreachable() {
        let (g, mut ind, comb) = diamond();
        ind[3] = 0.95; // pd now outranks the source
        let in_h = vec![false; 4];
        let q = PathQuery {
            graph: &g,
            individual: &ind,
            combined: &comb,
            in_subgraph: &in_h,
            source: NodeId(0),
            dest: NodeId(3),
            max_new_nodes: 4,
            sharing: SharingRule::default(),
        };
        assert!(discover_key_path(q).is_none());
    }

    #[test]
    fn disconnected_destination_is_none() {
        let mut b = GraphBuilder::with_nodes(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        let g = b.build().unwrap();
        let ind = vec![0.9, 0.5, 0.3, 0.1];
        let comb = vec![0.5; 4];
        let in_h = vec![false; 4];
        let q = PathQuery {
            graph: &g,
            individual: &ind,
            combined: &comb,
            in_subgraph: &in_h,
            source: NodeId(0),
            dest: NodeId(3),
            max_new_nodes: 4,
            sharing: SharingRule::default(),
        };
        assert!(discover_key_path(q).is_none());
    }

    #[test]
    fn source_equals_dest_is_none() {
        let (g, ind, comb) = diamond();
        let in_h = vec![false; 4];
        let q = PathQuery {
            graph: &g,
            individual: &ind,
            combined: &comb,
            in_subgraph: &in_h,
            source: NodeId(0),
            dest: NodeId(0),
            max_new_nodes: 4,
            sharing: SharingRule::default(),
        };
        assert!(discover_key_path(q).is_none());
    }

    #[test]
    fn tied_scores_still_reachable_via_id_tiebreak() {
        // 0-1-2 path with a tie between nodes 1 and 2: the id tie-break
        // orders 1 before 2, so 0 → 1 → 2 stays downhill.
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        let g = b.build().unwrap();
        let ind = vec![0.9, 0.4, 0.4];
        let comb = vec![0.5; 3];
        let in_h = vec![false; 3];
        let q = PathQuery {
            graph: &g,
            individual: &ind,
            combined: &comb,
            in_subgraph: &in_h,
            source: NodeId(0),
            dest: NodeId(2),
            max_new_nodes: 3,
            sharing: SharingRule::default(),
        };
        assert_eq!(
            discover_key_path(q).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }
}
