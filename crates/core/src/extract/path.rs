//! Single key path discovery — the dynamic program of Table 3.
//!
//! Given a source query `q_i` and a destination `pd`, find the *downhill*
//! path (monotonically decreasing individual score `r(i, ·)`) from `q_i` to
//! `pd` that maximizes **captured combined goodness per new node**:
//! `C_s(i, pd) / s`, where `s` counts only nodes not already in the output
//! subgraph `H`. Sharing nodes with `H` is free, which is how EXTRACT
//! encourages its paths to overlap and stay within budget (Sec. 5).
//!
//! Mechanics, following the paper:
//!
//! * Only nodes with `r(i, u) ≥ r(i, pd)` participate ("all nodes with
//!   smaller `r(i, j)` than `r(i, pd)` are ignored").
//! * Nodes are processed in descending `r(i, ·)` order; an edge `u → v` is
//!   *downhill* when `u` precedes `v` in that order. We break score ties by
//!   ascending node id so the order is a strict total order — without this,
//!   tied nodes would be mutually unreachable and the DP could miss paths
//!   the paper's prose intends to allow.
//! * `C_s(i, v) = max_{u →ᵢ v} C_{s'}(i, u) + r(Q, v)` with `s' = s` when
//!   `v ∈ H` (it consumes no budget) and `s' = s − 1` otherwise.

use ceps_graph::{CsrGraph, NodeId};

/// How the path-length DP counts nodes that are already in the output
/// subgraph `H` — an ablation switch for the paper's node-sharing design.
///
/// The paper's rule ([`SharingRule::FreeSharedNodes`]) is that a node
/// already in `H` consumes no budget (`s' = s` in Table 3), which makes
/// paths *prefer* to overlap and is the mechanism keeping the subgraph
/// connected within budget. [`SharingRule::CountAllNodes`] disables that
/// (every node on the path costs one unit), so the ablation benchmark can
/// quantify what sharing buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SharingRule {
    /// Nodes already in `H` are free (the paper's Table 3 rule).
    #[default]
    FreeSharedNodes,
    /// Every path node costs one length unit, shared or not.
    CountAllNodes,
}

/// Inputs to one path discovery.
#[derive(Debug, Clone, Copy)]
pub struct PathQuery<'a> {
    /// The big graph `W`.
    pub graph: &'a CsrGraph,
    /// Individual scores `r(i, ·)` of the source being connected.
    pub individual: &'a [f64],
    /// Combined scores `r(Q, ·)` — the goodness being captured.
    pub combined: &'a [f64],
    /// Membership mask of the partially built output subgraph `H`.
    pub in_subgraph: &'a [bool],
    /// The source query node `q_i`.
    pub source: NodeId,
    /// The destination node `pd`.
    pub dest: NodeId,
    /// Maximum allowable path length `len` (new-node count).
    pub max_new_nodes: usize,
    /// Node-sharing ablation switch (the paper's rule by default).
    pub sharing: SharingRule,
}

/// Strict total "downhill" order key: higher score first, ties by id.
#[inline]
fn key(individual: &[f64], v: u32) -> (f64, std::cmp::Reverse<u32>) {
    (individual[v as usize], std::cmp::Reverse(v))
}

/// Discovers the key path, returning its nodes `source..=dest`, or `None`
/// when no downhill path within the length bound exists (including the
/// degenerate case `source == dest`).
pub fn discover_key_path(q: PathQuery<'_>) -> Option<Vec<NodeId>> {
    if q.source == q.dest {
        return None;
    }
    let n = q.graph.node_count();
    debug_assert_eq!(q.individual.len(), n);
    debug_assert_eq!(q.combined.len(), n);
    debug_assert_eq!(q.in_subgraph.len(), n);

    let dest_key = key(q.individual, q.dest.0);
    let src_key = key(q.individual, q.source.0);
    if src_key < dest_key {
        return None; // the source itself is "below" pd: no downhill path
    }

    // Candidate set: nodes between the source and pd in the downhill order.
    let mut candidates: Vec<u32> = (0..n as u32)
        .filter(|&v| {
            let kv = key(q.individual, v);
            kv >= dest_key && kv <= src_key
        })
        .collect();
    candidates.sort_unstable_by(|&a, &b| {
        key(q.individual, b)
            .partial_cmp(&key(q.individual, a))
            .expect("finite scores")
    });
    // Positions: candidates[0] == source, last == dest.
    debug_assert_eq!(candidates.first(), Some(&q.source.0));
    debug_assert_eq!(candidates.last(), Some(&q.dest.0));
    let m = candidates.len();
    let mut pos_of = vec![u32::MAX; n];
    for (p, &v) in candidates.iter().enumerate() {
        pos_of[v as usize] = p as u32;
    }

    let len = q.max_new_nodes;
    let width = len + 1;
    const NEG: f64 = f64::NEG_INFINITY;
    // dp[p * width + s] = best captured goodness of a prefix path ending at
    // candidate p using exactly s new nodes; parent stores (prev_pos, prev_s).
    let mut dp = vec![NEG; m * width];
    let mut parent = vec![(u32::MAX, u32::MAX); m * width];

    let share_free = q.sharing == SharingRule::FreeSharedNodes;
    let s0 = usize::from(!(share_free && q.in_subgraph[q.source.index()]));
    if s0 > len {
        return None;
    }
    dp[s0] = q.combined[q.source.index()]; // position 0 is the source

    for p in 1..m {
        let v = candidates[p];
        let v_free = share_free && q.in_subgraph[v as usize];
        let gain = q.combined[v as usize];
        let s_min = usize::from(!v_free);
        for (u, _w) in q.graph.neighbors(NodeId(v)) {
            let up = pos_of[u.index()];
            if up == u32::MAX || up as usize >= p {
                continue; // not a candidate, or not downhill into v
            }
            let ub = up as usize * width;
            for s in s_min..width {
                let s_prev = if v_free { s } else { s - 1 };
                let cand = dp[ub + s_prev];
                if cand == NEG {
                    continue;
                }
                let val = cand + gain;
                if val > dp[p * width + s] {
                    dp[p * width + s] = val;
                    parent[p * width + s] = (up, s_prev as u32);
                }
            }
        }
    }

    // Best s >= 1 by goodness-per-new-node at the destination.
    let dest_pos = m - 1;
    let mut best: Option<(usize, f64)> = None;
    for s in 1..width {
        let v = dp[dest_pos * width + s];
        if v == NEG {
            continue;
        }
        let ratio = v / s as f64;
        match best {
            Some((_, br)) if br >= ratio => {}
            _ => best = Some((s, ratio)),
        }
    }
    let (mut s, _) = best?;

    // Backtrack.
    let mut path = Vec::new();
    let mut p = dest_pos;
    loop {
        path.push(NodeId(candidates[p]));
        if p == 0 {
            break;
        }
        let (pp, ps) = parent[p * width + s];
        debug_assert_ne!(pp, u32::MAX, "broken parent chain");
        p = pp as usize;
        s = ps as usize;
    }
    path.reverse();
    debug_assert_eq!(path.first(), Some(&q.source));
    debug_assert_eq!(path.last(), Some(&q.dest));
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::GraphBuilder;

    /// Diamond: 0 − {1, 2} − 3 where node 1 outranks node 2 in combined
    /// goodness; individual scores strictly decrease 0 > 1 > 2 > 3.
    fn diamond() -> (CsrGraph, Vec<f64>, Vec<f64>) {
        let mut b = GraphBuilder::new();
        for (x, y) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(NodeId(x), NodeId(y), 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let individual = vec![0.9, 0.5, 0.4, 0.2];
        let combined = vec![0.8, 0.6, 0.1, 0.3];
        (g, individual, combined)
    }

    #[test]
    fn picks_the_higher_goodness_branch() {
        let (g, ind, comb) = diamond();
        let in_h = vec![false; 4];
        let path = discover_key_path(PathQuery {
            graph: &g,
            individual: &ind,
            combined: &comb,
            in_subgraph: &in_h,
            source: NodeId(0),
            dest: NodeId(3),
            max_new_nodes: 4,
            sharing: SharingRule::default(),
        })
        .unwrap();
        assert_eq!(path, vec![NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn shared_nodes_are_free_and_attract_the_path() {
        // Make the low-goodness branch node 2 already part of H: the path
        // through it captures 0.8 + 0.1 + 0.3 over s = 2 new nodes
        // (0 and 3) = 0.6 per node, beating branch 1's
        // (0.8 + 0.6 + 0.3) / 3 ≈ 0.567.
        let (g, ind, comb) = diamond();
        let mut in_h = vec![false; 4];
        in_h[2] = true;
        let path = discover_key_path(PathQuery {
            graph: &g,
            individual: &ind,
            combined: &comb,
            in_subgraph: &in_h,
            source: NodeId(0),
            dest: NodeId(3),
            max_new_nodes: 4,
            sharing: SharingRule::default(),
        })
        .unwrap();
        assert_eq!(path, vec![NodeId(0), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn counting_shared_nodes_removes_the_sharing_incentive() {
        // Same setup as above, but under the ablation rule the path through
        // the already-present node 2 costs a full 3 new nodes, so the
        // higher-goodness branch via node 1 wins again.
        let (g, ind, comb) = diamond();
        let mut in_h = vec![false; 4];
        in_h[2] = true;
        let path = discover_key_path(PathQuery {
            graph: &g,
            individual: &ind,
            combined: &comb,
            in_subgraph: &in_h,
            source: NodeId(0),
            dest: NodeId(3),
            max_new_nodes: 4,
            sharing: SharingRule::CountAllNodes,
        })
        .unwrap();
        assert_eq!(path, vec![NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn respects_length_bound() {
        // Path graph 0-1-2-3 requires 4 new nodes; bound of 3 forbids it.
        let mut b = GraphBuilder::new();
        for i in 0..3u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let ind = vec![0.9, 0.6, 0.4, 0.2];
        let comb = vec![0.5; 4];
        let in_h = vec![false; 4];
        let q = PathQuery {
            graph: &g,
            individual: &ind,
            combined: &comb,
            in_subgraph: &in_h,
            source: NodeId(0),
            dest: NodeId(3),
            max_new_nodes: 3,
            sharing: SharingRule::default(),
        };
        assert!(discover_key_path(q).is_none());
        let q4 = PathQuery {
            max_new_nodes: 4,
            ..q
        };
        assert_eq!(
            discover_key_path(q4).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn uphill_destination_is_unreachable() {
        let (g, mut ind, comb) = diamond();
        ind[3] = 0.95; // pd now outranks the source
        let in_h = vec![false; 4];
        let q = PathQuery {
            graph: &g,
            individual: &ind,
            combined: &comb,
            in_subgraph: &in_h,
            source: NodeId(0),
            dest: NodeId(3),
            max_new_nodes: 4,
            sharing: SharingRule::default(),
        };
        assert!(discover_key_path(q).is_none());
    }

    #[test]
    fn disconnected_destination_is_none() {
        let mut b = GraphBuilder::with_nodes(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        let g = b.build().unwrap();
        let ind = vec![0.9, 0.5, 0.3, 0.1];
        let comb = vec![0.5; 4];
        let in_h = vec![false; 4];
        let q = PathQuery {
            graph: &g,
            individual: &ind,
            combined: &comb,
            in_subgraph: &in_h,
            source: NodeId(0),
            dest: NodeId(3),
            max_new_nodes: 4,
            sharing: SharingRule::default(),
        };
        assert!(discover_key_path(q).is_none());
    }

    #[test]
    fn source_equals_dest_is_none() {
        let (g, ind, comb) = diamond();
        let in_h = vec![false; 4];
        let q = PathQuery {
            graph: &g,
            individual: &ind,
            combined: &comb,
            in_subgraph: &in_h,
            source: NodeId(0),
            dest: NodeId(0),
            max_new_nodes: 4,
            sharing: SharingRule::default(),
        };
        assert!(discover_key_path(q).is_none());
    }

    #[test]
    fn tied_scores_still_reachable_via_id_tiebreak() {
        // 0-1-2 path with a tie between nodes 1 and 2: the id tie-break
        // orders 1 before 2, so 0 → 1 → 2 stays downhill.
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        let g = b.build().unwrap();
        let ind = vec![0.9, 0.4, 0.4];
        let comb = vec![0.5; 3];
        let in_h = vec![false; 3];
        let q = PathQuery {
            graph: &g,
            individual: &ind,
            combined: &comb,
            in_subgraph: &in_h,
            source: NodeId(0),
            dest: NodeId(2),
            max_new_nodes: 3,
            sharing: SharingRule::default(),
        };
        assert_eq!(
            discover_key_path(q).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }
}
