//! Fast CePS — the pre-partition speedup (Sec. 6, Table 5).
//!
//! Computing the individual scores means solving a linear system over the
//! whole graph; on the paper's DBLP graph that took 40–60 s per query set.
//! The fix exploits how *skewed* RWR scores are: most of a query's mass
//! stays near it, so:
//!
//! * **Step 0** (offline, once): partition `W` into `p` pieces — here with
//!   [`ceps_partition`], the paper used METIS;
//! * **Step 1** (per query): take the union of the partitions containing
//!   any query node as a smaller graph `nW`;
//! * **Step 2**: run plain CePS on `nW` and translate the result back.
//!
//! Quality loss is measured by `RelRatio` (Eq. 19, [`crate::eval`]); the
//! paper reports ~10% loss for a ~6:1 speedup.

use std::sync::Arc;

use ceps_graph::{CsrGraph, IntoSharedGraph, NodeId, Subgraph};
use ceps_partition::{partition_graph, PartitionConfig, Partitioning};

use crate::pipeline::{CepsEngine, CepsResult};
use crate::{CepsConfig, CepsError, Result};

/// A graph pre-partitioned for fast center-piece queries.
///
/// ```
/// use ceps_core::{CepsConfig, FastCeps};
/// use ceps_graph::{GraphBuilder, NodeId};
///
/// // Two triangles joined by a bridge.
/// let mut b = GraphBuilder::new();
/// for (x, y) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)] {
///     b.add_edge(NodeId(x), NodeId(y), 1.0).unwrap();
/// }
/// let graph = b.build().unwrap();
///
/// // Step 0 (offline): partition once; then answer many query sets.
/// let fast = FastCeps::new(&graph, CepsConfig::default().budget(2), 2, 0).unwrap();
/// let result = fast.run(&[NodeId(0), NodeId(1)]).unwrap();
/// assert!(result.subgraph.contains(NodeId(0)));
/// assert!(result.reduced_node_count <= graph.node_count());
/// ```
#[derive(Debug, Clone)]
pub struct FastCeps {
    graph: Arc<CsrGraph>,
    partitioning: Partitioning,
    config: CepsConfig,
}

/// Result of a Fast CePS run.
#[derive(Debug, Clone)]
pub struct FastCepsResult {
    /// The center-piece subgraph, in **original** graph ids.
    pub subgraph: Subgraph,
    /// Combined scores on the shrunken graph, scattered back to original
    /// ids (nodes outside the kept partitions get 0.0).
    pub combined: Vec<f64>,
    /// How many nodes the shrunken graph `nW` had.
    pub reduced_node_count: usize,
    /// How many edges `nW` had.
    pub reduced_edge_count: usize,
    /// The inner result on `nW` (ids are `nW`-local; `back[new] = old`).
    pub inner: CepsResult,
    /// The `nW`→`W` id mapping.
    pub back: Vec<NodeId>,
}

impl FastCeps {
    /// Step 0: pre-partitions `graph` into `partitions` pieces (the one-time
    /// offline cost of Table 5). Accepts any graph handle
    /// [`IntoSharedGraph`] accepts, like [`CepsEngine::new`].
    ///
    /// # Errors
    /// Partitioner validation errors, or CePS config shape errors.
    pub fn new<G: IntoSharedGraph>(
        graph: G,
        config: CepsConfig,
        partitions: usize,
        seed: u64,
    ) -> Result<Self> {
        let graph = graph.into_shared_graph();
        let pcfg = PartitionConfig {
            seed,
            ..PartitionConfig::with_parts(partitions)
        };
        let partitioning = partition_graph(&graph, &pcfg)?;
        Ok(FastCeps {
            graph,
            partitioning,
            config,
        })
    }

    /// Builds from an existing partitioning (e.g. shared across configs).
    pub fn with_partitioning<G: IntoSharedGraph>(
        graph: G,
        config: CepsConfig,
        partitioning: Partitioning,
    ) -> Self {
        FastCeps {
            graph: graph.into_shared_graph(),
            partitioning,
            config,
        }
    }

    /// The stored partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Steps 1–2: runs CePS on the union of the query-covering partitions.
    ///
    /// # Errors
    /// Query validation errors as in [`CepsEngine::run`].
    pub fn run(&self, queries: &[NodeId]) -> Result<FastCepsResult> {
        if queries.is_empty() {
            return Err(CepsError::NoQueries);
        }
        for &q in queries {
            self.graph.check_node(q)?;
        }

        // Step 1: the covering subgraph, materialized with dense ids.
        let cover = self.partitioning.covering_subgraph(queries);
        let (reduced, back) = cover.into_graph(&self.graph)?;

        // Forward-map the queries into nW ids.
        let mut fwd = vec![u32::MAX; self.graph.node_count()];
        for (new, old) in back.iter().enumerate() {
            fwd[old.index()] = new as u32;
        }
        let reduced_queries: Vec<NodeId> = queries.iter().map(|q| NodeId(fwd[q.index()])).collect();

        // Step 2: plain CePS on nW (the reduced graph moves into the
        // throwaway engine — no clone).
        let reduced_node_count = reduced.node_count();
        let reduced_edge_count = reduced.edge_count();
        let engine = CepsEngine::new(reduced, self.config)?;
        let inner = engine.run(&reduced_queries)?;

        // Translate back to original ids.
        let subgraph = Subgraph::from_nodes(inner.subgraph.nodes().map(|v| back[v.index()]));
        let mut combined = vec![0f64; self.graph.node_count()];
        for (new, &score) in inner.combined.iter().enumerate() {
            combined[back[new].index()] = score;
        }

        Ok(FastCepsResult {
            subgraph,
            combined,
            reduced_node_count,
            reduced_edge_count,
            inner,
            back,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::GraphBuilder;

    /// Four 6-cliques in a weak ring — clean partition structure.
    fn clique_ring() -> CsrGraph {
        let mut b = GraphBuilder::new();
        let size = 6u32;
        for k in 0..4u32 {
            let base = k * size;
            for i in 0..size {
                for j in (i + 1)..size {
                    b.add_edge(NodeId(base + i), NodeId(base + j), 3.0).unwrap();
                }
            }
            let next = ((k + 1) % 4) * size;
            b.add_edge(NodeId(base), NodeId(next + 1), 0.1).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn fast_run_covers_queries_and_shrinks_graph() {
        let g = clique_ring();
        let cfg = CepsConfig::default().budget(4);
        let fast = FastCeps::new(&g, cfg, 4, 7).unwrap();
        // Queries inside a single clique: nW should be about one part.
        let res = fast.run(&[NodeId(0), NodeId(3)]).unwrap();
        assert!(res.reduced_node_count < g.node_count());
        assert!(res.subgraph.contains(NodeId(0)));
        assert!(res.subgraph.contains(NodeId(3)));
        // Scores for nodes outside the cover are zero.
        let cover = fast
            .partitioning()
            .covering_subgraph(&[NodeId(0), NodeId(3)]);
        for v in g.nodes() {
            if !cover.contains(v) {
                assert_eq!(res.combined[v.index()], 0.0);
            }
        }
    }

    #[test]
    fn queries_in_different_parts_union_their_partitions() {
        let g = clique_ring();
        let cfg = CepsConfig::default().budget(4);
        let fast = FastCeps::new(&g, cfg, 4, 7).unwrap();
        let single = fast.run(&[NodeId(0)]).unwrap();
        let double = fast.run(&[NodeId(0), NodeId(13)]).unwrap();
        assert!(double.reduced_node_count >= single.reduced_node_count);
        assert!(double.subgraph.contains(NodeId(13)));
    }

    #[test]
    fn one_partition_equals_plain_ceps() {
        let g = clique_ring();
        let cfg = CepsConfig::default().budget(4);
        let fast = FastCeps::new(&g, cfg, 1, 0).unwrap();
        let fres = fast.run(&[NodeId(1), NodeId(8)]).unwrap();
        let plain = CepsEngine::new(&g, cfg)
            .unwrap()
            .run(&[NodeId(1), NodeId(8)])
            .unwrap();
        let f_nodes: Vec<NodeId> = fres.subgraph.nodes().collect();
        let p_nodes: Vec<NodeId> = plain.subgraph.nodes().collect();
        assert_eq!(f_nodes, p_nodes);
        assert_eq!(fres.reduced_node_count, g.node_count());
    }

    #[test]
    fn rejects_empty_and_bad_queries() {
        let g = clique_ring();
        let fast = FastCeps::new(&g, CepsConfig::default(), 2, 0).unwrap();
        assert!(fast.run(&[]).is_err());
        assert!(fast.run(&[NodeId(999)]).is_err());
    }
}
