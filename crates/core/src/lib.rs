//! # ceps-core
//!
//! **Center-piece subgraph discovery** — a faithful implementation of
//!
//! > Hanghang Tong and Christos Faloutsos.
//! > *Center-Piece Subgraphs: Problem Definition and Fast Solutions.*
//!
//! Given an edge-weighted undirected graph, `Q` query nodes, a query type
//! (`AND`, `OR`, or `K_softAND`) and a budget `b`, CePS finds a small
//! connected subgraph containing all query nodes plus at most ~`b` other
//! nodes that maximizes the total *closeness* of its nodes to the query set
//! (Problem 1 of the paper).
//!
//! ## Pipeline (Table 1)
//!
//! 1. **Individual score calculation** — random walk with restart from each
//!    query node ([`ceps_rwr::RwrEngine`], Eq. 4), over a normalized
//!    adjacency operator (Eqs. 5/10).
//! 2. **Combining individual scores** — the meeting probability
//!    `r(Q, j, k)` that at least `k` of the `Q` particles sit at node `j`
//!    simultaneously ([`ceps_rwr::combine`], Eqs. 6–9).
//! 3. **EXTRACT** — incremental key-path extraction connecting the best
//!    remaining destination node to its active sources ([`extract`],
//!    Tables 3–4).
//!
//! [`CepsEngine`] runs the pipeline; [`fast::FastCeps`] adds the paper's
//! Sec. 6 speedup (pre-partition, run on the query partitions only);
//! [`eval`] implements the paper's evaluation metrics (`NRatio`, `ERatio`,
//! `RelRatio`, Eqs. 13/14/19).
//!
//! ## Quick example
//!
//! ```
//! use ceps_core::{CepsConfig, CepsEngine, QueryType};
//! use ceps_graph::{GraphBuilder, NodeId};
//!
//! // A small collaboration graph: two triangles sharing a bridge node 2.
//! let mut b = GraphBuilder::new();
//! for (x, y) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
//!     b.add_edge(NodeId(x), NodeId(y), 1.0).unwrap();
//! }
//! let graph = b.build().unwrap();
//!
//! let config = CepsConfig::default().budget(2).query_type(QueryType::And);
//! let engine = CepsEngine::new(&graph, config).unwrap();
//! let result = engine.run(&[NodeId(0), NodeId(4)]).unwrap();
//!
//! // The bridge node 2 is the center-piece between the two queries.
//! assert!(result.subgraph.contains(NodeId(2)));
//! assert!(result.subgraph.is_connected(&graph));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auto_k;
mod config;
mod error;
pub mod eval;
pub mod explain;
pub mod extract;
pub mod fast;
mod pipeline;
mod query;
pub mod serve;
pub mod telemetry;

pub use auto_k::{infer_soft_and_k, KInference};
pub use config::{CepsConfig, CombineMethod, ScoreMethod};
pub use error::CepsError;
pub use extract::{ExtractOutcome, KeyPath, SharingRule};
pub use fast::{FastCeps, FastCepsResult};
pub use pipeline::{CepsEngine, CepsResult, StageTimes};
pub use query::QueryType;
pub use serve::{
    CepsService, CepsServiceBuilder, ReplyMember, ReplyPath, RequestMetrics, ServeOutcome,
    ServeReply, ServeRequest,
};
pub use telemetry::{RequestTrace, RequestTracer, SampleKind};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CepsError>;
