//! The end-to-end CePS pipeline (Table 1).

use std::fmt;
use std::sync::Arc;

use ceps_graph::{
    normalize::Normalization, CsrGraph, GraphError, IntoSharedGraph, NodeId, Subgraph, Transition,
    TransitionOptions,
};
use ceps_pool::PoolHandle;
use ceps_rwr::{combine, ScoreBackend, ScoreMatrix};

use crate::config::CombineMethod;
use crate::extract::{extract, ExtractOutcome, ExtractParams, KeyPath, SharingRule};
use crate::{CepsConfig, CepsError, Result};

/// A ready-to-query CePS engine over one graph.
///
/// Construction performs the normalization (Eqs. 5/10) and score-backend
/// setup once; every [`run`](CepsEngine::run) reuses them. This mirrors how
/// the paper's system is "operational": the graph is loaded and normalized
/// up front, queries arrive online.
///
/// The engine **owns** its graph and operator through `Arc`s, so it is
/// `Send + Sync + 'static`: clone it (cheap — three `Arc` bumps and a
/// `Copy` config) into worker threads, or wrap it in a
/// [`crate::serve::CepsService`] for cached concurrent serving.
/// Construction accepts anything [`IntoSharedGraph`] accepts: an
/// `Arc<CsrGraph>`, `&Arc<CsrGraph>`, an owned `CsrGraph`, or (cloning)
/// a `&CsrGraph`.
#[derive(Clone)]
pub struct CepsEngine {
    graph: Arc<CsrGraph>,
    transition: Arc<Transition>,
    backend: Arc<dyn ScoreBackend>,
    config: CepsConfig,
    pool: PoolHandle,
}

impl fmt::Debug for CepsEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CepsEngine")
            .field("nodes", &self.graph.node_count())
            .field("edges", &self.graph.edge_count())
            .field("backend", &self.backend.method_name())
            .field("config", &self.config)
            .finish()
    }
}

/// Everything a CePS run produces.
#[derive(Debug, Clone)]
pub struct CepsResult {
    /// The center-piece subgraph `H` (query nodes always included).
    pub subgraph: Subgraph,
    /// Individual scores `R` (one row per query) — kept because the
    /// evaluation metrics and the `K_softAND` case studies re-read them.
    pub scores: ScoreMatrix,
    /// Combined scores `r(Q, ·)` under the configured query type.
    pub combined: Vec<f64>,
    /// The resolved number of active sources `k`.
    pub k: usize,
    /// Destination-node trace (Eq. 11 argmax order).
    pub destinations: Vec<NodeId>,
    /// The key paths that built `H`.
    pub paths: Vec<KeyPath>,
    /// Destinations added without a connecting path (see
    /// [`crate::ExtractOutcome::orphan_destinations`]).
    pub orphan_destinations: Vec<NodeId>,
}

/// Wall-clock breakdown of one pipeline run across the Table 1 stages.
///
/// Produced by [`CepsEngine::run_timed`] and
/// [`crate::serve::CepsService::run_timed`]; always measured (the numbers
/// do not require an installed `ceps-obs` recorder) so serving harnesses
/// can report stage-level latency without turning profiling on.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimes {
    /// Step 1 — individual RWR scores (cache assembly included when the
    /// run came through a [`crate::serve::CepsService`]).
    pub scores_ms: f64,
    /// Step 2 — score combination (Eqs. 6–9 / Eq. 21).
    pub combine_ms: f64,
    /// Step 3 — EXTRACT (Tables 3–4).
    pub extract_ms: f64,
}

impl StageTimes {
    /// Sum of the stage times, milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.scores_ms + self.combine_ms + self.extract_ms
    }

    /// Element-wise accumulation (used when summing over a stream).
    pub fn accumulate(&mut self, other: &StageTimes) {
        self.scores_ms += other.scores_ms;
        self.combine_ms += other.combine_ms;
        self.extract_ms += other.extract_ms;
    }

    /// Element-wise mean over `n` requests (zero requests → all zeros).
    pub fn mean_over(&self, n: usize) -> StageTimes {
        if n == 0 {
            return StageTimes::default();
        }
        let d = n as f64;
        StageTimes {
            scores_ms: self.scores_ms / d,
            combine_ms: self.combine_ms / d,
            extract_ms: self.extract_ms / d,
        }
    }
}

impl CepsResult {
    /// Total extracted goodness `CF(H) = Σ_{j ∈ H} r(Q, j)` (Sec. 5,
    /// "EXTRACTED GOODNESS").
    pub fn extracted_goodness(&self) -> f64 {
        self.subgraph
            .nodes()
            .map(|v| self.combined[v.index()])
            .sum()
    }

    /// The `b` highest combined-score nodes **ignoring** connectivity — the
    /// unconstrained maximizer of Eq. 2 the paper contrasts EXTRACT with
    /// ("the resulting subgraph H might be a collection of isolated
    /// nodes").
    pub fn top_scoring_nodes(&self, b: usize) -> Vec<NodeId> {
        let mut order: Vec<u32> = (0..self.combined.len() as u32).collect();
        order.sort_unstable_by(|&x, &y| {
            self.combined[y as usize]
                .total_cmp(&self.combined[x as usize])
                .then(x.cmp(&y))
        });
        order.into_iter().take(b).map(NodeId).collect()
    }
}

impl CepsEngine {
    /// Builds an engine: validates the config shape, normalizes the
    /// adjacency matrix and constructs the configured score backend.
    ///
    /// # Errors
    /// [`CepsError::BadAlpha`], RWR validation errors, or backend
    /// construction errors (dense-size refusals, partitioner failures).
    /// (Query-dependent checks happen in [`run`](CepsEngine::run).)
    pub fn new<G: IntoSharedGraph>(graph: G, config: CepsConfig) -> Result<Self> {
        let graph = graph.into_shared_graph();
        if graph.node_count() == 0 {
            return Err(CepsError::Graph(GraphError::EmptyGraph));
        }
        if !(config.alpha.is_finite() && config.alpha >= 0.0) {
            return Err(CepsError::BadAlpha {
                alpha: config.alpha,
            });
        }
        config.rwr.validate()?;
        let normalization = if config.manifold_ranking {
            Normalization::Symmetric
        } else {
            Normalization::DegreePenalized {
                alpha: config.alpha,
            }
        };
        let transition = Arc::new(Transition::with_options(
            &graph,
            normalization,
            TransitionOptions {
                precision: config.precision,
                ..TransitionOptions::default()
            },
        ));
        // One lazy pool handle per engine: clones (and the services built
        // on them) share the same workers, which only spawn on the first
        // solve large enough to parallelize.
        let pool = PoolHandle::new(config.rwr.threads);
        let backend =
            config
                .score_method
                .build_backend(&graph, &transition, config.rwr, pool.clone())?;
        Ok(CepsEngine {
            graph,
            transition,
            backend,
            config,
            pool,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &CepsConfig {
        &self.config
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The shared graph handle (clone to co-own).
    pub fn shared_graph(&self) -> &Arc<CsrGraph> {
        &self.graph
    }

    /// The normalized operator (needed by edge-score evaluation).
    pub fn transition(&self) -> &Transition {
        &self.transition
    }

    /// The shared operator handle (clone to co-own).
    pub fn shared_transition(&self) -> &Arc<Transition> {
        &self.transition
    }

    /// The Step 1 score backend the engine dispatches to.
    pub fn backend(&self) -> &Arc<dyn ScoreBackend> {
        &self.backend
    }

    /// The engine-wide worker-pool handle (shared with the backend; lazy —
    /// no threads until a solve clears the parallel-work threshold).
    pub fn pool(&self) -> &PoolHandle {
        &self.pool
    }

    /// Runs the full pipeline (Table 1) for one query set.
    ///
    /// # Errors
    /// Validation errors for the query set ([`CepsError::NoQueries`],
    /// [`CepsError::DuplicateQuery`], [`CepsError::BadSoftAndK`], bad node
    /// ids) and propagated solver errors.
    pub fn run(&self, queries: &[NodeId]) -> Result<CepsResult> {
        Ok(self.run_timed(queries)?.0)
    }

    /// Like [`run`](CepsEngine::run), also returning the per-stage wall
    /// times. Each stage runs under a `ceps-obs` span
    /// (`stage.individual_scores` / `stage.combine` / `stage.extract`), so
    /// an installed recorder sees the same breakdown hierarchically.
    ///
    /// # Errors
    /// As in [`run`](CepsEngine::run).
    pub fn run_timed(&self, queries: &[NodeId]) -> Result<(CepsResult, StageTimes)> {
        self.validate_queries(queries)?;
        self.config.validate(queries.len())?;

        // Step 1: individual score calculation (Eq. 4).
        let (scores, t_scores) =
            ceps_obs::timed("stage.individual_scores", || self.solve_scores(queries));
        let (result, mut times) = self.run_with_scores_timed(queries, scores?)?;
        times.scores_ms = t_scores.as_secs_f64() * 1e3;
        Ok((result, times))
    }

    /// Steps 2–3 over an already-solved score matrix `R`.
    ///
    /// This is the entry point for callers that obtained `R` outside the
    /// engine — notably [`crate::serve::CepsService`], which assembles it
    /// from its row cache. The matrix must have one row per query, in query
    /// order, over this engine's graph.
    ///
    /// # Errors
    /// Query/config validation errors as in [`run`](CepsEngine::run), and
    /// [`CepsError::ScoreShapeMismatch`] when `scores` does not match
    /// `queries` and the graph.
    pub fn run_with_scores(&self, queries: &[NodeId], scores: ScoreMatrix) -> Result<CepsResult> {
        Ok(self.run_with_scores_timed(queries, scores)?.0)
    }

    /// Like [`run_with_scores`](CepsEngine::run_with_scores), also
    /// returning the per-stage wall times (`scores_ms` stays 0 — Step 1
    /// happened outside this call).
    ///
    /// # Errors
    /// As in [`run_with_scores`](CepsEngine::run_with_scores).
    pub fn run_with_scores_timed(
        &self,
        queries: &[NodeId],
        scores: ScoreMatrix,
    ) -> Result<(CepsResult, StageTimes)> {
        self.validate_queries(queries)?;
        self.config.validate(queries.len())?;
        if scores.query_count() != queries.len() || scores.node_count() != self.graph.node_count() {
            return Err(CepsError::ScoreShapeMismatch {
                rows: scores.query_count(),
                cols: scores.node_count(),
                queries: queries.len(),
                nodes: self.graph.node_count(),
            });
        }

        // Step 2: combining individual scores (Eqs. 6-9 or Eq. 21).
        let k = self.config.query.soft_and_k(queries.len())?;
        let (combined, t_combine) = ceps_obs::timed("stage.combine", || self.combine(&scores, k));
        let combined = combined?;

        // Step 3: EXTRACT (Tables 3-4).
        let len = self.config.effective_path_len(k);
        let (outcome, t_extract) = ceps_obs::timed("stage.extract", || {
            extract(ExtractParams {
                graph: &self.graph,
                scores: &scores,
                combined: &combined,
                k,
                budget: self.config.budget,
                max_path_len: len,
                sharing: SharingRule::FreeSharedNodes,
            })
        });
        let ExtractOutcome {
            subgraph,
            destinations,
            paths,
            orphan_destinations,
        } = outcome;

        let times = StageTimes {
            scores_ms: 0.0,
            combine_ms: t_combine.as_secs_f64() * 1e3,
            extract_ms: t_extract.as_secs_f64() * 1e3,
        };
        Ok((
            CepsResult {
                subgraph,
                scores,
                combined,
                k,
                destinations,
                paths,
                orphan_destinations,
            },
            times,
        ))
    }

    /// Step 1 only: the individual score matrix `R` for a query set,
    /// without combination or extraction. Used by the automatic-`k`
    /// inference, which tries many combinations over one solve.
    ///
    /// # Errors
    /// Query validation and solver errors as in [`run`](CepsEngine::run).
    pub fn individual_scores(&self, queries: &[NodeId]) -> Result<ScoreMatrix> {
        self.validate_queries(queries)?;
        self.solve_scores(queries)
    }

    /// Dispatches Step 1 to the configured backend.
    fn solve_scores(&self, queries: &[NodeId]) -> Result<ScoreMatrix> {
        Ok(self.backend.scores(queries)?)
    }

    /// Steps 1–2 only: the combined score vector without extraction.
    /// The evaluation metrics (Eq. 13) and Fast CePS's `RelRatio`
    /// comparison need scores computed on the *whole* graph even when the
    /// subgraph came from a partition.
    ///
    /// # Errors
    /// As for [`run`](CepsEngine::run).
    pub fn combined_scores(&self, queries: &[NodeId]) -> Result<(ScoreMatrix, Vec<f64>)> {
        self.validate_queries(queries)?;
        self.config.validate(queries.len())?;
        let scores = self.solve_scores(queries)?;
        let k = self.config.query.soft_and_k(queries.len())?;
        let combined = self.combine(&scores, k)?;
        Ok((scores, combined))
    }

    /// Dispatches Step 2 to the configured combinator.
    fn combine(&self, scores: &ScoreMatrix, k: usize) -> Result<Vec<f64>> {
        match self.config.combine_method {
            CombineMethod::MeetingProbability => Ok(combine::combine_scores(scores, k)?),
            CombineMethod::OrderStatistic => {
                Ok(ceps_rwr::variants::combine_order_statistic(scores, k)?)
            }
        }
    }

    pub(crate) fn validate_queries(&self, queries: &[NodeId]) -> Result<()> {
        if queries.is_empty() {
            return Err(CepsError::NoQueries);
        }
        for (i, &q) in queries.iter().enumerate() {
            self.graph.check_node(q)?;
            if queries[..i].contains(&q) {
                return Err(CepsError::DuplicateQuery { node: q });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryType;
    use ceps_graph::GraphBuilder;

    /// Two 4-cliques bridged through node 8 (the planted center-piece).
    fn bridged_cliques() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(NodeId(base + i), NodeId(base + j), 2.0).unwrap();
                }
            }
        }
        b.add_edge(NodeId(0), NodeId(8), 3.0).unwrap();
        b.add_edge(NodeId(4), NodeId(8), 3.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn finds_the_planted_center_piece() {
        let g = bridged_cliques();
        let cfg = CepsConfig::default().budget(3);
        let engine = CepsEngine::new(&g, cfg).unwrap();
        let res = engine.run(&[NodeId(1), NodeId(5)]).unwrap();
        assert!(
            res.subgraph.contains(NodeId(8)),
            "center-piece missed: {:?}",
            res.subgraph
        );
        assert!(res.subgraph.is_connected(&g));
        assert!(res.extracted_goodness() > 0.0);
    }

    #[test]
    fn or_query_spreads_and_query_concentrates() {
        let g = bridged_cliques();
        let and_cfg = CepsConfig::default().budget(4).query_type(QueryType::And);
        let or_cfg = CepsConfig::default().budget(4).query_type(QueryType::Or);
        let queries = [NodeId(1), NodeId(5)];
        let and_res = CepsEngine::new(&g, and_cfg).unwrap().run(&queries).unwrap();
        let or_res = CepsEngine::new(&g, or_cfg).unwrap().run(&queries).unwrap();
        assert_eq!(and_res.k, 2);
        assert_eq!(or_res.k, 1);
        // AND must include the unique bridge; OR is free to stay inside the
        // cliques where single-query scores are highest.
        assert!(and_res.subgraph.contains(NodeId(8)));
        // OR scores dominate AND scores pointwise.
        for j in 0..g.node_count() {
            assert!(or_res.combined[j] >= and_res.combined[j] - 1e-12);
        }
    }

    #[test]
    fn f32_precision_tracks_f64_and_finds_the_same_subgraph() {
        let g = bridged_cliques();
        let queries = [NodeId(1), NodeId(5)];
        let f64_res = CepsEngine::new(&g, CepsConfig::default().budget(3))
            .unwrap()
            .run(&queries)
            .unwrap();
        let cfg = CepsConfig::default()
            .budget(3)
            .precision(ceps_graph::Precision::F32);
        let engine = CepsEngine::new(&g, cfg).unwrap();
        assert_eq!(engine.transition().precision(), ceps_graph::Precision::F32);
        let f32_res = engine.run(&queries).unwrap();
        // Coefficient rounding is ~1e-7 relative; after 50 damped
        // iterations the combined scores stay well inside 1e-5.
        for j in 0..g.node_count() {
            assert!(
                (f64_res.combined[j] - f32_res.combined[j]).abs() < 1e-5,
                "node {j}: {} vs {}",
                f64_res.combined[j],
                f32_res.combined[j]
            );
        }
        let sorted = |s: &Subgraph| {
            let mut v: Vec<_> = s.nodes().collect();
            v.sort();
            v
        };
        assert_eq!(sorted(&f64_res.subgraph), sorted(&f32_res.subgraph));
    }

    #[test]
    fn validates_query_sets() {
        let g = bridged_cliques();
        let engine = CepsEngine::new(&g, CepsConfig::default()).unwrap();
        assert!(matches!(engine.run(&[]), Err(CepsError::NoQueries)));
        assert!(matches!(
            engine.run(&[NodeId(0), NodeId(0)]),
            Err(CepsError::DuplicateQuery { .. })
        ));
        assert!(engine.run(&[NodeId(99)]).is_err());
    }

    #[test]
    fn single_query_works_like_personalized_ranking() {
        let g = bridged_cliques();
        let engine = CepsEngine::new(&g, CepsConfig::default().budget(3)).unwrap();
        let res = engine.run(&[NodeId(0)]).unwrap();
        assert!(res.subgraph.contains(NodeId(0)));
        assert!(res.subgraph.len() <= 1 + 3 + 20); // queries + budget + slack
        assert!(res.subgraph.is_connected(&g));
    }

    #[test]
    fn top_scoring_nodes_ranks_by_combined() {
        let g = bridged_cliques();
        let engine = CepsEngine::new(&g, CepsConfig::default().budget(2)).unwrap();
        let res = engine.run(&[NodeId(1), NodeId(5)]).unwrap();
        let top = res.top_scoring_nodes(3);
        assert_eq!(top.len(), 3);
        for w in top.windows(2) {
            assert!(res.combined[w[0].index()] >= res.combined[w[1].index()]);
        }
    }

    #[test]
    fn top_scoring_nodes_breaks_ties_by_ascending_id() {
        // Hand-built result with deliberate score ties: equal scores must
        // order by ascending node id, regardless of b's cut point.
        let res = CepsResult {
            subgraph: Subgraph::new(),
            scores: ScoreMatrix::zeros(vec![NodeId(0)], 6).unwrap(),
            combined: vec![0.5, 0.9, 0.5, 0.9, 0.1, 0.5],
            k: 1,
            destinations: vec![],
            paths: vec![],
            orphan_destinations: vec![],
        };
        let ids = |b| {
            res.top_scoring_nodes(b)
                .iter()
                .map(|v| v.0)
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(6), vec![1, 3, 0, 2, 5, 4]);
        // A cut mid-tie keeps the lowest ids of the tied band.
        assert_eq!(ids(3), vec![1, 3, 0]);
        assert_eq!(ids(4), vec![1, 3, 0, 2]);
    }

    #[test]
    fn combined_scores_match_run() {
        let g = bridged_cliques();
        let engine = CepsEngine::new(&g, CepsConfig::default()).unwrap();
        let queries = [NodeId(1), NodeId(5)];
        let (_, stand_alone) = engine.combined_scores(&queries).unwrap();
        let res = engine.run(&queries).unwrap();
        assert_eq!(stand_alone, res.combined);
    }

    #[test]
    fn soft_and_interpolates_between_or_and_and() {
        let g = bridged_cliques();
        let queries = [NodeId(1), NodeId(5), NodeId(2)];
        let mk = |qt| {
            CepsEngine::new(&g, CepsConfig::default().budget(3).query_type(qt))
                .unwrap()
                .run(&queries)
                .unwrap()
        };
        let or = mk(QueryType::Or);
        let soft = mk(QueryType::SoftAnd(2));
        let and = mk(QueryType::And);
        for j in 0..g.node_count() {
            assert!(soft.combined[j] <= or.combined[j] + 1e-12);
            assert!(soft.combined[j] + 1e-12 >= and.combined[j]);
        }
    }
}
