//! Query types: `AND`, `OR` and the general `K_softAND` (Sec. 4.2).

use crate::{CepsError, Result};

/// How individual closeness scores combine across the query set.
///
/// The paper's key observation is that all three are one family
/// (Sec. 4.2): `AND` is `Q_softAND` and `OR` is `1_softAND`. The enum keeps
/// the user-facing names; [`QueryType::soft_and_k`] resolves each to its
/// effective `k` for a given query count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryType {
    /// Nodes must be close to **all** `Q` queries (Eq. 6).
    And,
    /// Nodes must be close to **at least one** query (Eq. 7).
    Or,
    /// Nodes must be close to **at least `k`** of the queries (Eqs. 8–9).
    SoftAnd(
        /// The softAND coefficient `k`.
        usize,
    ),
}

impl QueryType {
    /// The effective `K_softAND` coefficient for `query_count` queries.
    ///
    /// This is also the number of *active sources* per destination node in
    /// EXTRACT (Sec. 5, footnote 2: "the number of active sources is
    /// actually k for all query types").
    ///
    /// # Errors
    /// [`CepsError::NoQueries`] for an empty query set;
    /// [`CepsError::BadSoftAndK`] if a `SoftAnd(k)` is outside `1..=Q`.
    pub fn soft_and_k(self, query_count: usize) -> Result<usize> {
        if query_count == 0 {
            return Err(CepsError::NoQueries);
        }
        match self {
            QueryType::And => Ok(query_count),
            QueryType::Or => Ok(1),
            QueryType::SoftAnd(k) => {
                if k == 0 || k > query_count {
                    Err(CepsError::BadSoftAndK { k, query_count })
                } else {
                    Ok(k)
                }
            }
        }
    }
}

impl std::fmt::Display for QueryType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryType::And => write!(f, "AND"),
            QueryType::Or => write!(f, "OR"),
            QueryType::SoftAnd(k) => write!(f, "{k}_softAND"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_is_q_soft_and() {
        assert_eq!(QueryType::And.soft_and_k(4).unwrap(), 4);
        assert_eq!(QueryType::And.soft_and_k(1).unwrap(), 1);
    }

    #[test]
    fn or_is_one_soft_and() {
        assert_eq!(QueryType::Or.soft_and_k(4).unwrap(), 1);
    }

    #[test]
    fn soft_and_validates_k() {
        assert_eq!(QueryType::SoftAnd(2).soft_and_k(4).unwrap(), 2);
        assert!(matches!(
            QueryType::SoftAnd(0).soft_and_k(4),
            Err(CepsError::BadSoftAndK { .. })
        ));
        assert!(matches!(
            QueryType::SoftAnd(5).soft_and_k(4),
            Err(CepsError::BadSoftAndK { .. })
        ));
    }

    #[test]
    fn empty_query_set_rejected() {
        assert!(matches!(
            QueryType::And.soft_and_k(0),
            Err(CepsError::NoQueries)
        ));
    }

    #[test]
    fn display_matches_paper_vocabulary() {
        assert_eq!(QueryType::And.to_string(), "AND");
        assert_eq!(QueryType::Or.to_string(), "OR");
        assert_eq!(QueryType::SoftAnd(2).to_string(), "2_softAND");
    }
}
