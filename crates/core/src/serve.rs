//! Concurrent query serving with a shared RWR row cache.
//!
//! The paper's system is "operational": the graph is normalized once and
//! query sets arrive online, with the per-query RWR solve as the dominant
//! cost (Sec. 6 exists only to attack it). Real workloads repeat query
//! nodes constantly — repository queries are community hubs — and an RWR
//! row `r(i, ·)` depends only on the operator and solver settings, never on
//! the co-queries. [`CepsService`] exploits that: it wraps an owned
//! [`CepsEngine`] plus a shared [`RwrRowCache`], assembles Step 1's score
//! matrix from cache hits plus **one batched backend solve over only the
//! missing rows**, and hands the matrix to
//! [`CepsEngine::run_with_scores`] for Steps 2–3.
//!
//! Cloning a service is three `Arc` bumps, so one service fans out across
//! `crossbeam::thread::scope` workers; [`CepsService::serve_stream`] is
//! that harness, returning throughput, latency percentiles and cache
//! statistics in a [`ServeOutcome`].
//!
//! ## Cache keying and invalidation
//!
//! Rows are keyed by query [`ceps_graph::NodeId`] **alone**; every other
//! key component — transition operator, restart `c`, iteration budget,
//! tolerance, score variant — is pinned by the engine the service wraps.
//! The cache is created inside the service and never outlives its engine,
//! so there is nothing to invalidate: rebuild the engine (new graph, new
//! config) → you get a new, empty cache. Correctness rests on the
//! batch-independence contract of [`ceps_rwr::ScoreBackend`]: a cached row
//! is bitwise-identical to the same row solved cold in any batch.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ceps_graph::{IntoSharedGraph, NodeId, Precision};
use ceps_rwr::{
    scores_with_cache, scores_with_cache_counted, CacheStats, RwrRowCache, ScoreMatrix,
};

use crate::pipeline::{CepsEngine, CepsResult, StageTimes};
use crate::telemetry::{RequestTrace, RequestTracer};
use crate::{CepsConfig, Result};

/// Default row-cache byte budget used by [`CepsServiceBuilder`] (64 MiB).
pub const DEFAULT_CACHE_BYTES: usize = 64 << 20;

/// One CePS query as every serving surface sees it — the in-process
/// [`CepsService::serve`] call, the `ceps-wire/v1` `Query` frame in
/// `ceps-net`, and stream replay all share this exact struct (serde on the
/// same fields), so the wire layer adds no second request vocabulary.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ServeRequest {
    /// The query nodes `Q` (Problem 1 of the paper).
    pub queries: Vec<NodeId>,
}

impl ServeRequest {
    /// Builds a request from any query-node collection.
    pub fn new(queries: impl Into<Vec<NodeId>>) -> Self {
        ServeRequest {
            queries: queries.into(),
        }
    }
}

/// One subgraph member of a [`ServeReply`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReplyMember {
    /// The node.
    pub id: NodeId,
    /// Its combined score `r(Q, id)`.
    pub score: f64,
    /// Whether the node was part of the query set.
    pub is_query: bool,
}

/// One key path of a [`ServeReply`], mirroring [`crate::KeyPath`] in
/// serializable form.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ReplyPath {
    /// Index (into the query set) of the source this path serves.
    pub source_index: usize,
    /// The full node sequence, source first, destination last.
    pub nodes: Vec<NodeId>,
}

/// The answer to one [`ServeRequest`] — the serializable projection of a
/// [`CepsResult`] that both the in-process path and the wire protocol
/// return. Construction is deterministic (members sorted by descending
/// score, ties by ascending id), so two services over the same engine
/// produce byte-identical replies for the same request.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServeReply {
    /// The resolved number of active sources `k`.
    pub k: usize,
    /// Subgraph members with combined scores, descending-score order.
    pub members: Vec<ReplyMember>,
    /// The key paths that built the subgraph, extraction order.
    pub paths: Vec<ReplyPath>,
}

impl ServeReply {
    /// Projects a pipeline result onto the reply vocabulary.
    pub fn from_result(result: &CepsResult, queries: &[NodeId]) -> Self {
        let mut members: Vec<ReplyMember> = result
            .subgraph
            .nodes()
            .map(|v| ReplyMember {
                id: v,
                score: result.combined[v.index()],
                is_query: queries.contains(&v),
            })
            .collect();
        members.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.0.cmp(&b.id.0)));
        let paths = result
            .paths
            .iter()
            .map(|p| ReplyPath {
                source_index: p.source_index,
                nodes: p.nodes.clone(),
            })
            .collect();
        ServeReply {
            k: result.k,
            members,
            paths,
        }
    }
}

/// Configures and builds a [`CepsService`] — the one construction surface
/// (the old `new`/`with_shards`/`uncached` trio delegates here and is
/// deprecated).
///
/// ```
/// use ceps_core::{CepsConfig, CepsEngine, CepsServiceBuilder};
/// use ceps_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
/// b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
/// let engine = CepsEngine::new(b.build().unwrap(), CepsConfig::default()).unwrap();
/// let service = CepsServiceBuilder::new()
///     .cache_bytes(16 << 20)
///     .shards(4)
///     .workers(2)
///     .build(engine);
/// assert_eq!(service.workers(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CepsServiceBuilder {
    cache_bytes: usize,
    shards: Option<usize>,
    workers: usize,
    precision: Option<Precision>,
}

impl Default for CepsServiceBuilder {
    fn default() -> Self {
        CepsServiceBuilder {
            cache_bytes: DEFAULT_CACHE_BYTES,
            shards: None,
            workers: 1,
            precision: None,
        }
    }
}

impl CepsServiceBuilder {
    /// Starts from the defaults: a [`DEFAULT_CACHE_BYTES`] cache with the
    /// default shard count, one worker, the engine's own precision.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the row-cache byte budget. `0` disables the cache entirely
    /// (every query solves cold — the old `uncached` constructor).
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Disables the row cache (sugar for `cache_bytes(0)`).
    pub fn uncached(self) -> Self {
        self.cache_bytes(0)
    }

    /// Sets an explicit cache shard count (default:
    /// [`ceps_rwr::cache::DEFAULT_SHARDS`]).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Sets the service's default worker count, used by serving harnesses
    /// (`ceps-net`'s server, stream replay) when not told otherwise.
    /// Clamped to at least 1 at build time.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the operator storage precision when the builder also
    /// builds the engine ([`CepsServiceBuilder::build_from_graph`]); a
    /// pre-built engine passed to [`CepsServiceBuilder::build`] keeps its
    /// own.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = Some(precision);
        self
    }

    /// Wraps a pre-built engine.
    pub fn build(self, engine: CepsEngine) -> CepsService {
        let cache = if self.cache_bytes == 0 {
            None
        } else {
            Some(Arc::new(match self.shards {
                Some(s) => RwrRowCache::with_shards(self.cache_bytes, s),
                None => RwrRowCache::new(self.cache_bytes),
            }))
        };
        CepsService {
            engine,
            cache,
            workers: self.workers.max(1),
        }
    }

    /// Builds the engine too (applying any
    /// [`precision`](CepsServiceBuilder::precision) override to `config`),
    /// then wraps it.
    ///
    /// # Errors
    /// As in [`CepsEngine::new`].
    pub fn build_from_graph(
        self,
        graph: impl IntoSharedGraph,
        mut config: CepsConfig,
    ) -> Result<CepsService> {
        if let Some(p) = self.precision {
            config = config.precision(p);
        }
        let engine = CepsEngine::new(graph, config)?;
        Ok(self.build(engine))
    }
}

/// A cloneable, thread-safe CePS query server: an engine plus a shared
/// row cache.
#[derive(Debug, Clone)]
pub struct CepsService {
    engine: CepsEngine,
    cache: Option<Arc<RwrRowCache>>,
    workers: usize,
}

impl CepsService {
    /// Wraps `engine` with a row cache of `cache_bytes` total budget
    /// (sharded [`ceps_rwr::cache::DEFAULT_SHARDS`] ways). A zero budget
    /// behaves like [`CepsService::uncached`].
    #[deprecated(
        since = "0.1.0",
        note = "use CepsServiceBuilder::new().cache_bytes(..)"
    )]
    pub fn new(engine: CepsEngine, cache_bytes: usize) -> Self {
        CepsServiceBuilder::new()
            .cache_bytes(cache_bytes)
            .build(engine)
    }

    /// Like `CepsService::new` with an explicit shard count.
    #[deprecated(
        since = "0.1.0",
        note = "use CepsServiceBuilder::new().cache_bytes(..).shards(..)"
    )]
    pub fn with_shards(engine: CepsEngine, cache_bytes: usize, shards: usize) -> Self {
        CepsServiceBuilder::new()
            .cache_bytes(cache_bytes)
            .shards(shards)
            .build(engine)
    }

    /// Wraps `engine` with no cache at all — every query solves cold.
    /// The control arm of the serving benchmark.
    #[deprecated(since = "0.1.0", note = "use CepsServiceBuilder::new().uncached()")]
    pub fn uncached(engine: CepsEngine) -> Self {
        CepsServiceBuilder::new().uncached().build(engine)
    }

    /// The default worker count serving harnesses should fan this service
    /// over (set via [`CepsServiceBuilder::workers`], at least 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The unified request/response entry point: answers one
    /// [`ServeRequest`] with a [`ServeReply`]. This is exactly the path
    /// the `ceps-net` wire protocol drives — byte-identical replies
    /// in-process and over a socket.
    ///
    /// # Errors
    /// As in [`CepsEngine::run`].
    pub fn serve(&self, request: &ServeRequest) -> Result<ServeReply> {
        let result = self.run(&request.queries)?;
        Ok(ServeReply::from_result(&result, &request.queries))
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &CepsEngine {
        &self.engine
    }

    /// Snapshot of the cache counters (`None` when running uncached).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Step 1 with cache assembly: hits are served from the store, misses
    /// are batched through one backend solve and inserted.
    ///
    /// # Errors
    /// Query validation and solver errors as in
    /// [`CepsEngine::individual_scores`].
    pub fn individual_scores(&self, queries: &[NodeId]) -> Result<ScoreMatrix> {
        self.engine.validate_queries(queries)?;
        match &self.cache {
            Some(cache) => Ok(scores_with_cache(
                self.engine.backend().as_ref(),
                cache,
                queries,
            )?),
            None => self.engine.individual_scores(queries),
        }
    }

    /// The full pipeline (Table 1) with cached Step 1.
    ///
    /// # Errors
    /// As in [`CepsEngine::run`].
    pub fn run(&self, queries: &[NodeId]) -> Result<CepsResult> {
        Ok(self.run_timed(queries)?.0)
    }

    /// Like [`run`](CepsService::run), also returning the per-stage wall
    /// times (`scores_ms` covers the whole Step 1 assembly: cache probes
    /// plus the batched solve over misses). The request runs under a
    /// `serve.request` span with the stage spans nested inside it.
    ///
    /// # Errors
    /// As in [`CepsEngine::run`].
    pub fn run_timed(&self, queries: &[NodeId]) -> Result<(CepsResult, StageTimes)> {
        self.run_instrumented(queries).map(|(r, m)| (r, m.stages))
    }

    /// Like [`run_timed`](CepsService::run_timed), additionally reporting
    /// this request's own cache outcome — how many of its distinct query
    /// rows were warm vs solved cold (always 0/0 when running uncached).
    /// This is what per-request tracing records; the global
    /// [`cache_stats`](CepsService::cache_stats) counters cannot attribute
    /// warmth to a single request in a concurrent stream.
    ///
    /// # Errors
    /// As in [`CepsEngine::run`].
    pub fn run_instrumented(&self, queries: &[NodeId]) -> Result<(CepsResult, RequestMetrics)> {
        let _span = ceps_obs::span("serve.request");
        self.engine.validate_queries(queries)?;
        self.engine.config().validate(queries.len())?;
        let (step1, t_scores) = ceps_obs::timed("stage.individual_scores", || match &self.cache {
            Some(cache) => {
                let (m, l) =
                    scores_with_cache_counted(self.engine.backend().as_ref(), cache, queries)?;
                Ok((m, l.hits, l.misses))
            }
            None => self.engine.individual_scores(queries).map(|m| (m, 0, 0)),
        });
        let (scores, cache_hits, cache_misses) = step1?;
        let (result, mut times) = self.engine.run_with_scores_timed(queries, scores)?;
        times.scores_ms = t_scores.as_secs_f64() * 1e3;
        Ok((
            result,
            RequestMetrics {
                stages: times,
                cache_hits,
                cache_misses,
            },
        ))
    }

    /// Serves every query set in `stream` across `workers` scoped threads
    /// sharing this service's cache, and reports throughput, latency
    /// percentiles and cache-counter deltas.
    ///
    /// Query sets are claimed from a shared atomic cursor, so the
    /// assignment (and therefore which worker warms which rows) is
    /// scheduling-dependent — but results are not: every worker reads
    /// through the same cache and the backend is deterministic.
    ///
    /// # Errors
    /// The first query-set error a worker hits (remaining sets still
    /// drain; their results are discarded).
    pub fn serve_stream(&self, stream: &[Vec<NodeId>], workers: usize) -> Result<ServeOutcome> {
        self.serve_stream_traced(stream, workers, None)
    }

    /// [`serve_stream`](CepsService::serve_stream) with an optional
    /// per-request [`RequestTracer`]: each request gets a deterministic id
    /// (its stream index) and, when sampled, one `ceps-trace/v1` JSONL
    /// line recording worker, latency, stage times, this request's cache
    /// hits/misses, budget, extracted path count and outcome. Errored
    /// requests are traced too (zeroed stages, `outcome: "error"`).
    ///
    /// Every completed request also feeds the live registry — the
    /// `serve.requests` counter and the `serve.latency_ms` histogram — so
    /// an attached [`ceps_obs::MetricsExporter`] sees traffic as it
    /// happens (no-ops unless a recorder is installed).
    ///
    /// # Errors
    /// As in [`serve_stream`](CepsService::serve_stream).
    pub fn serve_stream_traced(
        &self,
        stream: &[Vec<NodeId>],
        workers: usize,
        tracer: Option<&RequestTracer>,
    ) -> Result<ServeOutcome> {
        let workers = workers.max(1).min(stream.len().max(1));
        let before = self.cache_stats().unwrap_or_default();
        let cursor = AtomicUsize::new(0);
        let started = Instant::now();

        let per_worker = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let cursor = &cursor;
                    s.spawn(move |_| {
                        let mut latencies = Vec::new();
                        let mut stages = StageTimes::default();
                        let mut first_err = None;
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(queries) = stream.get(i) else {
                                break;
                            };
                            let t0 = Instant::now();
                            // Each request gets a fresh root trace context
                            // so spans, histogram exemplars, and the trace
                            // line share one id. Skipped entirely when
                            // nothing would consume it — the untraced path
                            // stays free and scores are identical either
                            // way.
                            let _trace_guard = (tracer.is_some() || ceps_obs::enabled())
                                .then(|| ceps_obs::with_trace(ceps_obs::TraceContext::new_root()));
                            match self.run_instrumented(queries) {
                                Ok((result, metrics)) => {
                                    let latency_ms = t0.elapsed().as_secs_f64() * 1e3;
                                    latencies.push(latency_ms);
                                    stages.accumulate(&metrics.stages);
                                    ceps_obs::counter("serve.requests", 1);
                                    ceps_obs::record("serve.latency_ms", latency_ms);
                                    if let Some(tracer) = tracer {
                                        tracer.record(&RequestTrace {
                                            request_id: i as u64,
                                            worker: w,
                                            queries: queries.len(),
                                            latency_ms,
                                            queue_ms: 0.0,
                                            stages: metrics.stages,
                                            cache_hits: metrics.cache_hits,
                                            cache_misses: metrics.cache_misses,
                                            budget: self.engine.config().budget,
                                            paths: result.paths.len(),
                                            error: None,
                                            trace_id: ceps_obs::current_trace().map(|c| c.trace_id),
                                        });
                                    }
                                }
                                Err(e) => {
                                    ceps_obs::counter("serve.errors", 1);
                                    if let Some(tracer) = tracer {
                                        tracer.record(&RequestTrace {
                                            request_id: i as u64,
                                            worker: w,
                                            queries: queries.len(),
                                            latency_ms: t0.elapsed().as_secs_f64() * 1e3,
                                            queue_ms: 0.0,
                                            stages: StageTimes::default(),
                                            cache_hits: 0,
                                            cache_misses: 0,
                                            budget: self.engine.config().budget,
                                            paths: 0,
                                            error: Some(e.to_string()),
                                            trace_id: ceps_obs::current_trace().map(|c| c.trace_id),
                                        });
                                    }
                                    if first_err.is_none() {
                                        first_err = Some(e);
                                    }
                                }
                            }
                        }
                        (latencies, stages, first_err)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serve worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("serve scope panicked");

        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let mut latencies_ms = Vec::with_capacity(stream.len());
        let mut stages = StageTimes::default();
        for (lats, worker_stages, err) in per_worker {
            if let Some(e) = err {
                return Err(e);
            }
            latencies_ms.extend(lats);
            stages.accumulate(&worker_stages);
        }

        let after = self.cache_stats().unwrap_or_default();
        let cache = self.cache.as_ref().map(|_| CacheStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            evictions: after.evictions - before.evictions,
            insertions: after.insertions - before.insertions,
            rejected: after.rejected - before.rejected,
        });

        Ok(ServeOutcome::new(
            workers,
            wall_ms,
            latencies_ms,
            stages,
            cache,
        ))
    }
}

/// One request's own measurements, as returned by
/// [`CepsService::run_instrumented`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RequestMetrics {
    /// Per-stage wall times for this request.
    pub stages: StageTimes,
    /// Distinct query rows this request found warm in the shared cache.
    pub cache_hits: u64,
    /// Distinct query rows this request solved cold.
    pub cache_misses: u64,
}

/// What one [`CepsService::serve_stream`] run measured.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Query sets answered successfully.
    pub completed: usize,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock time for the whole stream, milliseconds.
    pub wall_ms: f64,
    /// Per-query latencies in milliseconds, **sorted ascending**.
    ///
    /// Invariant: [`ServeOutcome::latency_percentile_ms`] indexes this
    /// vector by nearest rank and is only correct when it is sorted.
    /// [`ServeOutcome::new`] establishes the order (worker completion
    /// order is nondeterministic under concurrency); construct outcomes
    /// through it rather than with a struct literal.
    pub latencies_ms: Vec<f64>,
    /// Summed per-stage wall times across all completed requests — the
    /// stage-level latency breakdown (CPU-time sum, not wall-clock: with
    /// multiple workers it exceeds `wall_ms`).
    pub stages: StageTimes,
    /// Cache-counter deltas over the run (`None` when uncached).
    pub cache: Option<CacheStats>,
}

impl ServeOutcome {
    /// Builds an outcome from raw per-request measurements, sorting
    /// `latencies_ms` to establish the invariant
    /// [`latency_percentile_ms`](ServeOutcome::latency_percentile_ms)
    /// depends on. `completed` is derived from the latency count.
    pub fn new(
        workers: usize,
        wall_ms: f64,
        mut latencies_ms: Vec<f64>,
        stages: StageTimes,
        cache: Option<CacheStats>,
    ) -> Self {
        latencies_ms.sort_by(f64::total_cmp);
        ServeOutcome {
            completed: latencies_ms.len(),
            workers,
            wall_ms,
            latencies_ms,
            stages,
            cache,
        }
    }

    /// Queries per second over the wall clock.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.completed as f64 / (self.wall_ms / 1e3)
        }
    }

    /// The `p`-th latency percentile (nearest-rank), or 0 when nothing
    /// completed. `p` is clamped into `[0, 100]` — `p <= 0` returns the
    /// minimum, `p >= 100` (and non-finite `p`) the maximum — so the
    /// result is never `NaN` and never indexes out of bounds.
    pub fn latency_percentile_ms(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let n = self.latencies_ms.len();
        let p = if p.is_finite() {
            p.clamp(0.0, 100.0)
        } else {
            100.0
        };
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.latencies_ms[rank.clamp(1, n) - 1]
    }

    /// Mean per-request stage times — [`ServeOutcome::stages`] divided by
    /// [`ServeOutcome::completed`] (all zeros when nothing completed).
    pub fn mean_stage_ms(&self) -> StageTimes {
        self.stages.mean_over(self.completed)
    }

    /// Cache hit rate over the run, or `None` when there is nothing to
    /// measure — the service ran uncached, or no row was ever probed
    /// (0 hits / 0 misses is *unmeasured*, not a 0% rate).
    pub fn hit_rate(&self) -> Option<f64> {
        let c = self.cache?;
        if c.hits + c.misses == 0 {
            None
        } else {
            Some(c.hit_rate())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CepsConfig, CepsError};
    use ceps_graph::{CsrGraph, GraphBuilder};

    /// Three 5-cliques in a ring with weak bridges — enough structure for
    /// multi-query runs to cross clique boundaries.
    fn ring(cliques: u32, size: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for k in 0..cliques {
            let base = k * size;
            for i in 0..size {
                for j in (i + 1)..size {
                    b.add_edge(NodeId(base + i), NodeId(base + j), 2.0).unwrap();
                }
            }
            let next = ((k + 1) % cliques) * size;
            b.add_edge(NodeId(base), NodeId(next + 1), 0.3).unwrap();
        }
        b.build().unwrap()
    }

    fn engine() -> CepsEngine {
        let cfg = CepsConfig::default().budget(4).threads(1);
        CepsEngine::new(ring(3, 5), cfg).unwrap()
    }

    #[test]
    fn cached_run_matches_engine_run() {
        let e = engine();
        let service = CepsServiceBuilder::new()
            .cache_bytes(1 << 20)
            .build(e.clone());
        let queries = [NodeId(1), NodeId(6)];
        // Twice: cold then fully warm.
        for _ in 0..2 {
            let served = service.run(&queries).unwrap();
            let direct = e.run(&queries).unwrap();
            assert_eq!(served.scores, direct.scores);
            assert_eq!(served.combined, direct.combined);
            let s: Vec<_> = served.subgraph.nodes().collect();
            let d: Vec<_> = direct.subgraph.nodes().collect();
            assert_eq!(s, d);
        }
        let stats = service.cache_stats().unwrap();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.insertions, 2);
    }

    #[test]
    fn uncached_service_is_plain_engine() {
        let e = engine();
        let service = CepsServiceBuilder::new().uncached().build(e.clone());
        assert!(service.cache_stats().is_none());
        let queries = [NodeId(0), NodeId(11)];
        assert_eq!(
            service.individual_scores(&queries).unwrap(),
            e.individual_scores(&queries).unwrap()
        );
    }

    #[test]
    fn service_validates_before_touching_the_cache() {
        let service = CepsServiceBuilder::new()
            .cache_bytes(1 << 20)
            .build(engine());
        assert!(matches!(service.run(&[]), Err(CepsError::NoQueries)));
        assert!(matches!(
            service.run(&[NodeId(2), NodeId(2)]),
            Err(CepsError::DuplicateQuery { .. })
        ));
        assert!(service.run(&[NodeId(999)]).is_err());
        assert_eq!(service.cache_stats().unwrap(), CacheStats::default());
    }

    #[test]
    fn serve_stream_completes_and_measures() {
        let service = CepsServiceBuilder::new()
            .cache_bytes(1 << 20)
            .build(engine());
        let stream: Vec<Vec<NodeId>> = (0..12)
            .map(|i| vec![NodeId(i % 15), NodeId((i + 5) % 15)])
            .collect();
        let out = service.serve_stream(&stream, 3).unwrap();
        assert_eq!(out.completed, 12);
        assert_eq!(out.workers, 3);
        assert_eq!(out.latencies_ms.len(), 12);
        assert!(out.throughput_qps() > 0.0);
        assert!(out.latency_percentile_ms(50.0) <= out.latency_percentile_ms(99.0));
        let cache = out.cache.unwrap();
        assert_eq!(cache.hits + cache.misses, 24, "every query row probed");
        assert!(out.hit_rate().unwrap() > 0.0, "repeated nodes must hit");
    }

    #[test]
    fn serve_stream_reports_stage_breakdown() {
        let service = CepsServiceBuilder::new()
            .cache_bytes(1 << 20)
            .build(engine());
        let stream: Vec<Vec<NodeId>> = (0..6).map(|i| vec![NodeId(i), NodeId(i + 7)]).collect();
        let out = service.serve_stream(&stream, 2).unwrap();
        assert!(out.stages.scores_ms > 0.0, "Step 1 took measurable time");
        assert!(out.stages.combine_ms >= 0.0 && out.stages.extract_ms >= 0.0);
        let mean = out.mean_stage_ms();
        assert!((mean.total_ms() - out.stages.total_ms() / 6.0).abs() < 1e-9);
        // The per-stage sum accounts for most of each request's latency.
        let latency_sum: f64 = out.latencies_ms.iter().sum();
        assert!(out.stages.total_ms() <= latency_sum);
    }

    #[test]
    fn latency_percentile_clamps_out_of_range_p() {
        let out = ServeOutcome {
            completed: 4,
            workers: 1,
            wall_ms: 10.0,
            latencies_ms: vec![1.0, 2.0, 3.0, 4.0],
            stages: StageTimes::default(),
            cache: None,
        };
        assert_eq!(out.latency_percentile_ms(0.0), 1.0, "p=0 is the minimum");
        assert_eq!(out.latency_percentile_ms(-5.0), 1.0);
        assert_eq!(out.latency_percentile_ms(100.0), 4.0);
        assert_eq!(out.latency_percentile_ms(250.0), 4.0, "p>100 clamps");
        assert_eq!(out.latency_percentile_ms(f64::NAN), 4.0);
        assert_eq!(out.latency_percentile_ms(f64::INFINITY), 4.0);
        assert_eq!(out.latency_percentile_ms(50.0), 2.0);
        assert!(!out.latency_percentile_ms(33.3).is_nan());
    }

    #[test]
    fn empty_outcome_is_nan_free() {
        let out = ServeOutcome {
            completed: 0,
            workers: 1,
            wall_ms: 0.0,
            latencies_ms: vec![],
            stages: StageTimes::default(),
            cache: None,
        };
        for p in [-1.0, 0.0, 50.0, 100.0, 1e9, f64::NAN] {
            let v = out.latency_percentile_ms(p);
            assert_eq!(v, 0.0, "zero requests → 0, got {v} at p={p}");
        }
        assert_eq!(out.throughput_qps(), 0.0);
        assert_eq!(out.mean_stage_ms(), StageTimes::default());
        assert_eq!(out.hit_rate(), None, "0/0 probes is unmeasured");
    }

    #[test]
    fn outcome_constructor_sorts_unsorted_latencies() {
        // Multi-worker completion order is nondeterministic; feed the
        // constructor a deliberately unsorted vector and check percentiles
        // come out as if it had been sorted.
        let out = ServeOutcome::new(
            2,
            10.0,
            vec![4.0, 1.0, 3.0, 2.0],
            StageTimes::default(),
            None,
        );
        assert_eq!(out.completed, 4);
        assert_eq!(out.latencies_ms, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(out.latency_percentile_ms(0.0), 1.0);
        assert_eq!(out.latency_percentile_ms(50.0), 2.0);
        assert_eq!(out.latency_percentile_ms(100.0), 4.0);
    }

    #[test]
    fn traced_stream_emits_one_line_per_request_at_full_rate() {
        use crate::telemetry::RequestTracer;

        let service = CepsServiceBuilder::new()
            .cache_bytes(1 << 20)
            .build(engine());
        let stream: Vec<Vec<NodeId>> = (0..8)
            .map(|i| vec![NodeId(i % 15), NodeId((i + 4) % 15)])
            .collect();
        let buf = crate::telemetry::tests::SharedBuf::default();
        let tracer = RequestTracer::new(Box::new(buf.clone()), 1.0);
        let out = service
            .serve_stream_traced(&stream, 2, Some(&tracer))
            .unwrap();
        assert_eq!(out.completed, 8);
        assert_eq!(tracer.written(), 8, "rate 1.0 keeps every request");
        let lines = buf.lines();
        assert_eq!(lines.len(), 8);
        // Every stream index appears exactly once, whatever the worker
        // interleaving was.
        for i in 0..8 {
            assert_eq!(
                lines
                    .iter()
                    .filter(|l| l.contains(&format!("\"request_id\": {i},")))
                    .count(),
                1,
                "request {i} traced once"
            );
        }
        for line in &lines {
            assert!(line.starts_with("{\"schema\": \"ceps-trace/v1\""));
            assert!(line.contains("\"outcome\": \"ok\""));
            assert!(line.contains("\"queries\": 2"));
            assert!(line.contains("\"budget\": 4"));
        }
    }

    #[test]
    fn traced_stream_records_errors_and_cache_warmth() {
        use crate::telemetry::RequestTracer;

        let service = CepsServiceBuilder::new()
            .cache_bytes(1 << 20)
            .build(engine());
        // Same queries twice: second request is fully warm. Then a bad one.
        let stream = vec![
            vec![NodeId(1), NodeId(6)],
            vec![NodeId(1), NodeId(6)],
            vec![NodeId(999)],
        ];
        let buf = crate::telemetry::tests::SharedBuf::default();
        let tracer = RequestTracer::new(Box::new(buf.clone()), 1.0);
        let err = service.serve_stream_traced(&stream, 1, Some(&tracer));
        assert!(err.is_err(), "bad node surfaces as stream error");
        let lines = buf.lines();
        assert_eq!(lines.len(), 3, "errored requests are traced too");
        assert!(lines[0].contains("\"cache_hits\": 0, \"cache_misses\": 2"));
        assert!(lines[1].contains("\"cache_hits\": 2, \"cache_misses\": 0"));
        assert!(lines[2].contains("\"outcome\": \"error\""));
        assert!(lines[2].contains("\"error\": "));
    }

    #[test]
    fn run_instrumented_matches_run_timed_and_counts_cache() {
        let service = CepsServiceBuilder::new()
            .cache_bytes(1 << 20)
            .build(engine());
        let queries = [NodeId(2), NodeId(9)];
        let (cold, m_cold) = service.run_instrumented(&queries).unwrap();
        assert_eq!((m_cold.cache_hits, m_cold.cache_misses), (0, 2));
        let (warm, m_warm) = service.run_instrumented(&queries).unwrap();
        assert_eq!((m_warm.cache_hits, m_warm.cache_misses), (2, 0));
        assert_eq!(cold.scores, warm.scores);
        let (timed, stages) = service.run_timed(&queries).unwrap();
        assert_eq!(timed.scores, cold.scores);
        assert!(stages.scores_ms >= 0.0);
        // Uncached service reports 0/0, not a phantom miss count.
        let uncached = CepsServiceBuilder::new().uncached().build(engine());
        let (_, m) = uncached.run_instrumented(&queries).unwrap();
        assert_eq!((m.cache_hits, m.cache_misses), (0, 0));
    }

    #[test]
    fn serve_stream_surfaces_worker_errors() {
        let service = CepsServiceBuilder::new()
            .cache_bytes(1 << 20)
            .build(engine());
        let stream = vec![vec![NodeId(0)], vec![NodeId(999)], vec![NodeId(1)]];
        assert!(service.serve_stream(&stream, 2).is_err());
    }

    #[test]
    fn concurrent_workers_agree_with_serial_engine() {
        // Smoke test: many workers hammer one small cache; results must
        // match the serial, uncached engine bitwise.
        let e = engine();
        let service = CepsServiceBuilder::new()
            .cache_bytes(4096)
            .shards(2)
            .build(e.clone());
        let stream: Vec<Vec<NodeId>> = (0..20).map(|i| vec![NodeId(i % 15)]).collect();
        let out = service.serve_stream(&stream, 4).unwrap();
        assert_eq!(out.completed, 20);
        for queries in &stream {
            assert_eq!(
                service.individual_scores(queries).unwrap(),
                e.individual_scores(queries).unwrap()
            );
        }
    }

    /// The deprecated constructor trio must stay behaviourally identical
    /// to the builder it now delegates to.
    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_match_builder() {
        let e = engine();
        let queries = [NodeId(1), NodeId(6)];

        let old = CepsService::new(e.clone(), 1 << 20);
        let new = CepsServiceBuilder::new()
            .cache_bytes(1 << 20)
            .build(e.clone());
        assert_eq!(
            old.run(&queries).unwrap().scores,
            new.run(&queries).unwrap().scores
        );
        assert_eq!(old.cache_stats(), new.cache_stats());
        assert_eq!(old.workers(), new.workers());

        let old = CepsService::with_shards(e.clone(), 4096, 2);
        let new = CepsServiceBuilder::new()
            .cache_bytes(4096)
            .shards(2)
            .build(e.clone());
        assert_eq!(
            old.run(&queries).unwrap().scores,
            new.run(&queries).unwrap().scores
        );
        assert_eq!(old.cache_stats(), new.cache_stats());

        let old = CepsService::uncached(e.clone());
        let new = CepsServiceBuilder::new().uncached().build(e);
        assert!(old.cache_stats().is_none() && new.cache_stats().is_none());
        assert_eq!(
            old.run(&queries).unwrap().scores,
            new.run(&queries).unwrap().scores
        );

        // Zero cache bytes now means "no cache", matching `uncached`.
        assert!(CepsServiceBuilder::new()
            .cache_bytes(0)
            .build(engine())
            .cache_stats()
            .is_none());
    }

    #[test]
    fn serve_projects_run_deterministically() {
        let service = CepsServiceBuilder::new()
            .cache_bytes(1 << 20)
            .build(engine());
        let request = ServeRequest::new(vec![NodeId(1), NodeId(6)]);
        let reply = service.serve(&request).unwrap();
        let direct = service.run(&request.queries).unwrap();
        assert_eq!(reply, ServeReply::from_result(&direct, &request.queries));
        assert!(reply.members.windows(2).all(|w| w[0].score >= w[1].score));
        assert_eq!(
            reply.members.iter().filter(|m| m.is_query).count(),
            2,
            "query nodes are flagged"
        );
        // Warm cache, same request: byte-identical reply.
        let again = service.serve(&request).unwrap();
        assert_eq!(reply, again);
    }

    #[test]
    fn serve_vocabulary_round_trips_through_serde() {
        let service = CepsServiceBuilder::new()
            .cache_bytes(1 << 20)
            .build(engine());
        let request = ServeRequest::new(vec![NodeId(2), NodeId(9)]);
        let req_json = serde_json::to_string(&request).unwrap();
        let request2: ServeRequest = serde_json::from_str(&req_json).unwrap();
        assert_eq!(request, request2);

        let reply = service.serve(&request).unwrap();
        let json = serde_json::to_string(&reply).unwrap();
        let reply2: ServeReply = serde_json::from_str(&json).unwrap();
        // PartialEq on f64 fields: bitwise equality of every score must
        // survive the text round-trip (shortest-round-trip formatting).
        assert_eq!(reply, reply2);
    }

    #[test]
    fn builder_workers_and_precision_pass_through() {
        use ceps_graph::Precision;

        assert_eq!(CepsServiceBuilder::new().build(engine()).workers(), 1);
        assert_eq!(
            CepsServiceBuilder::new()
                .workers(0)
                .build(engine())
                .workers(),
            1
        );
        assert_eq!(
            CepsServiceBuilder::new()
                .workers(7)
                .build(engine())
                .workers(),
            7
        );

        let cfg = CepsConfig::default().budget(4).threads(1);
        let service = CepsServiceBuilder::new()
            .precision(Precision::F32)
            .build_from_graph(ring(3, 5), cfg)
            .unwrap();
        assert_eq!(service.engine().config().precision, Precision::F32);
    }
}
