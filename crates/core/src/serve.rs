//! Concurrent query serving with a shared RWR row cache.
//!
//! The paper's system is "operational": the graph is normalized once and
//! query sets arrive online, with the per-query RWR solve as the dominant
//! cost (Sec. 6 exists only to attack it). Real workloads repeat query
//! nodes constantly — repository queries are community hubs — and an RWR
//! row `r(i, ·)` depends only on the operator and solver settings, never on
//! the co-queries. [`CepsService`] exploits that: it wraps an owned
//! [`CepsEngine`] plus a shared [`RwrRowCache`], assembles Step 1's score
//! matrix from cache hits plus **one batched backend solve over only the
//! missing rows**, and hands the matrix to
//! [`CepsEngine::run_with_scores`] for Steps 2–3.
//!
//! Cloning a service is three `Arc` bumps, so one service fans out across
//! `crossbeam::thread::scope` workers; [`CepsService::serve_stream`] is
//! that harness, returning throughput, latency percentiles and cache
//! statistics in a [`ServeOutcome`].
//!
//! ## Cache keying and invalidation
//!
//! Rows are keyed by query [`ceps_graph::NodeId`] **alone**; every other
//! key component — transition operator, restart `c`, iteration budget,
//! tolerance, score variant — is pinned by the engine the service wraps.
//! The cache is created inside the service and never outlives its engine,
//! so there is nothing to invalidate: rebuild the engine (new graph, new
//! config) → you get a new, empty cache. Correctness rests on the
//! batch-independence contract of [`ceps_rwr::ScoreBackend`]: a cached row
//! is bitwise-identical to the same row solved cold in any batch.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ceps_graph::NodeId;
use ceps_rwr::{scores_with_cache, CacheStats, RwrRowCache, ScoreMatrix};

use crate::pipeline::{CepsEngine, CepsResult};
use crate::Result;

/// A cloneable, thread-safe CePS query server: an engine plus a shared
/// row cache.
#[derive(Debug, Clone)]
pub struct CepsService {
    engine: CepsEngine,
    cache: Option<Arc<RwrRowCache>>,
}

impl CepsService {
    /// Wraps `engine` with a row cache of `cache_bytes` total budget
    /// (sharded [`ceps_rwr::cache::DEFAULT_SHARDS`] ways). A zero budget
    /// behaves like [`CepsService::uncached`].
    pub fn new(engine: CepsEngine, cache_bytes: usize) -> Self {
        CepsService {
            engine,
            cache: Some(Arc::new(RwrRowCache::new(cache_bytes))),
        }
    }

    /// Like [`CepsService::new`] with an explicit shard count.
    pub fn with_shards(engine: CepsEngine, cache_bytes: usize, shards: usize) -> Self {
        CepsService {
            engine,
            cache: Some(Arc::new(RwrRowCache::with_shards(cache_bytes, shards))),
        }
    }

    /// Wraps `engine` with no cache at all — every query solves cold.
    /// The control arm of the serving benchmark.
    pub fn uncached(engine: CepsEngine) -> Self {
        CepsService {
            engine,
            cache: None,
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &CepsEngine {
        &self.engine
    }

    /// Snapshot of the cache counters (`None` when running uncached).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Step 1 with cache assembly: hits are served from the store, misses
    /// are batched through one backend solve and inserted.
    ///
    /// # Errors
    /// Query validation and solver errors as in
    /// [`CepsEngine::individual_scores`].
    pub fn individual_scores(&self, queries: &[NodeId]) -> Result<ScoreMatrix> {
        self.engine.validate_queries(queries)?;
        match &self.cache {
            Some(cache) => Ok(scores_with_cache(
                self.engine.backend().as_ref(),
                cache,
                queries,
            )?),
            None => self.engine.individual_scores(queries),
        }
    }

    /// The full pipeline (Table 1) with cached Step 1.
    ///
    /// # Errors
    /// As in [`CepsEngine::run`].
    pub fn run(&self, queries: &[NodeId]) -> Result<CepsResult> {
        self.engine.validate_queries(queries)?;
        self.engine.config().validate(queries.len())?;
        let scores = self.individual_scores(queries)?;
        self.engine.run_with_scores(queries, scores)
    }

    /// Serves every query set in `stream` across `workers` scoped threads
    /// sharing this service's cache, and reports throughput, latency
    /// percentiles and cache-counter deltas.
    ///
    /// Query sets are claimed from a shared atomic cursor, so the
    /// assignment (and therefore which worker warms which rows) is
    /// scheduling-dependent — but results are not: every worker reads
    /// through the same cache and the backend is deterministic.
    ///
    /// # Errors
    /// The first query-set error a worker hits (remaining sets still
    /// drain; their results are discarded).
    pub fn serve_stream(&self, stream: &[Vec<NodeId>], workers: usize) -> Result<ServeOutcome> {
        let workers = workers.max(1).min(stream.len().max(1));
        let before = self.cache_stats().unwrap_or_default();
        let cursor = AtomicUsize::new(0);
        let started = Instant::now();

        let per_worker = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|_| {
                        let mut latencies = Vec::new();
                        let mut first_err = None;
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(queries) = stream.get(i) else {
                                break;
                            };
                            let t0 = Instant::now();
                            match self.run(queries) {
                                Ok(_) => latencies.push(t0.elapsed().as_secs_f64() * 1e3),
                                Err(e) => {
                                    if first_err.is_none() {
                                        first_err = Some(e);
                                    }
                                }
                            }
                        }
                        (latencies, first_err)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serve worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("serve scope panicked");

        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let mut latencies_ms = Vec::with_capacity(stream.len());
        for (lats, err) in per_worker {
            if let Some(e) = err {
                return Err(e);
            }
            latencies_ms.extend(lats);
        }
        latencies_ms.sort_by(f64::total_cmp);

        let after = self.cache_stats().unwrap_or_default();
        let cache = self.cache.as_ref().map(|_| CacheStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            evictions: after.evictions - before.evictions,
            insertions: after.insertions - before.insertions,
            rejected: after.rejected - before.rejected,
        });

        Ok(ServeOutcome {
            completed: latencies_ms.len(),
            workers,
            wall_ms,
            latencies_ms,
            cache,
        })
    }
}

/// What one [`CepsService::serve_stream`] run measured.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Query sets answered successfully.
    pub completed: usize,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock time for the whole stream, milliseconds.
    pub wall_ms: f64,
    /// Per-query latencies in milliseconds, sorted ascending.
    pub latencies_ms: Vec<f64>,
    /// Cache-counter deltas over the run (`None` when uncached).
    pub cache: Option<CacheStats>,
}

impl ServeOutcome {
    /// Queries per second over the wall clock.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.completed as f64 / (self.wall_ms / 1e3)
        }
    }

    /// The `p`-th latency percentile (nearest-rank, `0 < p <= 100`), or
    /// 0 when nothing completed.
    pub fn latency_percentile_ms(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let n = self.latencies_ms.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.latencies_ms[rank.clamp(1, n) - 1]
    }

    /// Cache hit rate over the run (0 when uncached).
    pub fn hit_rate(&self) -> f64 {
        self.cache.map_or(0.0, |c| c.hit_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CepsConfig, CepsError};
    use ceps_graph::{CsrGraph, GraphBuilder};

    /// Three 5-cliques in a ring with weak bridges — enough structure for
    /// multi-query runs to cross clique boundaries.
    fn ring(cliques: u32, size: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for k in 0..cliques {
            let base = k * size;
            for i in 0..size {
                for j in (i + 1)..size {
                    b.add_edge(NodeId(base + i), NodeId(base + j), 2.0).unwrap();
                }
            }
            let next = ((k + 1) % cliques) * size;
            b.add_edge(NodeId(base), NodeId(next + 1), 0.3).unwrap();
        }
        b.build().unwrap()
    }

    fn engine() -> CepsEngine {
        let cfg = CepsConfig::default().budget(4).threads(1);
        CepsEngine::new(ring(3, 5), cfg).unwrap()
    }

    #[test]
    fn cached_run_matches_engine_run() {
        let e = engine();
        let service = CepsService::new(e.clone(), 1 << 20);
        let queries = [NodeId(1), NodeId(6)];
        // Twice: cold then fully warm.
        for _ in 0..2 {
            let served = service.run(&queries).unwrap();
            let direct = e.run(&queries).unwrap();
            assert_eq!(served.scores, direct.scores);
            assert_eq!(served.combined, direct.combined);
            let s: Vec<_> = served.subgraph.nodes().collect();
            let d: Vec<_> = direct.subgraph.nodes().collect();
            assert_eq!(s, d);
        }
        let stats = service.cache_stats().unwrap();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.insertions, 2);
    }

    #[test]
    fn uncached_service_is_plain_engine() {
        let e = engine();
        let service = CepsService::uncached(e.clone());
        assert!(service.cache_stats().is_none());
        let queries = [NodeId(0), NodeId(11)];
        assert_eq!(
            service.individual_scores(&queries).unwrap(),
            e.individual_scores(&queries).unwrap()
        );
    }

    #[test]
    fn service_validates_before_touching_the_cache() {
        let service = CepsService::new(engine(), 1 << 20);
        assert!(matches!(service.run(&[]), Err(CepsError::NoQueries)));
        assert!(matches!(
            service.run(&[NodeId(2), NodeId(2)]),
            Err(CepsError::DuplicateQuery { .. })
        ));
        assert!(service.run(&[NodeId(999)]).is_err());
        assert_eq!(service.cache_stats().unwrap(), CacheStats::default());
    }

    #[test]
    fn serve_stream_completes_and_measures() {
        let service = CepsService::new(engine(), 1 << 20);
        let stream: Vec<Vec<NodeId>> = (0..12)
            .map(|i| vec![NodeId(i % 15), NodeId((i + 5) % 15)])
            .collect();
        let out = service.serve_stream(&stream, 3).unwrap();
        assert_eq!(out.completed, 12);
        assert_eq!(out.workers, 3);
        assert_eq!(out.latencies_ms.len(), 12);
        assert!(out.throughput_qps() > 0.0);
        assert!(out.latency_percentile_ms(50.0) <= out.latency_percentile_ms(99.0));
        let cache = out.cache.unwrap();
        assert_eq!(cache.hits + cache.misses, 24, "every query row probed");
        assert!(out.hit_rate() > 0.0, "repeated nodes must hit");
    }

    #[test]
    fn serve_stream_surfaces_worker_errors() {
        let service = CepsService::new(engine(), 1 << 20);
        let stream = vec![vec![NodeId(0)], vec![NodeId(999)], vec![NodeId(1)]];
        assert!(service.serve_stream(&stream, 2).is_err());
    }

    #[test]
    fn concurrent_workers_agree_with_serial_engine() {
        // Smoke test: many workers hammer one small cache; results must
        // match the serial, uncached engine bitwise.
        let e = engine();
        let service = CepsService::with_shards(e.clone(), 4096, 2);
        let stream: Vec<Vec<NodeId>> = (0..20).map(|i| vec![NodeId(i % 15)]).collect();
        let out = service.serve_stream(&stream, 4).unwrap();
        assert_eq!(out.completed, 20);
        for queries in &stream {
            assert_eq!(
                service.individual_scores(queries).unwrap(),
                e.individual_scores(queries).unwrap()
            );
        }
    }
}
