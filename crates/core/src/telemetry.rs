//! Per-request trace emission for [`CepsService::serve_stream`]
//! (`ceps-trace/v1` JSONL — the schema is documented with the other
//! schemas in `ceps_obs::snapshot`).
//!
//! A [`RequestTracer`] decides per request whether to keep a trace line,
//! combining two policies:
//!
//! * **Head sampling** — a deterministic hash of the request id against
//!   the configured rate, so a 1% rate keeps a reproducible 1% of traffic
//!   regardless of worker scheduling.
//! * **Tail sampling** — the tracer feeds every latency into a windowed
//!   log₂ histogram ([`ceps_obs::Histogram`]) and *always* keeps requests
//!   slower than the current p99 estimate (once
//!   [`TAIL_WARMUP`] observations exist), so the interesting outliers
//!   survive even aggressive head rates.
//!
//! Emission is a single locked write per sampled request; unsampled
//! requests cost one hash and one histogram update. The tracer never
//! changes computation — serving output is identical with or without one
//! attached.
//!
//! [`CepsService::serve_stream`]: crate::CepsService::serve_stream

use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::pipeline::StageTimes;

/// Observations the tail-sampler's histogram needs before its p99 estimate
/// is trusted; below this every request is head-sampled only.
pub const TAIL_WARMUP: u64 = 32;

/// Everything recorded about one served request — the payload of a
/// `ceps-trace/v1` line.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// Stream index of the request (deterministic across runs).
    pub request_id: u64,
    /// Worker thread that served it.
    pub worker: usize,
    /// Number of query nodes in the request.
    pub queries: usize,
    /// End-to-end request latency in milliseconds.
    pub latency_ms: f64,
    /// Queue delay in milliseconds: time between frame decode and the
    /// start of execution (admission wait etc.). 0 for in-process
    /// serving, where requests never queue behind a wire.
    pub queue_ms: f64,
    /// Per-stage wall times (zeroed when the request errored).
    pub stages: StageTimes,
    /// Distinct query rows served from the shared cache.
    pub cache_hits: u64,
    /// Distinct query rows solved cold.
    pub cache_misses: u64,
    /// Budget `b` the request ran under.
    pub budget: usize,
    /// Key paths extracted into the subgraph.
    pub paths: usize,
    /// `None` on success, the error message otherwise.
    pub error: Option<String>,
    /// `trace_id` of the [`ceps_obs::TraceContext`] active while the
    /// request was served (rendered as 16-char hex in the JSON line);
    /// `None` outside a traced scope.
    pub trace_id: Option<u64>,
}

/// Why a trace line was kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleKind {
    /// Request id hashed under the head-sampling rate.
    Head,
    /// Latency above the windowed p99 — kept regardless of the rate.
    Tail,
}

impl SampleKind {
    fn as_str(self) -> &'static str {
        match self {
            SampleKind::Head => "head",
            SampleKind::Tail => "tail",
        }
    }
}

struct TracerInner {
    out: Box<dyn Write + Send>,
    latency: ceps_obs::Histogram,
}

impl std::fmt::Debug for TracerInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracerInner")
            .field("latency_count", &self.latency.count())
            .finish_non_exhaustive()
    }
}

/// Head+tail-sampled JSONL trace sink shared by all serve workers.
#[derive(Debug)]
pub struct RequestTracer {
    sample_rate: f64,
    inner: Mutex<TracerInner>,
    written: AtomicU64,
}

impl RequestTracer {
    /// Wraps any writer. `sample_rate` is the head-sampling fraction,
    /// clamped into `[0, 1]` (`0` keeps only tail-sampled outliers, `1`
    /// keeps everything).
    pub fn new(out: Box<dyn Write + Send>, sample_rate: f64) -> Self {
        let sample_rate = if sample_rate.is_finite() {
            sample_rate.clamp(0.0, 1.0)
        } else {
            1.0
        };
        RequestTracer {
            sample_rate,
            inner: Mutex::new(TracerInner {
                out,
                latency: ceps_obs::Histogram::new(),
            }),
            written: AtomicU64::new(0),
        }
    }

    /// Opens (truncating) `path` as the trace sink.
    ///
    /// # Errors
    /// I/O errors creating the parent directory or the file.
    pub fn to_file(path: &Path, sample_rate: f64) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let file = fs::File::create(path)?;
        Ok(Self::new(Box::new(file), sample_rate))
    }

    /// The head-sampling rate in effect.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Trace lines written so far.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Deterministic head-sampling decision for a request id (splitmix64
    /// mapped to `[0, 1)` against the rate).
    fn head_sampled(&self, request_id: u64) -> bool {
        if self.sample_rate >= 1.0 {
            return true;
        }
        if self.sample_rate <= 0.0 {
            return false;
        }
        let mut z = request_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 11) as f64 / (1u64 << 53) as f64) < self.sample_rate
    }

    /// Feeds one finished request through the sampling policy, writing a
    /// `ceps-trace/v1` line when it is kept. Returns how the request was
    /// sampled, `None` when it was dropped.
    pub fn record(&self, trace: &RequestTrace) -> Option<SampleKind> {
        let head = self.head_sampled(trace.request_id);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        // Tail decision against the p99 of everything seen *before* this
        // request, once enough observations exist to trust the estimate.
        let tail = !head
            && inner.latency.count() >= TAIL_WARMUP
            && trace.latency_ms > inner.latency.percentile_from_buckets(99.0);
        inner.latency.record(trace.latency_ms);
        let kind = if head {
            SampleKind::Head
        } else if tail {
            SampleKind::Tail
        } else {
            return None;
        };
        let line = trace_json(trace, kind);
        if let Err(e) = writeln!(inner.out, "{line}").and_then(|()| inner.out.flush()) {
            ceps_obs::warn!("request tracer: cannot write trace line: {e}");
        } else {
            self.written.fetch_add(1, Ordering::Relaxed);
        }
        Some(kind)
    }
}

/// Serializes one kept request as a single-line `ceps-trace/v1` object.
pub fn trace_json(trace: &RequestTrace, kind: SampleKind) -> String {
    let mut out = String::with_capacity(256);
    let num = |v: f64| {
        if v.is_finite() {
            format!("{v}")
        } else {
            "0".to_string()
        }
    };
    let _ = write!(
        out,
        "{{\"schema\": \"ceps-trace/v1\", \"request_id\": {}, \"worker\": {}, \
         \"queries\": {}, \"latency_ms\": {}, \"queue_ms\": {}, \"scores_ms\": {}, \"combine_ms\": {}, \
         \"extract_ms\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"budget\": {}, \
         \"paths\": {}, \"sampled\": \"{}\", \"outcome\": \"{}\"",
        trace.request_id,
        trace.worker,
        trace.queries,
        num(trace.latency_ms),
        num(trace.queue_ms),
        num(trace.stages.scores_ms),
        num(trace.stages.combine_ms),
        num(trace.stages.extract_ms),
        trace.cache_hits,
        trace.cache_misses,
        trace.budget,
        trace.paths,
        kind.as_str(),
        if trace.error.is_none() { "ok" } else { "error" },
    );
    if let Some(msg) = &trace.error {
        let _ = write!(out, ", \"error\": {}", json_escape(msg));
    }
    if let Some(id) = trace.trace_id {
        let _ = write!(out, ", \"trace_id\": \"{}\"", ceps_obs::id_hex(id));
    }
    out.push('}');
    out
}

/// Escapes a string as a JSON string literal (quotes included).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::Arc;

    /// A `Write` handing its bytes to a shared buffer the test can read.
    #[derive(Clone, Default)]
    pub(crate) struct SharedBuf(pub Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        pub(crate) fn lines(&self) -> Vec<String> {
            String::from_utf8(self.0.lock().unwrap().clone())
                .unwrap()
                .lines()
                .map(str::to_string)
                .collect()
        }
    }

    fn trace(id: u64, latency: f64) -> RequestTrace {
        RequestTrace {
            request_id: id,
            worker: 0,
            queries: 2,
            latency_ms: latency,
            queue_ms: 0.0,
            stages: StageTimes {
                scores_ms: latency * 0.7,
                combine_ms: latency * 0.1,
                extract_ms: latency * 0.2,
            },
            cache_hits: 1,
            cache_misses: 1,
            budget: 20,
            paths: 3,
            error: None,
            trace_id: None,
        }
    }

    #[test]
    fn rate_one_keeps_everything_rate_zero_keeps_nothing_cold() {
        let buf = SharedBuf::default();
        let all = RequestTracer::new(Box::new(buf.clone()), 1.0);
        for i in 0..10 {
            assert_eq!(all.record(&trace(i, 1.0)), Some(SampleKind::Head));
        }
        assert_eq!(all.written(), 10);
        assert_eq!(buf.lines().len(), 10);

        let none = RequestTracer::new(Box::new(SharedBuf::default()), 0.0);
        for i in 0..(TAIL_WARMUP - 1) {
            assert_eq!(none.record(&trace(i, 1.0)), None, "cold tracer drops");
        }
    }

    #[test]
    fn head_sampling_is_deterministic_and_near_rate() {
        let t = RequestTracer::new(Box::new(SharedBuf::default()), 0.25);
        let picks: Vec<bool> = (0..4000).map(|i| t.head_sampled(i)).collect();
        let again: Vec<bool> = (0..4000).map(|i| t.head_sampled(i)).collect();
        assert_eq!(picks, again, "same ids, same decisions");
        let kept = picks.iter().filter(|&&b| b).count();
        assert!(
            (800..=1200).contains(&kept),
            "~25% of 4000 expected, got {kept}"
        );
    }

    #[test]
    fn tail_sampling_keeps_slow_outliers_after_warmup() {
        let buf = SharedBuf::default();
        let t = RequestTracer::new(Box::new(buf.clone()), 0.0);
        for i in 0..TAIL_WARMUP {
            assert_eq!(t.record(&trace(i, 1.0)), None);
        }
        // Far above the p99 of the 1ms baseline: always kept.
        let kind = t.record(&trace(999, 50.0));
        assert_eq!(kind, Some(SampleKind::Tail));
        let lines = buf.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"sampled\": \"tail\""));
        // Normal latency right after is still dropped.
        assert_eq!(t.record(&trace(1000, 1.0)), None);
    }

    #[test]
    fn trace_json_is_one_line_with_schema_and_outcome() {
        let line = trace_json(&trace(7, 2.5), SampleKind::Head);
        assert!(!line.contains('\n'));
        assert!(line.starts_with("{\"schema\": \"ceps-trace/v1\""));
        assert!(line.contains("\"request_id\": 7"));
        assert!(line.contains("\"queue_ms\": 0"));
        assert!(line.contains("\"outcome\": \"ok\""));
        assert!(!line.contains("\"error\""));

        let mut failed = trace(8, 0.1);
        failed.error = Some("node 999 \"missing\"".into());
        let line = trace_json(&failed, SampleKind::Tail);
        assert!(line.contains("\"outcome\": \"error\""));
        assert!(line.contains("\"error\": \"node 999 \\\"missing\\\"\""));
        assert!(line.contains("\"sampled\": \"tail\""));
        let opens = line.matches(['{', '[']).count();
        assert_eq!(opens, line.matches(['}', ']']).count());
    }

    #[test]
    fn trace_json_renders_trace_id_as_fixed_width_hex() {
        let mut t = trace(9, 1.0);
        assert!(
            !trace_json(&t, SampleKind::Head).contains("trace_id"),
            "untraced requests omit the field"
        );
        t.trace_id = Some(0xabc);
        let line = trace_json(&t, SampleKind::Head);
        assert!(
            line.contains("\"trace_id\": \"0000000000000abc\""),
            "{line}"
        );
    }
}
