//! Property tests for ceps-core: EXTRACT, the pipeline contract under both
//! score methods, and the auto-k inference bounds.

use ceps_core::{infer_soft_and_k, CepsConfig, CepsEngine, QueryType};
use ceps_graph::{GraphBuilder, NodeId};
use proptest::prelude::*;

/// Connected random graph: spanning path + chords.
fn arb_graph() -> impl Strategy<Value = ceps_graph::CsrGraph> {
    (4usize..=24).prop_flat_map(|n| {
        let chords = proptest::collection::vec((0..n, 0..n, 0.2f64..8.0), 0..3 * n);
        (Just(n), chords).prop_map(|(n, chords)| {
            let mut b = GraphBuilder::with_nodes(n);
            for i in 0..n - 1 {
                b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), 1.0)
                    .unwrap();
            }
            for (a, c, w) in chords {
                if a != c {
                    b.add_edge(NodeId(a as u32), NodeId(c as u32), w).unwrap();
                }
            }
            b.build().unwrap()
        })
    })
}

/// Distinct query picks within the graph.
fn queries_for(g: &ceps_graph::CsrGraph, picks: &[usize]) -> Vec<NodeId> {
    let mut qs: Vec<NodeId> = picks
        .iter()
        .map(|&p| NodeId((p % g.node_count()) as u32))
        .collect();
    qs.sort_unstable();
    qs.dedup();
    qs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Structural accounting of an AND run: fragmentation is bounded by
    /// the orphan count (each path is connected and touches its source;
    /// only orphan destinations can open new components), and with no
    /// orphans the subgraph is fully connected.
    #[test]
    fn and_subgraph_fragmentation_bounded_by_orphans(
        g in arb_graph(),
        picks in proptest::collection::vec(0usize..24, 2..4),
        budget in 1usize..10,
    ) {
        let queries = queries_for(&g, &picks);
        prop_assume!(queries.len() >= 2);
        let cfg = CepsConfig::default().budget(budget).query_type(QueryType::And);
        let res = CepsEngine::new(&g, cfg).unwrap().run(&queries).unwrap();
        let components = res.subgraph.component_count(&g);
        // Provable bound: H starts as ≤ Q query singletons; every key path
        // attaches to its source (never increasing the count) and every
        // orphan adds at most one component.
        prop_assert!(
            components <= queries.len() + res.orphan_destinations.len(),
            "{components} components with {} queries and {} orphans",
            queries.len(),
            res.orphan_destinations.len()
        );
    }

    /// Push scoring approximates iterative scoring: combined scores agree
    /// within a small tolerance and the pipeline contract holds. (Exact
    /// subgraph equality is NOT asserted — push perturbs exact score ties
    /// on symmetric graphs, legitimately flipping tie-breaks.)
    #[test]
    fn push_and_iterative_scores_agree(
        g in arb_graph(),
        picks in proptest::collection::vec(0usize..24, 2..4),
    ) {
        let queries = queries_for(&g, &picks);
        prop_assume!(queries.len() >= 2);
        let base = CepsConfig::default().budget(5);
        // Iterate beyond m=50 so truncation error is far below the push
        // threshold and both solvers approximate Eq. 12 well.
        let mut tight = base;
        tight.rwr.max_iterations = 200;
        let it = CepsEngine::new(&g, tight).unwrap().run(&queries).unwrap();
        let mut pushed_cfg = base.push_scores(1e-9);
        pushed_cfg.rwr.max_iterations = 200;
        let pu = CepsEngine::new(&g, pushed_cfg).unwrap().run(&queries).unwrap();
        for j in 0..g.node_count() {
            let d = (it.combined[j] - pu.combined[j]).abs();
            prop_assert!(d < 1e-6, "node {j}: combined differs by {d}");
        }
        for &q in &queries {
            prop_assert!(pu.subgraph.contains(q));
        }
    }

    /// auto-k always returns a coefficient in 1..=Q with Q-1 rank entries.
    #[test]
    fn auto_k_bounds(
        g in arb_graph(),
        picks in proptest::collection::vec(0usize..24, 1..5),
    ) {
        let queries = queries_for(&g, &picks);
        let engine = CepsEngine::new(&g, CepsConfig::default()).unwrap();
        let inf = infer_soft_and_k(&engine, &queries).unwrap();
        prop_assert!(inf.k >= 1 && inf.k <= queries.len(), "k = {} of Q = {}", inf.k, queries.len());
        if queries.len() > 1 {
            prop_assert_eq!(inf.mean_ranks.len(), queries.len() - 1);
            prop_assert!(inf.mean_ranks.iter().all(|&r| r >= 1.0));
        }
    }

    /// Explanations account for every extracted path exactly once.
    #[test]
    fn explanations_partition_the_paths(
        g in arb_graph(),
        picks in proptest::collection::vec(0usize..24, 2..4),
        budget in 1usize..8,
    ) {
        let queries = queries_for(&g, &picks);
        prop_assume!(queries.len() >= 2);
        let cfg = CepsConfig::default().budget(budget);
        let res = CepsEngine::new(&g, cfg).unwrap().run(&queries).unwrap();
        let expl = ceps_core::explain::explain(&res);
        let total: usize = expl.destinations.iter().map(|d| d.path_indices.len()).sum();
        prop_assert_eq!(total, res.paths.len());
        let mut seen = std::collections::HashSet::new();
        for d in &expl.destinations {
            for &pi in &d.path_indices {
                prop_assert!(seen.insert(pi), "path {pi} explained twice");
            }
        }
    }
}
