//! The community-structured co-authorship generator.

use ceps_graph::{CsrGraph, GraphBuilder, NodeId, NodeLabels};
use rand::{Rng, SeedableRng};

use crate::names::synthetic_name;

/// Identifier of a research community.
pub type CommunityId = u32;

/// Configuration for the co-authorship generator.
///
/// The defaults describe four research communities (the paper's query
/// repository draws from databases/mining, statistics/ML, IR and vision) of
/// equal size. `papers_per_author` drives density: the paper's DBLP graph
/// has ~1.8M weighted edges over ~315K authors, i.e. a mean weighted degree
/// around 12, which the default team sizes and paper counts roughly match at
/// any scale.
#[derive(Debug, Clone, PartialEq)]
pub struct CoauthorConfig {
    /// Number of communities.
    pub communities: usize,
    /// Authors per community.
    pub authors_per_community: usize,
    /// Papers generated per community.
    pub papers_per_community: usize,
    /// Fraction of papers with authors drawn from **two** communities —
    /// the cross-disciplinary collaborations the center-pieces of Figs. 1–3
    /// live on.
    pub cross_fraction: f64,
    /// Minimum authors on a paper (≥ 2 so every paper produces edges).
    pub min_team: usize,
    /// Maximum authors on a paper.
    pub max_team: usize,
    /// Zipf exponent of author productivity: author rank `r` (0-based,
    /// within its community) is sampled with weight `(r + 1)^(-exponent)`.
    pub productivity_exponent: f64,
    /// RNG seed; everything is deterministic given this.
    pub seed: u64,
}

impl Default for CoauthorConfig {
    fn default() -> Self {
        CoauthorConfig {
            communities: 4,
            authors_per_community: 250,
            papers_per_community: 750,
            cross_fraction: 0.12,
            min_team: 2,
            max_team: 4,
            productivity_exponent: 0.9,
            seed: 0,
        }
    }
}

impl CoauthorConfig {
    /// A ~100-node graph for unit tests and doc examples.
    pub fn tiny() -> Self {
        CoauthorConfig {
            authors_per_community: 25,
            papers_per_community: 80,
            ..Default::default()
        }
    }

    /// A ~1K-node graph — the default.
    pub fn small() -> Self {
        Self::default()
    }

    /// A ~10K-node graph for the evaluation sweeps.
    pub fn medium() -> Self {
        CoauthorConfig {
            authors_per_community: 2_500,
            papers_per_community: 9_000,
            ..Default::default()
        }
    }

    /// A ~80K-node graph for timing experiments.
    pub fn large() -> Self {
        CoauthorConfig {
            authors_per_community: 20_000,
            papers_per_community: 75_000,
            ..Default::default()
        }
    }

    /// DBLP scale (~315K authors) as in Sec. 7 — minutes to generate and
    /// walk; used only by the headline timing benchmark.
    pub fn paper_scale() -> Self {
        CoauthorConfig {
            authors_per_community: 78_750,
            papers_per_community: 300_000,
            ..Default::default()
        }
    }

    /// Sets the seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total author count.
    pub fn author_count(&self) -> usize {
        self.communities * self.authors_per_community
    }

    /// Runs the generator.
    ///
    /// # Panics
    /// Panics on degenerate configs (no communities, empty communities,
    /// `min_team < 2`, `max_team < min_team`, or teams larger than a
    /// community).
    pub fn generate(&self) -> CoauthorGraph {
        assert!(self.communities >= 1, "need at least one community");
        assert!(
            self.authors_per_community >= 2,
            "communities need >= 2 authors"
        );
        assert!(
            self.min_team >= 2,
            "papers need >= 2 authors to create edges"
        );
        assert!(self.max_team >= self.min_team, "max_team < min_team");
        assert!(
            self.max_team <= self.authors_per_community,
            "teams larger than a community"
        );
        assert!(
            (0.0..=1.0).contains(&self.cross_fraction),
            "cross_fraction must be a probability"
        );

        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let n = self.author_count();
        let apc = self.authors_per_community;

        // Zipf-ish productivity weights, shared shape across communities;
        // cumulative for O(log n) weighted sampling.
        let mut cum = Vec::with_capacity(apc);
        let mut acc = 0.0;
        for r in 0..apc {
            acc += ((r + 1) as f64).powf(-self.productivity_exponent);
            cum.push(acc);
        }
        let total_w = acc;

        let mut builder = GraphBuilder::with_nodes(n);
        let mut team: Vec<u32> = Vec::with_capacity(self.max_team);
        let total_papers = self.communities * self.papers_per_community;
        for _ in 0..total_papers {
            let home = rng.gen_range(0..self.communities);
            let away = if self.communities > 1 && rng.gen_bool(self.cross_fraction) {
                // A cross-community paper borrows from one other community.
                let mut other = rng.gen_range(0..self.communities - 1);
                if other >= home {
                    other += 1;
                }
                Some(other)
            } else {
                None
            };
            let size = rng.gen_range(self.min_team..=self.max_team);
            team.clear();
            let mut guard = 0;
            while team.len() < size && guard < 200 {
                guard += 1;
                // Each slot comes from the away community with prob 0.5 when
                // the paper is cross-community (at least one from each is
                // enforced post-hoc by the guard loop's retries).
                let c = match away {
                    Some(a) if rng.gen_bool(0.5) => a,
                    _ => home,
                };
                let u: f64 = rng.gen_range(0.0..total_w);
                let rank = cum.partition_point(|&x| x < u).min(apc - 1);
                let author = (c * apc + rank) as u32;
                if !team.contains(&author) {
                    team.push(author);
                }
            }
            for i in 0..team.len() {
                for j in (i + 1)..team.len() {
                    builder
                        .add_edge(NodeId(team[i]), NodeId(team[j]), 1.0)
                        .expect("generator produces valid edges");
                }
            }
        }

        let graph = builder.build().expect("non-empty generated graph");
        let labels = NodeLabels::from_names((0..n).map(synthetic_name));
        let community_of: Vec<CommunityId> = (0..n).map(|a| (a / apc) as CommunityId).collect();
        CoauthorGraph {
            graph,
            labels,
            community_of,
            config: self.clone(),
        }
    }
}

/// A generated co-authorship graph with its metadata.
#[derive(Debug, Clone)]
pub struct CoauthorGraph {
    /// The weighted graph `W` (edge weight = co-authored paper count).
    pub graph: CsrGraph,
    /// Author names.
    pub labels: NodeLabels,
    /// Community of each author.
    pub community_of: Vec<CommunityId>,
    /// The configuration that produced this graph.
    pub config: CoauthorConfig,
}

impl CoauthorGraph {
    /// Consumes self, returning just the graph.
    pub fn into_graph(self) -> CsrGraph {
        self.graph
    }

    /// Community of node `v`.
    pub fn community(&self, v: NodeId) -> CommunityId {
        self.community_of[v.index()]
    }

    /// All members of community `c`.
    pub fn community_members(&self, c: CommunityId) -> Vec<NodeId> {
        self.community_of
            .iter()
            .enumerate()
            .filter(|&(_, &cc)| cc == c)
            .map(|(v, _)| NodeId::from_index(v))
            .collect()
    }

    /// The `count` highest-weighted-degree members of community `c` —
    /// the "well-known researchers" a query repository wants.
    pub fn community_hubs(&self, c: CommunityId, count: usize) -> Vec<NodeId> {
        let mut members = self.community_members(c);
        members.sort_by(|&a, &b| {
            self.graph
                .degree(b)
                .total_cmp(&self.graph.degree(a))
                .then(a.0.cmp(&b.0))
        });
        members.truncate(count);
        members
    }

    /// Fraction of edge weight that crosses communities — a structural
    /// sanity metric (low = strong community structure).
    pub fn cross_community_weight_fraction(&self) -> f64 {
        let mut cross = 0.0;
        let mut total = 0.0;
        for (a, b, w) in self.graph.edges() {
            total += w;
            if self.community_of[a.index()] != self.community_of[b.index()] {
                cross += w;
            }
        }
        if total == 0.0 {
            0.0
        } else {
            cross / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::algo::largest_component;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = CoauthorConfig::tiny().seed(5).generate();
        let b = CoauthorConfig::tiny().seed(5).generate();
        assert_eq!(a.graph, b.graph);
        let c = CoauthorConfig::tiny().seed(6).generate();
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn has_expected_shape() {
        let g = CoauthorConfig::tiny().generate();
        assert_eq!(g.graph.node_count(), 100);
        assert!(
            g.graph.edge_count() > 100,
            "too sparse: {}",
            g.graph.edge_count()
        );
        assert_eq!(g.community_of.len(), 100);
        assert_eq!(g.community(NodeId(0)), 0);
        assert_eq!(g.community(NodeId(99)), 3);
    }

    #[test]
    fn communities_are_denser_inside_than_across() {
        let g = CoauthorConfig::small().seed(1).generate();
        let cross = g.cross_community_weight_fraction();
        // cross_fraction = 0.12 of papers, and those only half-cross, so the
        // cross weight share must sit well below 0.2.
        assert!(cross < 0.2, "cross fraction {cross}");
        assert!(cross > 0.0, "no bridges at all");
    }

    #[test]
    fn productivity_is_skewed() {
        let g = CoauthorConfig::small().seed(2).generate();
        // Rank-0 authors should far out-degree rank-last authors.
        let apc = g.config.authors_per_community as u32;
        let top = g.graph.degree(NodeId(0));
        let bottom = g.graph.degree(NodeId(apc - 1));
        assert!(top > 3.0 * bottom, "top {top}, bottom {bottom}");
    }

    #[test]
    fn giant_component_dominates() {
        let g = CoauthorConfig::small().seed(3).generate();
        let giant = largest_component(&g.graph);
        assert!(
            giant.len() * 10 >= g.graph.node_count() * 8,
            "giant component only {} of {}",
            giant.len(),
            g.graph.node_count()
        );
    }

    #[test]
    fn hubs_are_high_degree_community_members() {
        let g = CoauthorConfig::tiny().seed(4).generate();
        let hubs = g.community_hubs(1, 5);
        assert_eq!(hubs.len(), 5);
        for &h in &hubs {
            assert_eq!(g.community(h), 1);
        }
        // Hubs out-degree the community median.
        let members = g.community_members(1);
        let mut degs: Vec<f64> = members.iter().map(|&m| g.graph.degree(m)).collect();
        degs.sort_by(f64::total_cmp);
        let median = degs[degs.len() / 2];
        assert!(g.graph.degree(hubs[0]) >= median);
    }

    #[test]
    fn structural_profile_matches_coauthorship_networks() {
        // The DESIGN.md substitution argument: skewed degrees (gini well
        // above uniform) and high clustering (papers are cliques), the two
        // signature properties of co-authorship graphs.
        let g = CoauthorConfig::small().seed(8).generate();
        let s = ceps_graph::stats::graph_stats(&g.graph);
        assert!(
            s.degree_gini > 0.25,
            "degrees too uniform: gini {}",
            s.degree_gini
        );
        assert!(
            s.clustering > 0.1,
            "no triadic closure: clustering {}",
            s.clustering
        );
        assert!(s.mean_degree > 3.0, "graph too sparse: {}", s.mean_degree);
    }

    #[test]
    fn labels_cover_all_nodes() {
        let g = CoauthorConfig::tiny().generate();
        assert_eq!(g.labels.len(), 100);
        assert_eq!(g.labels.id(&g.labels.name(NodeId(42))), Some(NodeId(42)));
    }

    #[test]
    #[should_panic(expected = ">= 2 authors")]
    fn rejects_single_author_papers() {
        let cfg = CoauthorConfig {
            min_team: 1,
            ..CoauthorConfig::tiny()
        };
        let _ = cfg.generate();
    }
}
