//! Loading real co-authorship data.
//!
//! The paper's DBLP snapshot is not redistributable, but anyone with a
//! co-authorship export can run this library on it. The format here is the
//! simplest one such exports reduce to: one co-author pair per line,
//!
//! ```text
//! # comment lines allowed
//! Rakesh Agrawal <tab> Jiawei Han <tab> 7
//! Jiawei Han <tab> Philip S. Yu <tab> 31
//! ```
//!
//! (fields separated by tabs — author names may contain spaces; the count
//! is the number of co-authored papers and may be omitted, defaulting
//! to 1). Authors are interned in first-appearance order; repeated pairs
//! accumulate weight, matching the generator's semantics.

use std::collections::HashMap;
use std::io::BufRead;

use ceps_graph::{GraphBuilder, GraphError, NodeId, NodeLabels};

use crate::communities::{CoauthorConfig, CoauthorGraph};

/// Reads tab-separated co-author pairs into a [`CoauthorGraph`].
///
/// Community labels are unknown for external data, so every author is
/// assigned community 0 (the repository helpers that need communities
/// should not be used on external data; CePS itself never reads them).
///
/// # Errors
/// [`GraphError::Parse`] with a line number for malformed lines, or any
/// underlying I/O error.
pub fn read_coauthor_pairs<R: BufRead>(input: R) -> Result<CoauthorGraph, GraphError> {
    let mut labels = NodeLabels::new();
    let mut index: HashMap<String, NodeId> = HashMap::new();
    let mut builder = GraphBuilder::new();

    for (idx, line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split('\t');
        let (a, b) = match (fields.next(), fields.next()) {
            (Some(a), Some(b)) if !a.trim().is_empty() && !b.trim().is_empty() => {
                (a.trim(), b.trim())
            }
            _ => {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: format!("expected `author1<TAB>author2[<TAB>count]`, got {trimmed:?}"),
                })
            }
        };
        let weight: f64 = match fields.next() {
            None => 1.0,
            Some(w) => w.trim().parse().map_err(|_| GraphError::Parse {
                line: line_no,
                message: format!("invalid paper count {w:?}"),
            })?,
        };
        if a == b {
            return Err(GraphError::Parse {
                line: line_no,
                message: format!("self-collaboration for {a:?}"),
            });
        }
        let mut intern = |name: &str| -> NodeId {
            *index
                .entry(name.to_string())
                .or_insert_with(|| labels.push(name))
        };
        let (na, nb) = (intern(a), intern(b));
        builder.add_edge(na, nb, weight)?;
    }

    let graph = builder.build()?;
    let n = graph.node_count();
    Ok(CoauthorGraph {
        graph,
        labels,
        community_of: vec![0; n],
        config: CoauthorConfig {
            communities: 1,
            ..CoauthorConfig::default()
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "\
# toy co-authorship export
Rakesh Agrawal\tJiawei Han\t7
Jiawei Han\tPhilip S. Yu\t31
Rakesh Agrawal\tJiawei Han\t2
Philip S. Yu\tCharu Aggarwal
";

    #[test]
    fn parses_names_weights_and_merges_duplicates() {
        let data = read_coauthor_pairs(Cursor::new(SAMPLE)).unwrap();
        assert_eq!(data.graph.node_count(), 4);
        assert_eq!(data.graph.edge_count(), 3);
        let agrawal = data.labels.id("Rakesh Agrawal").unwrap();
        let han = data.labels.id("Jiawei Han").unwrap();
        assert_eq!(data.graph.weight(agrawal, han), Some(9.0)); // 7 + 2
        let yu = data.labels.id("Philip S. Yu").unwrap();
        let charu = data.labels.id("Charu Aggarwal").unwrap();
        assert_eq!(data.graph.weight(yu, charu), Some(1.0)); // default count
    }

    #[test]
    fn authors_interned_in_first_appearance_order() {
        let data = read_coauthor_pairs(Cursor::new(SAMPLE)).unwrap();
        assert_eq!(data.labels.name(NodeId(0)), "Rakesh Agrawal");
        assert_eq!(data.labels.name(NodeId(1)), "Jiawei Han");
    }

    #[test]
    fn malformed_lines_report_positions() {
        let err = read_coauthor_pairs(Cursor::new("only one field\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = read_coauthor_pairs(Cursor::new("A\tB\tbanana\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = read_coauthor_pairs(Cursor::new("A\tA\t3\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn loaded_graph_runs_through_ceps() {
        use ceps_graph::algo::largest_component;
        let data = read_coauthor_pairs(Cursor::new(SAMPLE)).unwrap();
        // The toy graph is one chain; CePS machinery accepts it as-is.
        assert_eq!(largest_component(&data.graph).len(), 4);
    }
}
