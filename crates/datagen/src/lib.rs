//! # ceps-datagen
//!
//! Seeded synthetic **co-authorship graphs** standing in for the paper's
//! DBLP snapshot (Sec. 7: ~315K authors, ~1.8M weighted edges, edge weight =
//! number of co-authored papers).
//!
//! The generator reproduces the structural properties the paper's
//! experiments actually depend on:
//!
//! * **research communities** — papers are mostly written inside one
//!   community, occasionally across two, so communities are dense with
//!   sparse bridges (what Figs. 1–3 visualize and what the pre-partition
//!   speedup of Sec. 6 exploits);
//! * **skewed productivity** — author paper counts follow a power law, so
//!   degrees are heterogeneous (what the `α`-normalization study of
//!   Sec. 7.3 is about);
//! * **weighted multi-edges** — every paper adds one unit of weight to each
//!   co-author pair, exactly the paper's edge-weight definition.
//!
//! Everything is deterministic given the seed. The query repository module
//! mirrors the paper's setup of 13 + 13 + 11 + 11 hand-picked researchers
//! from four sub-fields ([`QueryRepository`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod communities;
pub mod external;
mod names;
mod repository;

pub use communities::{CoauthorConfig, CoauthorGraph, CommunityId};
pub use external::read_coauthor_pairs;
pub use names::synthetic_name;
pub use repository::QueryRepository;
