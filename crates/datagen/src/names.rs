//! Deterministic synthetic author names.
//!
//! Purely presentational (see `ceps_graph::labels`): the case-study examples
//! print subgraphs the way the paper's figures do, with author names, so the
//! generator gives every node one. Names are built from fixed syllable
//! tables plus a disambiguating numeral when the tables recycle —
//! uniqueness is guaranteed for any index.

const GIVEN: &[&str] = &[
    "Ada", "Bela", "Chen", "Dana", "Elif", "Femi", "Goro", "Hana", "Ivo", "Jun", "Kara", "Luis",
    "Mei", "Nils", "Omar", "Priya", "Quinn", "Rosa", "Sven", "Tara", "Uma", "Vik", "Wei", "Xiu",
    "Yara", "Zane", "Anouk", "Bram", "Cleo", "Dmitri", "Esra", "Farid",
];

const FAMILY: &[&str] = &[
    "Abara",
    "Brandt",
    "Castillo",
    "Dubois",
    "Eriksen",
    "Fontana",
    "Grewal",
    "Haddad",
    "Ivanova",
    "Jansen",
    "Kowalski",
    "Lindqvist",
    "Moreau",
    "Nakamura",
    "Okafor",
    "Petrov",
    "Quispe",
    "Rossi",
    "Sato",
    "Tanaka",
    "Ueda",
    "Varga",
    "Weber",
    "Xu",
    "Yilmaz",
    "Zhang",
    "Almeida",
    "Bergstrom",
    "Chowdhury",
    "Dimitrov",
    "Eze",
    "Fischer",
];

/// The `index`-th synthetic author name. Distinct indices map to distinct
/// names.
pub fn synthetic_name(index: usize) -> String {
    let given = GIVEN[index % GIVEN.len()];
    let family = FAMILY[(index / GIVEN.len()) % FAMILY.len()];
    let cycle = index / (GIVEN.len() * FAMILY.len());
    if cycle == 0 {
        format!("{given} {family}")
    } else {
        format!("{given} {family} {}", cycle + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_are_unique_over_a_large_range() {
        let mut seen = HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(synthetic_name(i)), "collision at {i}");
        }
    }

    #[test]
    fn names_are_deterministic() {
        assert_eq!(synthetic_name(0), synthetic_name(0));
        assert_eq!(synthetic_name(0), "Ada Abara");
    }

    #[test]
    fn recycled_names_get_numerals() {
        let first_cycle = GIVEN.len() * FAMILY.len();
        assert!(synthetic_name(first_cycle).ends_with(" 2"));
    }
}
