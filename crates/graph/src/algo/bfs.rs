//! Breadth-first search primitives.

use std::collections::VecDeque;

use crate::{CsrGraph, NodeId};

/// Visits nodes reachable from `start` in BFS order and returns them.
pub fn bfs_order(graph: &CsrGraph, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for (u, _) in graph.neighbors(v) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                queue.push_back(u);
            }
        }
    }
    order
}

/// Returns the set of nodes reachable from `start` as a boolean mask.
pub fn bfs_reachable(graph: &CsrGraph, start: NodeId) -> Vec<bool> {
    let mut seen = vec![false; graph.node_count()];
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        for (u, _) in graph.neighbors(v) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                queue.push_back(u);
            }
        }
    }
    seen
}

/// Unweighted hop distances from `start`; unreachable nodes get `u32::MAX`.
pub fn hop_distances(graph: &CsrGraph, start: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; graph.node_count()];
    let mut queue = VecDeque::new();
    dist[start.index()] = 0;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        for (u, _) in graph.neighbors(v) {
            if dist[u.index()] == u32::MAX {
                dist[u.index()] = d + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Path 0-1-2 plus isolated pair 3-4.
    fn two_components() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(3), NodeId(4), 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn order_starts_at_source_and_stays_in_component() {
        let g = two_components();
        let order = bfs_order(&g, NodeId(0));
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn reachability_mask() {
        let g = two_components();
        let r = bfs_reachable(&g, NodeId(4));
        assert_eq!(r, vec![false, false, false, true, true]);
    }

    #[test]
    fn hop_distances_and_unreachable_sentinel() {
        let g = two_components();
        let d = hop_distances(&g, NodeId(0));
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], 2);
        assert_eq!(d[3], u32::MAX);
    }
}
