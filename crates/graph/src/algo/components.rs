//! Connected components.

use crate::{CsrGraph, NodeId};

/// A labelling of every node with its connected-component index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLabels {
    /// `labels[v] = component index` in `0..count`.
    pub labels: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl ComponentLabels {
    /// Component index of `v`.
    pub fn component_of(&self, v: NodeId) -> u32 {
        self.labels[v.index()]
    }

    /// Whether `a` and `b` share a component.
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.labels[a.index()] == self.labels[b.index()]
    }

    /// Sizes of all components, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }
}

/// Labels connected components with an iterative DFS; `O(V + E)`.
pub fn connected_components(graph: &CsrGraph) -> ComponentLabels {
    let n = graph.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack = Vec::new();
    for start in 0..n {
        if labels[start] != u32::MAX {
            continue;
        }
        labels[start] = count;
        stack.push(NodeId::from_index(start));
        while let Some(v) = stack.pop() {
            for (u, _) in graph.neighbors(v) {
                if labels[u.index()] == u32::MAX {
                    labels[u.index()] = count;
                    stack.push(u);
                }
            }
        }
        count += 1;
    }
    ComponentLabels {
        labels,
        count: count as usize,
    }
}

/// Nodes of the largest connected component (ties broken by lowest label).
pub fn largest_component(graph: &CsrGraph) -> Vec<NodeId> {
    let comp = connected_components(graph);
    let sizes = comp.sizes();
    let Some((best, _)) = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(i, &s)| (s, usize::MAX - i))
    else {
        return Vec::new();
    };
    graph
        .nodes()
        .filter(|&v| comp.component_of(v) == best as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn labels_partition_the_nodes() {
        // 0-1, 2-3-4, isolated 5.
        let mut b = GraphBuilder::with_nodes(6);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        b.add_edge(NodeId(3), NodeId(4), 1.0).unwrap();
        let g = b.build().unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert!(c.same_component(NodeId(0), NodeId(1)));
        assert!(c.same_component(NodeId(2), NodeId(4)));
        assert!(!c.same_component(NodeId(0), NodeId(2)));
        assert!(!c.same_component(NodeId(5), NodeId(4)));
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
    }

    #[test]
    fn largest_component_returns_biggest() {
        let mut b = GraphBuilder::with_nodes(6);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        b.add_edge(NodeId(3), NodeId(4), 1.0).unwrap();
        let g = b.build().unwrap();
        let big = largest_component(&g);
        assert_eq!(big, vec![NodeId(2), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn single_component_whole_graph() {
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        let g = b.build().unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
        assert_eq!(largest_component(&g).len(), 3);
    }
}
