//! Dijkstra shortest paths over *costs* derived from edge weights.
//!
//! The co-authorship weights are affinities (more papers = stronger tie), so
//! the shortest-path baselines invert them: the cost of an edge of weight `w`
//! is `1 / w`. This module keeps that policy with the caller — it takes a
//! cost function — so tests can also run plain unit costs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{CsrGraph, NodeId};

/// Result of a single-source Dijkstra run.
#[derive(Debug, Clone)]
pub struct PathCost {
    /// `dist[v]` = minimal cost from the source, `f64::INFINITY` if
    /// unreachable.
    pub dist: Vec<f64>,
    /// `parent[v]` = predecessor on a cheapest path, `u32::MAX` for the
    /// source and unreachable nodes.
    pub parent: Vec<u32>,
}

impl PathCost {
    /// Reconstructs the node sequence from the source to `target`
    /// (inclusive), or `None` if `target` is unreachable.
    pub fn path_to(&self, source: NodeId, target: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[target.index()].is_infinite() {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while cur != source {
            let p = self.parent[cur.index()];
            if p == u32::MAX {
                return None;
            }
            cur = NodeId(p);
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// Min-heap entry; `f64` costs ordered via total order on finite values.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap; costs are finite by construction.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest paths with per-edge cost `cost(weight)`.
///
/// # Panics
/// Panics (in debug builds) if `cost` returns a negative or non-finite value.
pub fn dijkstra<F>(graph: &CsrGraph, source: NodeId, cost: F) -> PathCost
where
    F: Fn(f64) -> f64,
{
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![u32::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: source.0,
    });
    while let Some(HeapEntry { cost: d, node }) = heap.pop() {
        if d > dist[node as usize] {
            continue; // stale entry
        }
        let v = NodeId(node);
        for (u, w) in graph.neighbors(v) {
            let c = cost(w);
            debug_assert!(
                c.is_finite() && c >= 0.0,
                "edge cost must be finite and non-negative"
            );
            let nd = d + c;
            if nd < dist[u.index()] {
                dist[u.index()] = nd;
                parent[u.index()] = node;
                heap.push(HeapEntry {
                    cost: nd,
                    node: u.0,
                });
            }
        }
    }
    PathCost { dist, parent }
}

/// Cheapest path between two nodes under `cost`, or `None` if disconnected.
pub fn shortest_path<F>(
    graph: &CsrGraph,
    source: NodeId,
    target: NodeId,
    cost: F,
) -> Option<(Vec<NodeId>, f64)>
where
    F: Fn(f64) -> f64,
{
    let run = dijkstra(graph, source, cost);
    run.path_to(source, target)
        .map(|p| (p, run.dist[target.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Square 0-1-2-3-0 with a heavy (cheap) diagonal path 0-4-2.
    fn square_with_shortcut() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for (a, bb, w) in [
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (3, 0, 1.0),
            (0, 4, 10.0),
            (4, 2, 10.0),
        ] {
            b.add_edge(NodeId(a), NodeId(bb), w).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn unit_costs_prefer_fewer_hops() {
        let g = square_with_shortcut();
        let (path, cost) = shortest_path(&g, NodeId(0), NodeId(2), |_| 1.0).unwrap();
        assert_eq!(cost, 2.0);
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn inverse_weight_costs_prefer_strong_ties() {
        let g = square_with_shortcut();
        // Via 4: cost 0.1 + 0.1 = 0.2 beats via 1: 1.0 + 1.0.
        let (path, cost) = shortest_path(&g, NodeId(0), NodeId(2), |w| 1.0 / w).unwrap();
        assert_eq!(path, vec![NodeId(0), NodeId(4), NodeId(2)]);
        assert!((cost - 0.2).abs() < 1e-12);
    }

    #[test]
    fn unreachable_target_is_none() {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let g = b.build().unwrap();
        assert!(shortest_path(&g, NodeId(0), NodeId(2), |_| 1.0).is_none());
    }

    #[test]
    fn source_path_is_trivial() {
        let g = square_with_shortcut();
        let run = dijkstra(&g, NodeId(0), |_| 1.0);
        assert_eq!(run.path_to(NodeId(0), NodeId(0)), Some(vec![NodeId(0)]));
        assert_eq!(run.dist[0], 0.0);
    }

    #[test]
    fn distances_satisfy_triangle_inequality_on_tree() {
        let g = square_with_shortcut();
        let run = dijkstra(&g, NodeId(0), |w| 1.0 / w);
        for (a, b, w) in g.edges() {
            let c = 1.0 / w;
            assert!(run.dist[a.index()] <= run.dist[b.index()] + c + 1e-12);
            assert!(run.dist[b.index()] <= run.dist[a.index()] + c + 1e-12);
        }
    }
}
