//! Classic graph algorithms used by baselines, the partitioner and tests.

mod bfs;
mod components;
mod dijkstra;

pub use bfs::{bfs_order, bfs_reachable, hop_distances};
pub use components::{connected_components, largest_component, ComponentLabels};
pub use dijkstra::{dijkstra, shortest_path, PathCost};
