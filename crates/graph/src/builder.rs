//! Incremental construction of [`CsrGraph`]s.

use crate::{CsrGraph, GraphError, NodeId, Result};

/// Accumulates weighted undirected edges and produces an immutable
/// [`CsrGraph`].
///
/// The builder:
///
/// * validates weights (finite, `> 0`) and rejects self-loops;
/// * **merges duplicate edges by summing their weights** — the natural
///   semantics for a co-authorship graph where each paper contributes one
///   unit of weight to every author pair (Sec. 7, "the edge weight is the
///   number of co-authored papers");
/// * grows the node count to cover the highest id it sees, so callers may
///   either pre-declare the node count or let edges define it.
///
/// # Examples
///
/// ```
/// use ceps_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
/// b.add_edge(NodeId(1), NodeId(0), 2.0).unwrap(); // merged: weight 3.0
/// b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
/// let g = b.build().unwrap();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.weight(NodeId(0), NodeId(1)), Some(3.0));
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    node_count: usize,
    /// Each undirected edge stored once with endpoints ordered `lo <= hi`.
    edges: Vec<(u32, u32, f64)>,
}

impl GraphBuilder {
    /// Creates an empty builder; the node count grows with the edges added.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder that already knows it has `node_count` nodes
    /// (ids `0..node_count`), allowing isolated nodes.
    pub fn with_nodes(node_count: usize) -> Self {
        GraphBuilder {
            node_count,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates space for `edges` undirected edges.
    pub fn with_capacity(node_count: usize, edges: usize) -> Self {
        GraphBuilder {
            node_count,
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of nodes the builder currently covers.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of (not yet deduplicated) edge insertions so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Ensures ids `0..count` are valid even if no edge touches them.
    pub fn ensure_nodes(&mut self, count: usize) {
        self.node_count = self.node_count.max(count);
    }

    /// Adds an undirected edge `{a, b}` of weight `w`.
    ///
    /// Duplicate `{a, b}` insertions are merged by summing weights at
    /// [`build`](Self::build) time.
    ///
    /// # Errors
    /// [`GraphError::InvalidWeight`] if `w` is not finite and positive;
    /// [`GraphError::SelfLoop`] if `a == b`.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, w: f64) -> Result<()> {
        if !(w.is_finite() && w > 0.0) {
            return Err(GraphError::InvalidWeight {
                from: a,
                to: b,
                weight: w,
            });
        }
        if a == b {
            return Err(GraphError::SelfLoop { node: a });
        }
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        self.node_count = self.node_count.max(hi as usize + 1);
        self.edges.push((lo, hi, w));
        Ok(())
    }

    /// Bulk-adds edges; stops at the first invalid one.
    pub fn add_edges<I>(&mut self, edges: I) -> Result<()>
    where
        I: IntoIterator<Item = (NodeId, NodeId, f64)>,
    {
        for (a, b, w) in edges {
            self.add_edge(a, b, w)?;
        }
        Ok(())
    }

    /// Finalizes the builder into an immutable CSR graph.
    ///
    /// Runs in `O(E log E + V)`: edges are sorted by endpoint pair, duplicates
    /// merged, and both directed arcs laid out in CSR order.
    ///
    /// # Errors
    /// [`GraphError::EmptyGraph`] if no node was ever declared;
    /// [`GraphError::TooManyArcs`] if the deduplicated edges need more
    /// directed arcs than the `u32` CSR offsets can index.
    pub fn build(mut self) -> Result<CsrGraph> {
        if self.node_count == 0 {
            return Err(GraphError::EmptyGraph);
        }

        // Merge duplicate undirected edges by summing weights.
        self.edges
            .sort_unstable_by(|x, y| (x.0, x.1).cmp(&(y.0, y.1)));
        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(self.edges.len());
        for (lo, hi, w) in self.edges {
            match merged.last_mut() {
                Some(last) if last.0 == lo && last.1 == hi => last.2 += w,
                _ => merged.push((lo, hi, w)),
            }
        }

        // Every undirected edge becomes two directed arcs; refuse counts the
        // u32 CSR offsets cannot represent instead of silently wrapping.
        CsrGraph::ensure_arc_capacity(merged.len().saturating_mul(2))?;

        Ok(CsrGraph::from_dedup_edges(self.node_count, &merged))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_duplicates_in_either_orientation() {
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(2), NodeId(5), 1.5).unwrap();
        b.add_edge(NodeId(5), NodeId(2), 0.5).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.weight(NodeId(2), NodeId(5)), Some(2.0));
        assert_eq!(g.weight(NodeId(5), NodeId(2)), Some(2.0));
    }

    #[test]
    fn rejects_bad_weights() {
        let mut b = GraphBuilder::new();
        for w in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                b.add_edge(NodeId(0), NodeId(1), w),
                Err(GraphError::InvalidWeight { .. })
            ));
        }
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new();
        assert!(matches!(
            b.add_edge(NodeId(3), NodeId(3), 1.0),
            Err(GraphError::SelfLoop { .. })
        ));
    }

    #[test]
    fn empty_build_fails_but_isolated_nodes_allowed() {
        assert!(matches!(
            GraphBuilder::new().build(),
            Err(GraphError::EmptyGraph)
        ));
        let g = GraphBuilder::with_nodes(4).build().unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(NodeId(3)), 0.0);
    }

    #[test]
    fn edges_grow_node_count() {
        let mut b = GraphBuilder::with_nodes(2);
        b.add_edge(NodeId(0), NodeId(9), 1.0).unwrap();
        assert_eq!(b.node_count(), 10);
    }

    #[test]
    fn bulk_add_stops_on_error() {
        let mut b = GraphBuilder::new();
        let res = b.add_edges(vec![
            (NodeId(0), NodeId(1), 1.0),
            (NodeId(1), NodeId(1), 1.0), // self-loop
            (NodeId(1), NodeId(2), 1.0),
        ]);
        assert!(res.is_err());
        assert_eq!(b.pending_edges(), 1);
    }
}
