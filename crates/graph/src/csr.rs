//! The immutable compressed-sparse-row graph.

use std::sync::Arc;

use crate::{GraphError, NodeId, Result};

/// An immutable edge-weighted undirected graph in compressed-sparse-row form.
///
/// Both directed arcs of every undirected edge are stored, so a node's
/// neighborhood is one contiguous slice — the access pattern the RWR power
/// iteration (Eq. 4) and the EXTRACT path DP (Table 3) hammer in their inner
/// loops. Within a node's slice, neighbors are sorted by id, which makes
/// `weight(a, b)` a binary search and keeps iteration deterministic.
///
/// Construct with [`crate::GraphBuilder`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` delimits node `v`'s arcs. Length `n + 1`.
    offsets: Vec<u32>,
    /// Arc targets, grouped by source, sorted within each group.
    targets: Vec<u32>,
    /// Arc weights, parallel to `targets`.
    weights: Vec<f64>,
    /// Weighted degree `d_v = Σ_u w(v, u)` (the row sums of `W`, Table 2).
    degrees: Vec<f64>,
}

impl CsrGraph {
    /// Checks that `arcs` directed arcs fit the `u32` CSR offsets.
    ///
    /// # Errors
    /// [`GraphError::TooManyArcs`] when the count exceeds `u32::MAX` — the
    /// offsets array would silently wrap otherwise.
    pub(crate) fn ensure_arc_capacity(arcs: usize) -> Result<()> {
        if arcs > u32::MAX as usize {
            Err(GraphError::TooManyArcs { arcs })
        } else {
            Ok(())
        }
    }

    /// Builds from undirected edges that are already deduplicated and sorted
    /// by `(lo, hi)` with `lo < hi`. Internal: use [`crate::GraphBuilder`],
    /// which runs [`CsrGraph::ensure_arc_capacity`] first.
    pub(crate) fn from_dedup_edges(node_count: usize, edges: &[(u32, u32, f64)]) -> Self {
        let n = node_count;
        let mut counts = vec![0u32; n + 1];
        for &(a, b, _) in edges {
            counts[a as usize + 1] += 1;
            counts[b as usize + 1] += 1;
        }
        let mut offsets = counts;
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let arc_count = offsets[n] as usize;
        let mut targets = vec![0u32; arc_count];
        let mut weights = vec![0f64; arc_count];
        let mut cursor = offsets.clone();
        for &(a, b, w) in edges {
            // Edges arrive sorted by (a, b); writing both arcs in this order
            // leaves each node's slice sorted by target because for a fixed
            // source the opposite endpoints appear in increasing order.
            let ca = cursor[a as usize] as usize;
            targets[ca] = b;
            weights[ca] = w;
            cursor[a as usize] += 1;
            let cb = cursor[b as usize] as usize;
            targets[cb] = a;
            weights[cb] = w;
            cursor[b as usize] += 1;
        }
        // The two-pass write above leaves each slice *almost* sorted (arcs to
        // lower ids from the `b` role interleave with arcs to higher ids from
        // the `a` role), so sort each slice explicitly. Slices are short
        // (average degree), so this is cheap and unconditionally correct.
        let mut degrees = vec![0f64; n];
        for v in 0..n {
            let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
            let mut pairs: Vec<(u32, f64)> = targets[s..e]
                .iter()
                .copied()
                .zip(weights[s..e].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|&(t, _)| t);
            let mut deg = 0.0;
            for (i, (t, w)) in pairs.into_iter().enumerate() {
                targets[s + i] = t;
                weights[s + i] = w;
                deg += w;
            }
            degrees[v] = deg;
        }
        CsrGraph {
            offsets,
            targets,
            weights,
            degrees,
        }
    }

    /// Number of nodes; valid ids are `0..node_count`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.degrees.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Number of stored arcs (twice the edge count).
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.targets.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Weighted degree `d_v` — the sum of `v`'s incident edge weights
    /// (the diagonal of `D` in Table 2).
    #[inline]
    pub fn degree(&self, v: NodeId) -> f64 {
        self.degrees[v.index()]
    }

    /// Unweighted degree (neighbor count).
    #[inline]
    pub fn neighbor_count(&self, v: NodeId) -> usize {
        let v = v.index();
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Iterates `v`'s neighbors with edge weights, in increasing id order.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> NeighborIter<'_> {
        let v = v.index();
        let (s, e) = (self.offsets[v] as usize, self.offsets[v + 1] as usize);
        NeighborIter {
            targets: &self.targets[s..e],
            weights: &self.weights[s..e],
            pos: 0,
        }
    }

    /// Raw neighbor-id slice for `v` (sorted ascending) — the zero-overhead
    /// access the inner loops use.
    #[inline]
    pub fn neighbor_ids(&self, v: NodeId) -> &[u32] {
        let v = v.index();
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Raw weight slice parallel to [`neighbor_ids`](Self::neighbor_ids).
    #[inline]
    pub fn neighbor_weights(&self, v: NodeId) -> &[f64] {
        let v = v.index();
        &self.weights[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Weight of edge `{a, b}`, or `None` if absent. `O(log deg(a))`.
    pub fn weight(&self, a: NodeId, b: NodeId) -> Option<f64> {
        let ids = self.neighbor_ids(a);
        ids.binary_search(&b.0)
            .ok()
            .map(|i| self.neighbor_weights(a)[i])
    }

    /// Whether `{a, b}` is an edge.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbor_ids(a).binary_search(&b.0).is_ok()
    }

    /// Validates that `v` is a node of this graph.
    pub fn check_node(&self, v: NodeId) -> Result<()> {
        if v.index() < self.node_count() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds {
                node: v,
                node_count: self.node_count(),
            })
        }
    }

    /// Iterates every undirected edge once as `(lo, hi, weight)` with
    /// `lo < hi`, in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.nodes().flat_map(move |v| {
            self.neighbors(v)
                .filter(move |&(u, _)| v.0 < u.0)
                .map(move |(u, w)| (v, u, w))
        })
    }

    /// Total edge weight `Σ_{lo<hi} w(lo, hi)`.
    pub fn total_weight(&self) -> f64 {
        self.degrees.iter().sum::<f64>() / 2.0
    }

    /// Maximum weighted degree, or 0 for an edgeless graph.
    pub fn max_degree(&self) -> f64 {
        self.degrees.iter().copied().fold(0.0, f64::max)
    }
}

/// Conversion into a shared, reference-counted graph handle.
///
/// The query engines (`CepsEngine`, `FastCeps`, `CepsService`) own their
/// graph as an `Arc<CsrGraph>` so one normalized graph can back any number
/// of engines and serving workers without lifetimes tying them to a stack
/// frame. This trait lets their constructors accept whichever form the
/// caller has:
///
/// * `Arc<CsrGraph>` / `&Arc<CsrGraph>` — shared, zero-copy (the form a
///   long-lived service should use);
/// * `CsrGraph` — takes ownership, wraps in a fresh `Arc`;
/// * `&CsrGraph` — **clones** the graph into a fresh `Arc`. Convenient for
///   tests and one-shot runs; for large graphs prefer passing an `Arc`.
pub trait IntoSharedGraph {
    /// Produces the shared handle.
    fn into_shared_graph(self) -> Arc<CsrGraph>;
}

impl IntoSharedGraph for Arc<CsrGraph> {
    fn into_shared_graph(self) -> Arc<CsrGraph> {
        self
    }
}

impl IntoSharedGraph for &Arc<CsrGraph> {
    fn into_shared_graph(self) -> Arc<CsrGraph> {
        Arc::clone(self)
    }
}

impl IntoSharedGraph for CsrGraph {
    fn into_shared_graph(self) -> Arc<CsrGraph> {
        Arc::new(self)
    }
}

impl IntoSharedGraph for &CsrGraph {
    fn into_shared_graph(self) -> Arc<CsrGraph> {
        Arc::new(self.clone())
    }
}

/// Iterator over `(neighbor, weight)` pairs of one node.
#[derive(Debug, Clone)]
pub struct NeighborIter<'a> {
    targets: &'a [u32],
    weights: &'a [f64],
    pos: usize,
}

impl Iterator for NeighborIter<'_> {
    type Item = (NodeId, f64);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        let i = self.pos;
        if i < self.targets.len() {
            self.pos += 1;
            Some((NodeId(self.targets[i]), self.weights[i]))
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.targets.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// A 4-node path 0-1-2-3 with weights 1, 2, 3.
    fn path4() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 3.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts_and_degrees() {
        let g = path4();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.arc_count(), 6);
        assert_eq!(g.degree(NodeId(0)), 1.0);
        assert_eq!(g.degree(NodeId(1)), 3.0);
        assert_eq!(g.degree(NodeId(2)), 5.0);
        assert_eq!(g.degree(NodeId(3)), 3.0);
        assert_eq!(g.total_weight(), 6.0);
        assert_eq!(g.max_degree(), 5.0);
    }

    #[test]
    fn neighbors_sorted_and_weighted() {
        let g = path4();
        let n1: Vec<_> = g.neighbors(NodeId(1)).collect();
        assert_eq!(n1, vec![(NodeId(0), 1.0), (NodeId(2), 2.0)]);
        assert_eq!(g.neighbor_ids(NodeId(2)), &[1, 3]);
        assert_eq!(g.neighbor_weights(NodeId(2)), &[2.0, 3.0]);
    }

    #[test]
    fn weight_lookup() {
        let g = path4();
        assert_eq!(g.weight(NodeId(0), NodeId(1)), Some(1.0));
        assert_eq!(g.weight(NodeId(1), NodeId(0)), Some(1.0));
        assert_eq!(g.weight(NodeId(0), NodeId(2)), None);
        assert!(g.has_edge(NodeId(2), NodeId(3)));
        assert!(!g.has_edge(NodeId(0), NodeId(3)));
    }

    #[test]
    fn edges_enumerated_once_in_order() {
        let g = path4();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![
                (NodeId(0), NodeId(1), 1.0),
                (NodeId(1), NodeId(2), 2.0),
                (NodeId(2), NodeId(3), 3.0),
            ]
        );
    }

    #[test]
    fn check_node_bounds() {
        let g = path4();
        assert!(g.check_node(NodeId(3)).is_ok());
        assert!(g.check_node(NodeId(4)).is_err());
    }

    #[test]
    fn star_graph_neighbor_order() {
        // Hub 5 connected to 0..5; ensures slices stay sorted when the hub's
        // arcs are written from the "b" role.
        let mut b = GraphBuilder::new();
        for i in 0..5u32 {
            b.add_edge(NodeId(i), NodeId(5), (i + 1) as f64).unwrap();
        }
        let g = b.build().unwrap();
        assert_eq!(g.neighbor_ids(NodeId(5)), &[0, 1, 2, 3, 4]);
        assert_eq!(g.neighbor_weights(NodeId(5)), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(g.degree(NodeId(5)), 15.0);
    }

    #[test]
    fn arc_capacity_guard_rejects_u32_overflow() {
        // 2 × edges must stay indexable by the u32 offsets; the boundary
        // value itself is fine, one past it is not.
        assert!(CsrGraph::ensure_arc_capacity(0).is_ok());
        assert!(CsrGraph::ensure_arc_capacity(u32::MAX as usize).is_ok());
        assert!(matches!(
            CsrGraph::ensure_arc_capacity(u32::MAX as usize + 1),
            Err(GraphError::TooManyArcs { arcs }) if arcs == u32::MAX as usize + 1
        ));
    }

    #[test]
    fn into_shared_graph_preserves_and_shares() {
        let g = path4();
        // &CsrGraph clones into a fresh Arc.
        let a1 = (&g).into_shared_graph();
        assert_eq!(*a1, g);
        // Arc and &Arc share the same allocation.
        let a2 = Arc::clone(&a1).into_shared_graph();
        assert!(Arc::ptr_eq(&a1, &a2));
        let a3 = (&a1).into_shared_graph();
        assert!(Arc::ptr_eq(&a1, &a3));
        // Owned graph moves in without cloning.
        let a4 = g.into_shared_graph();
        assert_eq!(a4.node_count(), 4);
    }
}
