//! Typed errors for graph construction and manipulation.

use std::fmt;

use crate::NodeId;

/// Errors produced by `ceps-graph`.
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id referenced a node outside `0..node_count`.
    NodeOutOfBounds {
        /// The offending id.
        node: NodeId,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// An edge weight was not a finite, strictly positive number.
    ///
    /// The paper's weights are co-authored paper counts, always positive;
    /// zero/negative/NaN weights would silently corrupt the stochastic
    /// normalization (Eq. 5), so we reject them at build time.
    InvalidWeight {
        /// Edge endpoints as supplied.
        from: NodeId,
        /// Edge endpoints as supplied.
        to: NodeId,
        /// The rejected weight.
        weight: f64,
    },
    /// A self-loop was supplied where the representation forbids it.
    ///
    /// Co-authorship graphs have no self-loops and a self-loop makes the
    /// "downhill path" DP of EXTRACT degenerate, so the builder rejects them.
    SelfLoop {
        /// The node that pointed at itself.
        node: NodeId,
    },
    /// The graph (or a requested subgraph) had no nodes.
    EmptyGraph,
    /// The graph's directed-arc count (twice the deduplicated edge count)
    /// exceeds what the `u32` CSR offsets can index.
    ///
    /// The CSR layout deliberately stores offsets/targets as `u32` to halve
    /// the index bandwidth of the hot SpMM sweeps; building past that range
    /// must fail loudly instead of silently wrapping the offsets.
    TooManyArcs {
        /// The arc count that overflowed.
        arcs: usize,
    },
    /// A parse error while reading the edge-list format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of what was malformed.
        message: String,
    },
    /// An underlying I/O error while reading or writing a graph.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, node_count } => {
                write!(
                    f,
                    "node {node} out of bounds for graph with {node_count} nodes"
                )
            }
            GraphError::InvalidWeight { from, to, weight } => {
                write!(f, "edge ({from}, {to}) has invalid weight {weight}; weights must be finite and > 0")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node} is not allowed"),
            GraphError::EmptyGraph => write!(f, "graph has no nodes"),
            GraphError::TooManyArcs { arcs } => {
                write!(
                    f,
                    "graph needs {arcs} directed arcs, more than the u32 CSR offsets can index ({})",
                    u32::MAX
                )
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfBounds {
            node: NodeId(9),
            node_count: 5,
        };
        assert!(e.to_string().contains("out of bounds"));
        let e = GraphError::InvalidWeight {
            from: NodeId(0),
            to: NodeId(1),
            weight: -1.0,
        };
        assert!(e.to_string().contains("invalid weight"));
        let e = GraphError::SelfLoop { node: NodeId(3) };
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::TooManyArcs {
            arcs: u32::MAX as usize + 2,
        };
        assert!(e.to_string().contains("u32"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let e = GraphError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
    }
}
