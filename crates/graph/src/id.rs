//! Compact node identifiers.

use std::fmt;

/// Identifier of a node in a [`crate::CsrGraph`].
///
/// `NodeId` is a newtype over `u32`. The graphs in this workspace top out
/// around the paper's DBLP scale (~315K nodes), so 32 bits leaves ample
/// headroom while keeping the CSR target array, partition vectors and score
/// index maps half the size they would be with `usize`.
///
/// Ids are dense: a graph with `n` nodes uses exactly the ids `0..n`, which is
/// what lets score vectors be plain `Vec<f64>` indexed by id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize`, for indexing per-node vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a vector index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in [0usize, 1, 42, 1 << 20] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn display_is_bare_number_debug_is_tagged() {
        assert_eq!(NodeId(7).to_string(), "7");
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(5), NodeId(5));
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32::MAX")]
    fn from_index_rejects_oversized() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }
}
