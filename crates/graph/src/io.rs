//! Plain-text edge-list serialization.
//!
//! Format: one edge per line, `src dst weight`, `#`-prefixed comment lines
//! allowed, an optional header `nodes N` declaring isolated nodes. This is
//! the interchange format the experiment harness uses to cache generated
//! graphs between runs.

use std::io::{BufRead, Write};

use crate::{CsrGraph, GraphBuilder, GraphError, NodeId, Result};

/// Writes `graph` in the edge-list format.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut out: W) -> Result<()> {
    writeln!(out, "# ceps edge list v1")?;
    writeln!(out, "nodes {}", graph.node_count())?;
    for (a, b, w) in graph.edges() {
        writeln!(out, "{} {} {}", a.0, b.0, w)?;
    }
    Ok(())
}

/// Reads a graph from the edge-list format.
///
/// # Errors
/// [`GraphError::Parse`] with the offending line number on malformed input.
pub fn read_edge_list<R: BufRead>(input: R) -> Result<CsrGraph> {
    let mut builder = GraphBuilder::new();
    for (idx, line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("nodes ") {
            let n: usize = rest.trim().parse().map_err(|_| GraphError::Parse {
                line: line_no,
                message: format!("invalid node count {rest:?}"),
            })?;
            builder.ensure_nodes(n);
            continue;
        }
        let mut parts = trimmed.split_ascii_whitespace();
        let (a, b, w) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(a), Some(b), Some(w), None) => (a, b, w),
            _ => {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: format!("expected `src dst weight`, got {trimmed:?}"),
                })
            }
        };
        let parse_u32 = |s: &str| -> Result<u32> {
            s.parse().map_err(|_| GraphError::Parse {
                line: line_no,
                message: format!("invalid node id {s:?}"),
            })
        };
        let weight: f64 = w.parse().map_err(|_| GraphError::Parse {
            line: line_no,
            message: format!("invalid weight {w:?}"),
        })?;
        builder.add_edge(NodeId(parse_u32(a)?), NodeId(parse_u32(b)?), weight)?;
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> CsrGraph {
        let mut b = GraphBuilder::with_nodes(5);
        b.add_edge(NodeId(0), NodeId(1), 2.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_graph() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# hello\n\nnodes 3\n0 1 1.5\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.weight(NodeId(0), NodeId(1)), Some(1.5));
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let text = "0 1 1.0\n0 2\n";
        let err = read_edge_list(Cursor::new(text)).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bad_weight_reports_line() {
        let text = "0 1 banana\n";
        let err = read_edge_list(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn nodes_header_allows_isolated_nodes() {
        let text = "nodes 10\n0 1 1\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.degree(NodeId(9)), 0.0);
    }
}
