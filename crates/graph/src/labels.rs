//! Human-readable node labels.
//!
//! The paper's case studies (Figs. 1–3) are read through author names —
//! "Jiawei Han", "Raymond T. Ng" — so the synthetic generator attaches names
//! to nodes and the examples print subgraphs with them. Labels are strictly
//! presentational: no algorithm consults them.

use std::collections::HashMap;

use crate::NodeId;

/// A bidirectional mapping between node ids and display names.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeLabels {
    names: Vec<String>,
    #[cfg_attr(feature = "serde", serde(skip))]
    index: HashMap<String, u32>,
}

impl NodeLabels {
    /// Empty label table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from names where `names[i]` labels node `i`.
    ///
    /// Later duplicates lose the reverse mapping (lookup returns the first).
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        let mut index = HashMap::with_capacity(names.len());
        for (i, n) in names.iter().enumerate() {
            index.entry(n.clone()).or_insert(i as u32);
        }
        NodeLabels { names, index }
    }

    /// Appends a label for the next node id; returns that id.
    pub fn push(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId::from_index(self.names.len());
        let name = name.into();
        self.index.entry(name.clone()).or_insert(id.0);
        self.names.push(name);
        id
    }

    /// Number of labelled nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no node is labelled.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of node `v`, or a synthesized `node-<id>` if unlabelled.
    pub fn name(&self, v: NodeId) -> String {
        self.names
            .get(v.index())
            .cloned()
            .unwrap_or_else(|| format!("node-{}", v.0))
    }

    /// Looks up a node by exact name.
    pub fn id(&self, name: &str) -> Option<NodeId> {
        self.index.get(name).map(|&i| NodeId(i))
    }

    /// Iterates `(id, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_lookup() {
        let labels = NodeLabels::from_names(["ada", "grace", "edsger"]);
        assert_eq!(labels.len(), 3);
        assert_eq!(labels.name(NodeId(1)), "grace");
        assert_eq!(labels.id("edsger"), Some(NodeId(2)));
        assert_eq!(labels.id("nobody"), None);
    }

    #[test]
    fn unlabelled_nodes_get_fallback_names() {
        let labels = NodeLabels::from_names(["only"]);
        assert_eq!(labels.name(NodeId(7)), "node-7");
    }

    #[test]
    fn duplicate_names_resolve_to_first() {
        let labels = NodeLabels::from_names(["x", "x"]);
        assert_eq!(labels.id("x"), Some(NodeId(0)));
        assert_eq!(labels.name(NodeId(1)), "x");
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let mut labels = NodeLabels::new();
        assert_eq!(labels.push("a"), NodeId(0));
        assert_eq!(labels.push("b"), NodeId(1));
        assert!(!labels.is_empty());
        let all: Vec<_> = labels.iter().collect();
        assert_eq!(all, vec![(NodeId(0), "a"), (NodeId(1), "b")]);
    }
}
