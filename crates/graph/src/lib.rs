//! # ceps-graph
//!
//! Edge-weighted **undirected** graph substrate for the CePS (center-piece
//! subgraph) reproduction.
//!
//! The paper operates on a single large sparse co-authorship graph `W`
//! (Sec. 7: ~315K nodes, ~1.8M non-zero edges), repeatedly:
//!
//! * normalizing it into a column-stochastic transition matrix `W̃ = W D⁻¹`
//!   (Eq. 5), optionally after the degree-penalization step
//!   `w(j,l) ← w(j,l) / d_j^α` (Eq. 10), or into the symmetric form
//!   `S = D^{-1/2} W D^{-1/2}` (Eq. 20, appendix variant);
//! * walking it (random walks with restart, implemented in `ceps-rwr`);
//! * extracting small subgraphs from it (the EXTRACT algorithm in
//!   `ceps-core`).
//!
//! This crate provides the pieces all of those share:
//!
//! * [`CsrGraph`] — an immutable compressed-sparse-row graph with `f64` edge
//!   weights, built via [`GraphBuilder`];
//! * [`normalize`] — the three normalizations above, with the
//!   column-stochastic invariant captured in the [`normalize::Transition`]
//!   type;
//! * [`subgraph`] — induced subgraphs and the node-set "views" EXTRACT
//!   produces;
//! * [`algo`] — BFS, connected components and Dijkstra (used by the
//!   baselines and by tests);
//! * [`io`] — a plain-text edge-list format plus (feature-gated) serde
//!   support;
//! * [`labels`] — optional string names for nodes, so case-study output
//!   reads like the paper's figures ("Jiawei Han", …).
//!
//! Node identifiers are the [`NodeId`] newtype over `u32`: the graphs we
//! target comfortably fit in 32 bits and the narrower id keeps the hot CSR
//! arrays half the size of a `usize` layout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
mod builder;
mod csr;
mod error;
mod id;
pub mod io;
pub mod labels;
pub mod normalize;
pub mod stats;
pub mod subgraph;

pub use builder::GraphBuilder;
pub use csr::{CsrGraph, IntoSharedGraph, NeighborIter};
pub use error::GraphError;
pub use id::NodeId;
pub use labels::NodeLabels;
pub use normalize::{CoeffsView, Layout, LayoutChoice, Precision, Transition, TransitionOptions};
pub use subgraph::Subgraph;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
