//! Adjacency-matrix normalizations (Eqs. 5, 10 and 20 of the paper).
//!
//! The random walk with restart at the heart of CePS iterates
//!
//! ```text
//! x ← c · W̃ x + (1 − c) · e          (Eq. 4, written per source column)
//! ```
//!
//! where `W̃` is the adjacency matrix `W` "appropriately normalized". The
//! paper uses three normalizations:
//!
//! * **Column-stochastic** (Eq. 5): `W̃ = W D⁻¹`, i.e. entry
//!   `W̃[u, v] = w(u, v) / d_v` — the probability a particle at `v` steps to
//!   `u`.
//! * **Degree-penalized** (Sec. 4.3, Eq. 10): first rescale
//!   `w(j, l) ← w(j, l) / d_j^α` (every edge *out of the row node* `j` is
//!   penalized by its degree), then column-normalize the rescaled matrix.
//!   This is the paper's fix for the "pizza delivery person" problem: with
//!   `α > 0` a walk is less likely to step *into* a high-degree node, since
//!   the rescaled entry `w'(u, v) = w(u, v) / d_u^α` shrinks with the
//!   *destination*'s degree once viewed down column `v`. `α = 0` recovers
//!   Eq. 5.
//! * **Symmetric / manifold-ranking** (Appendix, Eq. 20):
//!   `S = D^{-1/2} W D^{-1/2}` — not stochastic, but symmetric, so the
//!   resulting closeness scores satisfy `r(i, j) = r(j, i)`.
//!
//! All three are captured by [`Transition`], whose constructor *is* the
//! normalization: once built, the coefficients are immutable and (for the
//! stochastic kinds) columns are guaranteed to sum to 1 over the incident
//! arcs.
//!
//! ## Paper-scale layout and precision
//!
//! At the paper's DBLP scale (~315K nodes) the input panel `x` of a block
//! product no longer fits in L2, so the per-arc gather `x[target]` thrashes.
//! Two orthogonal, opt-in representations address that:
//!
//! * **Cache-blocked (banded) row layout** ([`LayoutChoice::Banded`], picked
//!   automatically above [`AUTO_BAND_NODE_THRESHOLD`] nodes): each row's
//!   arcs are partitioned into fixed-width *bands* of the target index
//!   space, and the kernel sweeps band by band, so all `x` rows touched by
//!   one band stay cache-resident. Because every CSR row stores its targets
//!   in ascending order, visiting bands in ascending order preserves the
//!   exact per-row accumulation order of the flat kernel — the partial
//!   accumulator round-trips through `out` between bands, and an `f64`
//!   store/load is exact, so banded results are **bitwise identical** to
//!   flat results.
//! * **`f32` coefficients** ([`Precision::F32`]): halves the bandwidth of
//!   the coefficient array (targets/offsets are already `u32`).
//!   Accumulation always happens in `f64` — each stored coefficient is
//!   widened before the fused multiply-add — so the only error source is
//!   the one-time rounding of each coefficient (≤ 2⁻²⁴ relative). The
//!   `experiments -- check` quality gate bounds the end-to-end score
//!   deviation and requires identical EXTRACT output.
//!
//! Both default to off ([`TransitionOptions::default`] keeps the flat `f64`
//! layout on small graphs), and the flat kernel remains the oracle the
//! banded one is property-tested against.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use ceps_pool::WorkerPool;

use crate::{CsrGraph, NodeId};

/// Which normalization a [`Transition`] applies.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Normalization {
    /// Eq. 5: `W̃ = W D⁻¹` (column-stochastic).
    ColumnStochastic,
    /// Eq. 10 followed by Eq. 5: degree penalization with exponent `alpha`,
    /// then column normalization. `alpha = 0.0` equals
    /// [`Normalization::ColumnStochastic`]; the paper's default is 0.5.
    DegreePenalized {
        /// Penalization strength `α ≥ 0` (paper studies `0 ≤ α ≤ 1`).
        alpha: f64,
    },
    /// Eq. 20: `S = D^{-1/2} W D^{-1/2}` (symmetric; not stochastic, but its
    /// spectral radius is at most 1, so the iteration still converges).
    Symmetric,
}

/// Storage width of the transition coefficients.
///
/// Kernels always *accumulate* in `f64` regardless of storage; `F32` only
/// changes how each coefficient is stored (and therefore how many bytes one
/// SpMM sweep streams). See the module docs for the accuracy contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Precision {
    /// Full-width `f64` coefficients (the default; bitwise-exact Eq. 5/10/20).
    #[default]
    F64,
    /// Half-width `f32` coefficients: each stored value is the nearest-`f32`
    /// rounding of the exact `f64` normalization result.
    F32,
}

impl Precision {
    /// Parses `"f64"` / `"f32"` (as accepted by the CLI `--precision` flag).
    pub fn parse(s: &str) -> Option<Precision> {
        match s {
            "f64" => Some(Precision::F64),
            "f32" => Some(Precision::F32),
            _ => None,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        })
    }
}

/// Requested row layout for a [`Transition`] (see [`TransitionOptions`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LayoutChoice {
    /// Flat below [`AUTO_BAND_NODE_THRESHOLD`] nodes, banded (with
    /// [`DEFAULT_BAND_WIDTH`]) at or above it.
    #[default]
    Auto,
    /// Always the flat CSR sweep (the small-graph default and the
    /// bitwise-identity oracle).
    Flat,
    /// Always the cache-blocked layout with the given band width (clamped
    /// to ≥ 1). Mostly useful for tests and experiments; `Auto` picks a
    /// width sized so a band's slice of `x` fits in L2.
    Banded {
        /// Band width in target-index space (number of columns per band).
        band_width: u32,
    },
}

/// The layout a [`Transition`] actually resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Flat CSR: one pass over each row's full arc list.
    Flat,
    /// Cache-blocked: arcs grouped into fixed-width target bands.
    Banded {
        /// Band width in target-index space.
        band_width: u32,
    },
}

/// Construction options for [`Transition::with_options`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransitionOptions {
    /// Row layout (default [`LayoutChoice::Auto`]).
    pub layout: LayoutChoice,
    /// Coefficient storage width (default [`Precision::F64`]).
    pub precision: Precision,
}

/// Node count at or above which [`LayoutChoice::Auto`] switches to the
/// banded layout. Below it the whole `x` panel fits comfortably in L2 and
/// banding only adds bookkeeping.
pub const AUTO_BAND_NODE_THRESHOLD: usize = 1 << 16;

/// Band width [`LayoutChoice::Auto`] uses: 4096 target rows per band keeps
/// a band's slice of `x` at `4096 × cols × 8` bytes — 256 KiB for the
/// widest 8-column panel, i.e. resident in any contemporary L2.
pub const DEFAULT_BAND_WIDTH: u32 = 4096;

/// A stored coefficient type the kernels can widen to `f64`.
trait Coefficient: Copy {
    fn widen(self) -> f64;
}

impl Coefficient for f64 {
    #[inline(always)]
    fn widen(self) -> f64 {
        self
    }
}

impl Coefficient for f32 {
    #[inline(always)]
    fn widen(self) -> f64 {
        f64::from(self)
    }
}

/// Coefficient storage — one variant per [`Precision`].
#[derive(Debug, Clone)]
enum Coeffs {
    F64(Vec<f64>),
    F32(Vec<f32>),
}

impl Coeffs {
    fn len(&self) -> usize {
        match self {
            Coeffs::F64(v) => v.len(),
            Coeffs::F32(v) => v.len(),
        }
    }

    /// The `i`-th coefficient widened to `f64`.
    fn get(&self, i: usize) -> f64 {
        match self {
            Coeffs::F64(v) => v[i],
            Coeffs::F32(v) => f64::from(v[i]),
        }
    }

    fn bytes(&self) -> usize {
        match self {
            Coeffs::F64(v) => std::mem::size_of_val(v.as_slice()),
            Coeffs::F32(v) => std::mem::size_of_val(v.as_slice()),
        }
    }

    fn precision(&self) -> Precision {
        match self {
            Coeffs::F64(_) => Precision::F64,
            Coeffs::F32(_) => Precision::F32,
        }
    }

    fn view(&self, s: usize, e: usize) -> CoeffsView<'_> {
        match self {
            Coeffs::F64(v) => CoeffsView::F64(&v[s..e]),
            Coeffs::F32(v) => CoeffsView::F32(&v[s..e]),
        }
    }
}

/// A borrowed slice of transition coefficients, independent of the storage
/// [`Precision`]. Returned by [`Transition::row`]; values read out are
/// always widened to `f64`.
#[derive(Debug, Clone, Copy)]
pub enum CoeffsView<'a> {
    /// Full-width storage.
    F64(&'a [f64]),
    /// Half-width storage.
    F32(&'a [f32]),
}

impl<'a> CoeffsView<'a> {
    /// Number of coefficients in the slice.
    pub fn len(&self) -> usize {
        match self {
            CoeffsView::F64(s) => s.len(),
            CoeffsView::F32(s) => s.len(),
        }
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th coefficient, widened to `f64`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> f64 {
        match self {
            CoeffsView::F64(s) => s[i],
            CoeffsView::F32(s) => f64::from(s[i]),
        }
    }

    /// Iterates the coefficients widened to `f64`.
    pub fn iter(&self) -> CoeffsIter<'a> {
        match self {
            CoeffsView::F64(s) => CoeffsIter::F64(s.iter()),
            CoeffsView::F32(s) => CoeffsIter::F32(s.iter()),
        }
    }

    /// Collects the coefficients into an owned `Vec<f64>`.
    pub fn to_vec(&self) -> Vec<f64> {
        self.iter().collect()
    }
}

impl<'a> IntoIterator for &CoeffsView<'a> {
    type Item = f64;
    type IntoIter = CoeffsIter<'a>;
    fn into_iter(self) -> CoeffsIter<'a> {
        self.iter()
    }
}

/// Iterator over a [`CoeffsView`], yielding `f64` regardless of storage.
#[derive(Debug, Clone)]
pub enum CoeffsIter<'a> {
    /// Full-width storage.
    F64(std::slice::Iter<'a, f64>),
    /// Half-width storage.
    F32(std::slice::Iter<'a, f32>),
}

impl Iterator for CoeffsIter<'_> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        match self {
            CoeffsIter::F64(it) => it.next().copied(),
            CoeffsIter::F32(it) => it.next().map(|&c| f64::from(c)),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            CoeffsIter::F64(it) => it.size_hint(),
            CoeffsIter::F32(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for CoeffsIter<'_> {}

/// One maximal run of a row's arcs falling into a single target band.
/// `start..end` indexes the shared `targets`/`coeffs` arrays.
#[derive(Debug, Clone, Copy)]
struct BandEntry {
    row: u32,
    start: u32,
    end: u32,
}

/// The cache-blocked index: per band, the (row-ascending) list of arc runs
/// that land in it. Sparse by construction — a row contributes one entry
/// per band it actually touches, so `entries.len() ≤ nnz` and in practice
/// stays near `node_count` (community-clustered graphs touch few bands per
/// row).
#[derive(Debug, Clone)]
struct Bands {
    band_width: u32,
    /// `band_count + 1` prefix offsets into `entries`.
    band_offsets: Vec<u32>,
    entries: Vec<BandEntry>,
}

impl Bands {
    fn build(offsets: &[u32], targets: &[u32], node_count: usize, band_width: u32) -> Bands {
        let w = band_width.max(1);
        let band_count = node_count.div_ceil(w as usize);
        // Pass 1: segments per band (shifted by one for the prefix sum).
        let mut band_offsets = vec![0u32; band_count + 1];
        let per_row = |u: usize, f: &mut dyn FnMut(u32, usize, usize)| {
            let (s, e) = (offsets[u] as usize, offsets[u + 1] as usize);
            let mut i = s;
            while i < e {
                let band = targets[i] / w;
                let mut j = i + 1;
                while j < e && targets[j] / w == band {
                    j += 1;
                }
                f(band, i, j);
                i = j;
            }
        };
        for u in 0..node_count {
            per_row(u, &mut |band, _, _| band_offsets[band as usize + 1] += 1);
        }
        for b in 1..band_offsets.len() {
            band_offsets[b] += band_offsets[b - 1];
        }
        // Pass 2: place each segment at its band's cursor. Rows are visited
        // in ascending order, so entries stay row-sorted within each band —
        // the invariant the chunked kernel's binary search relies on.
        let total = *band_offsets.last().unwrap_or(&0) as usize;
        let mut entries = vec![
            BandEntry {
                row: 0,
                start: 0,
                end: 0
            };
            total
        ];
        let mut cursor: Vec<u32> = band_offsets[..band_count].to_vec();
        for u in 0..node_count {
            per_row(u, &mut |band, i, j| {
                let c = &mut cursor[band as usize];
                entries[*c as usize] = BandEntry {
                    row: u as u32,
                    start: i as u32,
                    end: j as u32,
                };
                *c += 1;
            });
        }
        Bands {
            band_width: w,
            band_offsets,
            entries,
        }
    }

    fn band_count(&self) -> usize {
        self.band_offsets.len() - 1
    }

    fn band_entries(&self, b: usize) -> &[BandEntry] {
        let (s, e) = (
            self.band_offsets[b] as usize,
            self.band_offsets[b + 1] as usize,
        );
        &self.entries[s..e]
    }

    fn bytes(&self) -> usize {
        std::mem::size_of_val(self.band_offsets.as_slice())
            + std::mem::size_of_val(self.entries.as_slice())
    }
}

/// Flat `K`-column panel kernel: one pass over the full CSR arc list per
/// row. Per column the arc order is exactly ascending-target order.
#[allow(clippy::too_many_arguments)]
fn flat_panel<const K: usize, C: Coefficient>(
    offsets: &[u32],
    targets: &[u32],
    coeffs: &[C],
    x: &[f64],
    out: &mut [f64],
    cols: usize,
    first_row: usize,
    first_col: usize,
) {
    for (local, orow) in out.chunks_exact_mut(cols).enumerate() {
        let u = first_row + local;
        let (s, e) = (offsets[u] as usize, offsets[u + 1] as usize);
        let mut acc = [0f64; K];
        for (t, c) in targets[s..e].iter().zip(&coeffs[s..e]) {
            let xrow = &x[*t as usize * cols + first_col..];
            for (a, xv) in acc.iter_mut().zip(&xrow[..K]) {
                *a += c.widen() * xv;
            }
        }
        orow[first_col..first_col + K].copy_from_slice(&acc);
    }
}

/// Banded `K`-column panel kernel: zero the panel, then sweep band by band,
/// folding each arc run into its row's accumulator loaded from (and stored
/// back to) `out`. Bands ascend and rows store targets ascending, so the
/// per-row addition sequence is identical to [`flat_panel`]; the `f64`
/// round-trip through `out` is exact, making the result bitwise identical.
#[allow(clippy::too_many_arguments)]
fn banded_panel<const K: usize, C: Coefficient>(
    bands: &Bands,
    targets: &[u32],
    coeffs: &[C],
    x: &[f64],
    out: &mut [f64],
    cols: usize,
    first_row: usize,
    first_col: usize,
) {
    let rows = out.len() / cols;
    let row_end = first_row + rows;
    for orow in out.chunks_exact_mut(cols) {
        orow[first_col..first_col + K].fill(0.0);
    }
    for b in 0..bands.band_count() {
        let entries = bands.band_entries(b);
        // Restrict to this chunk's rows: entries are row-ascending per band.
        let lo = entries.partition_point(|en| (en.row as usize) < first_row);
        let hi = lo + entries[lo..].partition_point(|en| (en.row as usize) < row_end);
        for en in &entries[lo..hi] {
            let local = en.row as usize - first_row;
            let orow = &mut out[local * cols + first_col..local * cols + first_col + K];
            let mut acc = [0f64; K];
            acc.copy_from_slice(orow);
            let (s, e) = (en.start as usize, en.end as usize);
            for (t, c) in targets[s..e].iter().zip(&coeffs[s..e]) {
                let xrow = &x[*t as usize * cols + first_col..];
                for (a, xv) in acc.iter_mut().zip(&xrow[..K]) {
                    *a += c.widen() * xv;
                }
            }
            orow.copy_from_slice(&acc);
        }
    }
}

/// Dispatches one `K`-column panel to the flat or banded kernel.
#[allow(clippy::too_many_arguments)]
fn panel<const K: usize, C: Coefficient>(
    bands: Option<&Bands>,
    offsets: &[u32],
    targets: &[u32],
    coeffs: &[C],
    x: &[f64],
    out: &mut [f64],
    cols: usize,
    first_row: usize,
    first_col: usize,
) {
    match bands {
        None => flat_panel::<K, C>(offsets, targets, coeffs, x, out, cols, first_row, first_col),
        Some(b) => banded_panel::<K, C>(b, targets, coeffs, x, out, cols, first_row, first_col),
    }
}

/// Block kernel over the rows covered by `out`, generic over coefficient
/// storage and layout. Narrow widths run as one const-generic panel whose
/// accumulators live in registers; wider blocks sweep in 8-column panels.
fn block_rows<C: Coefficient>(
    bands: Option<&Bands>,
    offsets: &[u32],
    targets: &[u32],
    coeffs: &[C],
    x: &[f64],
    out: &mut [f64],
    cols: usize,
    first_row: usize,
) {
    debug_assert_eq!(out.len() % cols, 0);
    macro_rules! p {
        ($k:literal, $fc:expr) => {
            panel::<$k, C>(
                bands, offsets, targets, coeffs, x, out, cols, first_row, $fc,
            )
        };
    }
    match cols {
        1 => p!(1, 0),
        2 => p!(2, 0),
        3 => p!(3, 0),
        4 => p!(4, 0),
        5 => p!(5, 0),
        6 => p!(6, 0),
        7 => p!(7, 0),
        8 => p!(8, 0),
        _ => {
            let mut first_col = 0;
            while first_col < cols {
                match cols - first_col {
                    1 => p!(1, first_col),
                    2 => p!(2, first_col),
                    3 => p!(3, first_col),
                    4 => p!(4, first_col),
                    5 => p!(5, first_col),
                    6 => p!(6, first_col),
                    7 => p!(7, first_col),
                    _ => p!(8, first_col),
                }
                first_col += 8;
            }
        }
    }
}

/// A normalized adjacency operator, laid out arc-parallel with the source
/// [`CsrGraph`].
///
/// ```
/// use ceps_graph::{normalize::{Normalization, Transition}, GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(NodeId(0), NodeId(1), 3.0).unwrap();
/// b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
/// let g = b.build().unwrap();
///
/// let t = Transition::new(&g, Normalization::ColumnStochastic);
/// // Probability of stepping 1 -> 0 is w(0,1)/d_1 = 3/4.
/// assert_eq!(t.coeff(NodeId(0), NodeId(1)), Some(0.75));
/// ```
///
/// `coeff[arc u→v] = M[u, v]`: the coefficient that multiplies `x[v]` when
/// accumulating the new value at `u`, so one matrix–vector product is a pure
/// gather over each node's CSR slice (see [`Transition::apply`]).
///
/// Large graphs additionally carry the cache-blocked band index and may
/// store coefficients in `f32` — see the module docs and
/// [`Transition::with_options`]. Neither changes the operator's *values*
/// beyond the documented `f32` rounding, and the banded kernel is bitwise
/// identical to the flat one.
#[derive(Debug, Clone)]
pub struct Transition {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    coeffs: Coeffs,
    bands: Option<Bands>,
    kind: Normalization,
    node_count: usize,
}

impl Transition {
    /// Normalizes `graph` according to `kind`, with default options
    /// (auto layout, `f64` coefficients).
    ///
    /// Isolated nodes get an all-zero column (the walk can never reach or
    /// leave them), which the stochastic invariant tolerates.
    pub fn new(graph: &CsrGraph, kind: Normalization) -> Self {
        Self::with_options(graph, kind, TransitionOptions::default())
    }

    /// Normalizes `graph` according to `kind` with explicit layout and
    /// precision options.
    pub fn with_options(graph: &CsrGraph, kind: Normalization, opts: TransitionOptions) -> Self {
        let (offsets, targets, coeffs, kind) = match kind {
            Normalization::ColumnStochastic => raw_degree_penalized(graph, 0.0),
            Normalization::DegreePenalized { alpha } => raw_degree_penalized(graph, alpha),
            Normalization::Symmetric => raw_symmetric(graph),
        };
        let n = graph.node_count();
        let band_width = match opts.layout {
            LayoutChoice::Flat => None,
            LayoutChoice::Banded { band_width } => Some(band_width.max(1)),
            LayoutChoice::Auto => (n >= AUTO_BAND_NODE_THRESHOLD).then_some(DEFAULT_BAND_WIDTH),
        };
        let bands = band_width.map(|w| Bands::build(&offsets, &targets, n, w));
        let coeffs = match opts.precision {
            Precision::F64 => Coeffs::F64(coeffs),
            Precision::F32 => Coeffs::F32(coeffs.iter().map(|&c| c as f32).collect()),
        };
        Transition {
            offsets,
            targets,
            coeffs,
            bands,
            kind,
            node_count: n,
        }
    }

    /// The normalization this operator applies.
    pub fn kind(&self) -> Normalization {
        self.kind
    }

    /// The coefficient storage width.
    pub fn precision(&self) -> Precision {
        self.coeffs.precision()
    }

    /// The resolved row layout.
    pub fn layout(&self) -> Layout {
        match &self.bands {
            None => Layout::Flat,
            Some(b) => Layout::Banded {
                band_width: b.band_width,
            },
        }
    }

    /// Bytes held by the operator's index and coefficient arrays (offsets,
    /// targets, coefficients, and the band index when present) — the
    /// number the `f32`/banded memory story is measured by.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self.offsets.as_slice())
            + std::mem::size_of_val(self.targets.as_slice())
            + self.coeffs.bytes()
            + self.bands.as_ref().map_or(0, Bands::bytes)
    }

    /// Number of nodes (matrix dimension).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Computes `out = M · x` (one sparse matrix–vector product).
    ///
    /// The caller layers the restart term on top (`ceps-rwr` does
    /// `x ← c · Mx + (1−c) e`).
    ///
    /// # Panics
    /// Panics if `x` or `out` is not `node_count` long.
    pub fn apply(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.node_count, "input vector length mismatch");
        assert_eq!(out.len(), self.node_count, "output vector length mismatch");
        self.apply_block_rows(x, out, 1, 0);
    }

    /// Computes `out = M · X` for a dense block `X` of `cols` column
    /// vectors, stored row-major with stride `cols` (node-major: `X[u, j]`
    /// at `x[u * cols + j]`).
    ///
    /// One pass over the CSR arrays serves every column: each
    /// `(target, coeff)` entry is loaded once and applied to `cols`
    /// accumulators, instead of being re-read per solve as in the
    /// one-column [`Transition::apply`]. Per column, the accumulation
    /// visits arcs in the same order as `apply`, so results are
    /// bitwise-identical to `cols` independent scalar products — in the
    /// banded layout too (see the module docs).
    ///
    /// # Panics
    /// Panics if `cols == 0` or either slice is not `node_count * cols`
    /// long.
    pub fn apply_block(&self, x: &[f64], out: &mut [f64], cols: usize) {
        assert!(cols > 0, "block must have at least one column");
        assert_eq!(
            x.len(),
            self.node_count * cols,
            "input block length mismatch"
        );
        assert_eq!(
            out.len(),
            self.node_count * cols,
            "output block length mismatch"
        );
        self.apply_block_rows(x, out, cols, 0);
    }

    /// Block kernel over the row range `first_row ..`, writing into `out`
    /// (whose length selects how many rows are computed). Shared by
    /// [`Transition::apply_block`] and the parallel row-chunked variants.
    /// Dispatches on coefficient storage and layout, then on panel width.
    fn apply_block_rows(&self, x: &[f64], out: &mut [f64], cols: usize, first_row: usize) {
        match &self.coeffs {
            Coeffs::F64(c) => block_rows(
                self.bands.as_ref(),
                &self.offsets,
                &self.targets,
                c,
                x,
                out,
                cols,
                first_row,
            ),
            Coeffs::F32(c) => block_rows(
                self.bands.as_ref(),
                &self.offsets,
                &self.targets,
                c,
                x,
                out,
                cols,
                first_row,
            ),
        }
    }

    /// Number of stored coefficients (arcs): the cost of one
    /// [`Transition::apply`] sweep, and — times the column count — the
    /// work estimate the parallel kernels weigh against a pool's
    /// [`WorkerPool::min_work`] threshold.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.coeffs.len()
    }

    /// Splits the rows into up to `target` contiguous ranges of roughly
    /// equal **nonzero count** (not row count): chunk boundaries are found
    /// by binary-searching the CSR `offsets` prefix sums for the `k/target`
    /// nnz quantiles. Skewed-degree graphs (ours are) make per-row-count
    /// chunks pathologically unbalanced — one hub-heavy chunk serializes
    /// the whole product; nnz balancing is what lets the worker pool keep
    /// every thread busy.
    ///
    /// In the banded layout, interior boundaries are additionally snapped
    /// to the nearest band-width multiple (when that keeps chunks
    /// non-empty), so each worker's chunk covers whole band blocks and the
    /// per-band entry restriction stays a pair of clean binary searches.
    ///
    /// Ranges are non-empty, disjoint, ascending and cover `0..node_count`
    /// exactly. A row whose nnz exceeds a quantile span simply becomes its
    /// own (oversized) chunk — rows are never split.
    pub fn balanced_row_chunks(&self, target: usize) -> Vec<(usize, usize)> {
        let n = self.node_count;
        if n == 0 {
            return Vec::new();
        }
        let target = target.clamp(1, n);
        let nnz = self.nnz() as u64;
        if nnz == 0 {
            return vec![(0, n)];
        }
        let mut chunks = Vec::with_capacity(target);
        let mut prev = 0usize;
        for k in 1..target {
            let want = (k as u64 * nnz).div_ceil(target as u64) as u32;
            // First row index whose prefix sum reaches the quantile.
            let mut bound = self.offsets.partition_point(|&o| o < want).min(n);
            if let Some(b) = &self.bands {
                let w = b.band_width as usize;
                let down = bound - bound % w;
                let up = (down + w).min(n);
                let snapped = if bound - down <= up - bound { down } else { up };
                if snapped > prev {
                    bound = snapped;
                }
            }
            if bound > prev {
                chunks.push((prev, bound));
                prev = bound;
            }
        }
        if prev < n {
            chunks.push((prev, n));
        }
        chunks
    }

    /// Parallel [`Transition::apply`] over a persistent [`WorkerPool`]:
    /// identical to the sequential kernel, with rows computed by whichever
    /// worker claims them. See [`Transition::par_apply_block`].
    ///
    /// # Panics
    /// Panics if `x` or `out` is not `node_count` long.
    pub fn par_apply(&self, x: &[f64], out: &mut [f64], pool: &WorkerPool) {
        assert_eq!(x.len(), self.node_count, "input vector length mismatch");
        assert_eq!(out.len(), self.node_count, "output vector length mismatch");
        self.par_apply_block(x, out, 1, pool);
    }

    /// Parallel [`Transition::apply_block`] over a persistent
    /// [`WorkerPool`]: one dispatch (wake → steal → sleep) per call, no
    /// thread spawns. The rows are pre-split into nnz-balanced chunks
    /// ([`Transition::balanced_row_chunks`], ~4 per worker, band-aligned in
    /// the banded layout) and claimed off an atomic cursor, so a straggling
    /// worker sheds load to the others.
    ///
    /// Falls back to the sequential kernel when the pool is
    /// single-threaded or the estimated work (`nnz × cols`) is under the
    /// pool's [`WorkerPool::min_work`] threshold — below it the barrier
    /// costs more than the parallelism recovers.
    ///
    /// **Bitwise-identical to [`Transition::apply_block`]**: each row is
    /// computed by exactly one worker with the same per-row arithmetic
    /// order (flat and banded alike), so neither the chunking nor the
    /// claiming order can change a single bit of the output.
    ///
    /// Telemetry (when a `ceps-obs` recorder is installed): a `pool.apply`
    /// span around the dispatch and a `pool.chunks_stolen` counter for
    /// chunks claimed by non-calling workers.
    ///
    /// # Panics
    /// Panics if `cols == 0`, either slice is not `node_count * cols` long,
    /// or the job panics on a worker.
    pub fn par_apply_block(&self, x: &[f64], out: &mut [f64], cols: usize, pool: &WorkerPool) {
        assert!(cols > 0, "block must have at least one column");
        assert_eq!(
            x.len(),
            self.node_count * cols,
            "input block length mismatch"
        );
        assert_eq!(
            out.len(),
            self.node_count * cols,
            "output block length mismatch"
        );
        let workers = pool.threads().min(self.node_count).max(1);
        if workers <= 1 || self.nnz().saturating_mul(cols) < pool.min_work() {
            return self.apply_block_rows(x, out, cols, 0);
        }
        let _span = ceps_obs::span("pool.apply");
        let bounds = self.balanced_row_chunks(workers * ceps_pool::CHUNKS_PER_WORKER);
        // Split `out` into per-chunk slices up front; each cell is locked
        // exactly once by whichever worker claims it (uncontended by
        // construction — the cursor hands every index to one worker), which
        // is how disjoint `&mut` access crosses the `Fn` closure without
        // `unsafe` in this crate.
        let mut jobs: Vec<Mutex<Option<(usize, &mut [f64])>>> = Vec::with_capacity(bounds.len());
        let mut rest = out;
        for &(start, end) in &bounds {
            let (chunk, tail) = rest.split_at_mut((end - start) * cols);
            jobs.push(Mutex::new(Some((start, chunk))));
            rest = tail;
        }
        let cursor = AtomicUsize::new(0);
        let stolen = AtomicU64::new(0);
        pool.run(&|worker| {
            let mut claimed = 0u64;
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = jobs.get(i) else { break };
                let (first_row, chunk) = cell
                    .lock()
                    .expect("chunk cell lock")
                    .take()
                    .expect("chunk claimed twice");
                self.apply_block_rows(x, chunk, cols, first_row);
                claimed += 1;
            }
            if worker != 0 && claimed > 0 {
                stolen.fetch_add(claimed, Ordering::Relaxed);
            }
        });
        if ceps_obs::enabled() {
            ceps_obs::counter("pool.chunks_stolen", stolen.load(Ordering::Relaxed));
        }
    }

    /// The matrix entry `M[u, v]` (`W̃[u, v]` in the paper's notation — for
    /// the stochastic kinds, the probability of stepping `v → u`).
    ///
    /// Used by the edge-score definition Eq. 15. `O(log deg(u))`. The value
    /// is widened from storage, so in `f32` mode it carries the storage
    /// rounding.
    pub fn coeff(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let (s, e) = (
            self.offsets[u.index()] as usize,
            self.offsets[u.index() + 1] as usize,
        );
        self.targets[s..e]
            .binary_search(&v.0)
            .ok()
            .map(|i| self.coeffs.get(s + i))
    }

    /// Out-neighborhood view used by solvers: ids and coefficients of row
    /// `u`. The coefficient side is a [`CoeffsView`] so callers stay
    /// agnostic of the storage [`Precision`].
    #[inline]
    pub fn row(&self, u: NodeId) -> (&[u32], CoeffsView<'_>) {
        let (s, e) = (
            self.offsets[u.index()] as usize,
            self.offsets[u.index() + 1] as usize,
        );
        (&self.targets[s..e], self.coeffs.view(s, e))
    }

    /// Entries of column `v`: `(u, M[u, v])` for every structurally
    /// non-zero row `u` — the out-distribution of a walk standing at `v`
    /// for the stochastic kinds. `O(deg(v) · log deg(u))`.
    ///
    /// The sparsity pattern is symmetric (the operator comes from an
    /// undirected graph), so column `v`'s rows are exactly `v`'s CSR
    /// neighbors; only the coefficients differ from row `v`'s.
    pub fn column_entries(&self, v: NodeId) -> Vec<(NodeId, f64)> {
        let (ids, _) = self.row(v);
        ids.iter()
            .map(|&u| {
                let c = self.coeff(NodeId(u), v).unwrap_or(0.0);
                (NodeId(u), c)
            })
            .collect()
    }

    /// Column sums `Σ_u M[u, v]` — 1.0 (or 0.0 for isolated nodes) for the
    /// stochastic kinds; used by tests to assert the invariant.
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0f64; self.node_count];
        for u in 0..self.node_count {
            let (s, e) = (self.offsets[u] as usize, self.offsets[u + 1] as usize);
            for (i, t) in (s..e).zip(&self.targets[s..e]) {
                sums[*t as usize] += self.coeffs.get(i);
            }
        }
        sums
    }

    /// Densifies the operator into row-major `n × n` — test-oracle helper for
    /// small graphs only.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let n = self.node_count;
        let mut m = vec![vec![0f64; n]; n];
        for u in 0..n {
            let (s, e) = (self.offsets[u] as usize, self.offsets[u + 1] as usize);
            for (i, t) in (s..e).zip(&self.targets[s..e]) {
                m[u][*t as usize] = self.coeffs.get(i);
            }
        }
        m
    }
}

/// Eq. 10 + Eq. 5 raw arrays. With `alpha == 0` this is exactly Eq. 5.
fn raw_degree_penalized(
    graph: &CsrGraph,
    alpha: f64,
) -> (Vec<u32>, Vec<u32>, Vec<f64>, Normalization) {
    let n = graph.node_count();
    // Penalty factor 1 / d_u^alpha per *destination* node u (the row node
    // of Eq. 10 becomes the destination when reading down a column).
    let penalty: Vec<f64> = (0..n)
        .map(|u| {
            let d = graph.degree(NodeId::from_index(u));
            if d > 0.0 {
                d.powf(-alpha)
            } else {
                0.0
            }
        })
        .collect();

    // Column sums of the penalized matrix: for column v,
    // Σ_u w(u, v) · penalty[u].
    let mut col_sum = vec![0f64; n];
    for v in 0..n {
        let vid = NodeId::from_index(v);
        let ids = graph.neighbor_ids(vid);
        let ws = graph.neighbor_weights(vid);
        let mut s = 0.0;
        for (t, w) in ids.iter().zip(ws) {
            s += w * penalty[*t as usize];
        }
        col_sum[v] = s;
    }

    // coeff[u→v] = w(u, v) · penalty[u] / col_sum[v].
    let mut offsets = Vec::with_capacity(n + 1);
    let mut targets = Vec::with_capacity(graph.arc_count());
    let mut coeffs = Vec::with_capacity(graph.arc_count());
    offsets.push(0u32);
    for u in 0..n {
        let uid = NodeId::from_index(u);
        let ids = graph.neighbor_ids(uid);
        let ws = graph.neighbor_weights(uid);
        for (t, w) in ids.iter().zip(ws) {
            let v = *t as usize;
            let c = if col_sum[v] > 0.0 {
                w * penalty[u] / col_sum[v]
            } else {
                0.0
            };
            targets.push(*t);
            coeffs.push(c);
        }
        offsets.push(targets.len() as u32);
    }
    (
        offsets,
        targets,
        coeffs,
        Normalization::DegreePenalized { alpha },
    )
}

/// Eq. 20 raw arrays: `S[u, v] = w(u, v) / sqrt(d_u · d_v)`.
fn raw_symmetric(graph: &CsrGraph) -> (Vec<u32>, Vec<u32>, Vec<f64>, Normalization) {
    let n = graph.node_count();
    let inv_sqrt: Vec<f64> = (0..n)
        .map(|u| {
            let d = graph.degree(NodeId::from_index(u));
            if d > 0.0 {
                1.0 / d.sqrt()
            } else {
                0.0
            }
        })
        .collect();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut targets = Vec::with_capacity(graph.arc_count());
    let mut coeffs = Vec::with_capacity(graph.arc_count());
    offsets.push(0u32);
    for u in 0..n {
        let uid = NodeId::from_index(u);
        let ids = graph.neighbor_ids(uid);
        let ws = graph.neighbor_weights(uid);
        for (t, w) in ids.iter().zip(ws) {
            targets.push(*t);
            coeffs.push(w * inv_sqrt[u] * inv_sqrt[*t as usize]);
        }
        offsets.push(targets.len() as u32);
    }
    (offsets, targets, coeffs, Normalization::Symmetric)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_plus_tail() -> CsrGraph {
        // Triangle 0-1-2 (weights 1, 2, 3) with a tail 2-3 (weight 4).
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 3.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 4.0).unwrap();
        b.build().unwrap()
    }

    /// A ~60-node weighted graph whose rows span several width-8 bands.
    fn wide_graph() -> CsrGraph {
        let n = 60u32;
        let mut b = GraphBuilder::new();
        for i in 0..n {
            for step in [1u32, 7, 19, 33] {
                let j = (i + step) % n;
                let _ = b.add_edge(
                    NodeId(i),
                    NodeId(j),
                    1.0 + (i % 5) as f64 + step as f64 / 3.0,
                );
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn column_stochastic_columns_sum_to_one() {
        let g = triangle_plus_tail();
        let t = Transition::new(&g, Normalization::ColumnStochastic);
        for s in t.column_sums() {
            assert!((s - 1.0).abs() < 1e-12, "column sum {s}");
        }
    }

    #[test]
    fn column_stochastic_matches_w_over_degree() {
        let g = triangle_plus_tail();
        let t = Transition::new(&g, Normalization::ColumnStochastic);
        // M[u, v] = w(u, v) / d_v. d_2 = 2 + 3 + 4 = 9.
        let c = t.coeff(NodeId(1), NodeId(2)).unwrap();
        assert!((c - 2.0 / 9.0).abs() < 1e-12);
        let c = t.coeff(NodeId(3), NodeId(2)).unwrap();
        assert!((c - 4.0 / 9.0).abs() < 1e-12);
        assert_eq!(t.coeff(NodeId(0), NodeId(3)), None);
    }

    #[test]
    fn degree_penalized_columns_still_stochastic() {
        let g = triangle_plus_tail();
        for alpha in [0.0, 0.25, 0.5, 1.0] {
            let t = Transition::new(&g, Normalization::DegreePenalized { alpha });
            for s in t.column_sums() {
                assert!((s - 1.0).abs() < 1e-12, "alpha {alpha}: column sum {s}");
            }
        }
    }

    #[test]
    fn alpha_zero_equals_plain_column_normalization() {
        let g = triangle_plus_tail();
        let a = Transition::new(&g, Normalization::ColumnStochastic);
        let b = Transition::new(&g, Normalization::DegreePenalized { alpha: 0.0 });
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(a.coeff(u, v), b.coeff(u, v));
            }
        }
    }

    #[test]
    fn penalization_shifts_mass_away_from_high_degree_destinations() {
        // From node 1, the unpenalized walk prefers node 2 (weight 2, d=9)
        // over node 0 (weight 1, d=4). Penalizing by destination degree must
        // raise the relative probability of the low-degree destination 0.
        let g = triangle_plus_tail();
        let plain = Transition::new(&g, Normalization::ColumnStochastic);
        let pen = Transition::new(&g, Normalization::DegreePenalized { alpha: 1.0 });
        let ratio_plain =
            plain.coeff(NodeId(0), NodeId(1)).unwrap() / plain.coeff(NodeId(2), NodeId(1)).unwrap();
        let ratio_pen =
            pen.coeff(NodeId(0), NodeId(1)).unwrap() / pen.coeff(NodeId(2), NodeId(1)).unwrap();
        assert!(ratio_pen > ratio_plain);
    }

    #[test]
    fn symmetric_kind_is_symmetric() {
        let g = triangle_plus_tail();
        let t = Transition::new(&g, Normalization::Symmetric);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(t.coeff(u, v), t.coeff(v, u));
            }
        }
        // Column sums of S are not stochastic (they may exceed 1); the
        // relevant spectral property (radius ≤ 1, so Eq. 20 converges) is
        // exercised by the ceps-rwr variant tests instead.
        // S[0, 1] = w / sqrt(d_0 d_1) = 1 / sqrt(4 * 3).
        let c = t.coeff(NodeId(0), NodeId(1)).unwrap();
        assert!((c - 1.0 / (12.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn apply_matches_dense_multiply() {
        let g = triangle_plus_tail();
        let t = Transition::new(&g, Normalization::DegreePenalized { alpha: 0.5 });
        let dense = t.to_dense();
        let x = [0.1, 0.2, 0.3, 0.4];
        let mut out = [0f64; 4];
        t.apply(&x, &mut out);
        for u in 0..4 {
            let want: f64 = (0..4).map(|v| dense[u][v] * x[v]).sum();
            assert!((out[u] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn isolated_nodes_get_zero_columns() {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let g = b.build().unwrap();
        let t = Transition::new(&g, Normalization::ColumnStochastic);
        let sums = t.column_sums();
        assert!((sums[0] - 1.0).abs() < 1e-12);
        assert!((sums[1] - 1.0).abs() < 1e-12);
        assert_eq!(sums[2], 0.0);
    }

    #[test]
    fn auto_layout_is_flat_below_threshold() {
        let g = wide_graph();
        let t = Transition::new(&g, Normalization::ColumnStochastic);
        assert_eq!(t.layout(), Layout::Flat);
        assert_eq!(t.precision(), Precision::F64);
        assert!(t.memory_bytes() > 0);
    }

    #[test]
    fn banded_apply_is_bitwise_identical_to_flat() {
        let g = wide_graph();
        let kind = Normalization::DegreePenalized { alpha: 0.5 };
        let flat = Transition::with_options(
            &g,
            kind,
            TransitionOptions {
                layout: LayoutChoice::Flat,
                precision: Precision::F64,
            },
        );
        for band_width in [1u32, 3, 8, 64, 1000] {
            let banded = Transition::with_options(
                &g,
                kind,
                TransitionOptions {
                    layout: LayoutChoice::Banded { band_width },
                    precision: Precision::F64,
                },
            );
            assert_eq!(
                banded.layout(),
                Layout::Banded {
                    band_width: band_width.max(1)
                }
            );
            // cols = 11 exercises the 8-wide panel split too.
            for cols in [1usize, 2, 5, 8, 11] {
                let n = g.node_count();
                let x: Vec<f64> = (0..n * cols).map(|i| (i as f64).sin()).collect();
                let mut a = vec![0f64; n * cols];
                let mut b = vec![0f64; n * cols];
                flat.apply_block(&x, &mut a, cols);
                banded.apply_block(&x, &mut b, cols);
                assert!(
                    a.iter().zip(&b).all(|(p, q)| p.to_bits() == q.to_bits()),
                    "band_width {band_width} cols {cols}: banded differs from flat"
                );
            }
        }
    }

    #[test]
    fn banded_chunked_rows_match_full_apply() {
        // Drive the chunked entry restriction directly: computing the block
        // in two arbitrary row chunks must equal one full apply, bitwise.
        let g = wide_graph();
        let t = Transition::with_options(
            &g,
            Normalization::ColumnStochastic,
            TransitionOptions {
                layout: LayoutChoice::Banded { band_width: 8 },
                precision: Precision::F64,
            },
        );
        let n = g.node_count();
        let cols = 3;
        let x: Vec<f64> = (0..n * cols).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut whole = vec![0f64; n * cols];
        t.apply_block(&x, &mut whole, cols);
        for split in [1usize, 7, 29, n - 1] {
            let mut parts = vec![0f64; n * cols];
            let (lo, hi) = parts.split_at_mut(split * cols);
            t.apply_block_rows(&x, lo, cols, 0);
            t.apply_block_rows(&x, hi, cols, split);
            assert!(
                whole
                    .iter()
                    .zip(&parts)
                    .all(|(p, q)| p.to_bits() == q.to_bits()),
                "split at {split} differs"
            );
        }
    }

    #[test]
    fn f32_mode_tracks_f64_and_reports_precision() {
        let g = wide_graph();
        let kind = Normalization::DegreePenalized { alpha: 0.5 };
        let full = Transition::new(&g, kind);
        let lean = Transition::with_options(
            &g,
            kind,
            TransitionOptions {
                layout: LayoutChoice::Flat,
                precision: Precision::F32,
            },
        );
        assert_eq!(lean.precision(), Precision::F32);
        assert!(lean.memory_bytes() < full.memory_bytes());
        // Every coefficient is within one f32 rounding of the exact value,
        // and the accessors agree with the kernels.
        for u in g.nodes() {
            let (ids, cs) = lean.row(u);
            assert_eq!(ids.len(), cs.len());
            for (i, &v) in ids.iter().enumerate() {
                let exact = full.coeff(u, NodeId(v)).unwrap();
                let stored = cs.get(i);
                assert_eq!(stored, lean.coeff(u, NodeId(v)).unwrap());
                assert!((stored - exact).abs() <= exact.abs() * 1e-6);
            }
        }
        let n = g.node_count();
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64) / 17.0).collect();
        let mut a = vec![0f64; n];
        let mut b = vec![0f64; n];
        full.apply(&x, &mut a);
        lean.apply(&x, &mut b);
        for (p, q) in a.iter().zip(&b) {
            assert!((p - q).abs() < 1e-6, "f32 apply drifted: {p} vs {q}");
        }
    }

    #[test]
    fn f32_banded_is_bitwise_identical_to_f32_flat() {
        let g = wide_graph();
        let kind = Normalization::ColumnStochastic;
        let mk = |layout| {
            Transition::with_options(
                &g,
                kind,
                TransitionOptions {
                    layout,
                    precision: Precision::F32,
                },
            )
        };
        let flat = mk(LayoutChoice::Flat);
        let banded = mk(LayoutChoice::Banded { band_width: 16 });
        let n = g.node_count();
        let cols = 5;
        let x: Vec<f64> = (0..n * cols).map(|i| (i as f64).cos()).collect();
        let mut a = vec![0f64; n * cols];
        let mut b = vec![0f64; n * cols];
        flat.apply_block(&x, &mut a, cols);
        banded.apply_block(&x, &mut b, cols);
        assert!(a.iter().zip(&b).all(|(p, q)| p.to_bits() == q.to_bits()));
    }

    #[test]
    fn banded_chunks_snap_to_band_boundaries_and_cover_all_rows() {
        let g = wide_graph();
        let t = Transition::with_options(
            &g,
            Normalization::ColumnStochastic,
            TransitionOptions {
                layout: LayoutChoice::Banded { band_width: 8 },
                precision: Precision::F64,
            },
        );
        let n = g.node_count();
        for target in [1usize, 2, 3, 5, n] {
            let chunks = t.balanced_row_chunks(target);
            assert!(!chunks.is_empty());
            assert_eq!(chunks.first().unwrap().0, 0);
            assert_eq!(chunks.last().unwrap().1, n);
            for w in chunks.windows(2) {
                assert_eq!(w[0].1, w[1].0, "chunks must tile contiguously");
            }
            for &(s, e) in &chunks {
                assert!(s < e, "empty chunk");
                // Interior boundaries land on band multiples when possible.
                if e != n && target <= 3 {
                    assert_eq!(e % 8, 0, "boundary {e} not band-aligned");
                }
            }
        }
    }
}
