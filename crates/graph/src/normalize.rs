//! Adjacency-matrix normalizations (Eqs. 5, 10 and 20 of the paper).
//!
//! The random walk with restart at the heart of CePS iterates
//!
//! ```text
//! x ← c · W̃ x + (1 − c) · e          (Eq. 4, written per source column)
//! ```
//!
//! where `W̃` is the adjacency matrix `W` "appropriately normalized". The
//! paper uses three normalizations:
//!
//! * **Column-stochastic** (Eq. 5): `W̃ = W D⁻¹`, i.e. entry
//!   `W̃[u, v] = w(u, v) / d_v` — the probability a particle at `v` steps to
//!   `u`.
//! * **Degree-penalized** (Sec. 4.3, Eq. 10): first rescale
//!   `w(j, l) ← w(j, l) / d_j^α` (every edge *out of the row node* `j` is
//!   penalized by its degree), then column-normalize the rescaled matrix.
//!   This is the paper's fix for the "pizza delivery person" problem: with
//!   `α > 0` a walk is less likely to step *into* a high-degree node, since
//!   the rescaled entry `w'(u, v) = w(u, v) / d_u^α` shrinks with the
//!   *destination*'s degree once viewed down column `v`. `α = 0` recovers
//!   Eq. 5.
//! * **Symmetric / manifold-ranking** (Appendix, Eq. 20):
//!   `S = D^{-1/2} W D^{-1/2}` — not stochastic, but symmetric, so the
//!   resulting closeness scores satisfy `r(i, j) = r(j, i)`.
//!
//! All three are captured by [`Transition`], whose constructor *is* the
//! normalization: once built, the coefficients are immutable and (for the
//! stochastic kinds) columns are guaranteed to sum to 1 over the incident
//! arcs.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use ceps_pool::WorkerPool;

use crate::{CsrGraph, NodeId};

/// Which normalization a [`Transition`] applies.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Normalization {
    /// Eq. 5: `W̃ = W D⁻¹` (column-stochastic).
    ColumnStochastic,
    /// Eq. 10 followed by Eq. 5: degree penalization with exponent `alpha`,
    /// then column normalization. `alpha = 0.0` equals
    /// [`Normalization::ColumnStochastic`]; the paper's default is 0.5.
    DegreePenalized {
        /// Penalization strength `α ≥ 0` (paper studies `0 ≤ α ≤ 1`).
        alpha: f64,
    },
    /// Eq. 20: `S = D^{-1/2} W D^{-1/2}` (symmetric; not stochastic, but its
    /// spectral radius is at most 1, so the iteration still converges).
    Symmetric,
}

/// A normalized adjacency operator, laid out arc-parallel with the source
/// [`CsrGraph`].
///
/// ```
/// use ceps_graph::{normalize::{Normalization, Transition}, GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(NodeId(0), NodeId(1), 3.0).unwrap();
/// b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
/// let g = b.build().unwrap();
///
/// let t = Transition::new(&g, Normalization::ColumnStochastic);
/// // Probability of stepping 1 -> 0 is w(0,1)/d_1 = 3/4.
/// assert_eq!(t.coeff(NodeId(0), NodeId(1)), Some(0.75));
/// ```
///
/// `coeff[arc u→v] = M[u, v]`: the coefficient that multiplies `x[v]` when
/// accumulating the new value at `u`, so one matrix–vector product is a pure
/// gather over each node's CSR slice (see [`Transition::apply`]).
#[derive(Debug, Clone)]
pub struct Transition {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    coeffs: Vec<f64>,
    kind: Normalization,
    node_count: usize,
}

impl Transition {
    /// Normalizes `graph` according to `kind`.
    ///
    /// Isolated nodes get an all-zero column (the walk can never reach or
    /// leave them), which the stochastic invariant tolerates.
    pub fn new(graph: &CsrGraph, kind: Normalization) -> Self {
        match kind {
            Normalization::ColumnStochastic => Self::degree_penalized(graph, 0.0),
            Normalization::DegreePenalized { alpha } => Self::degree_penalized(graph, alpha),
            Normalization::Symmetric => Self::symmetric(graph),
        }
    }

    /// Eq. 10 + Eq. 5. With `alpha == 0` this is exactly Eq. 5.
    fn degree_penalized(graph: &CsrGraph, alpha: f64) -> Self {
        let n = graph.node_count();
        // Penalty factor 1 / d_u^alpha per *destination* node u (the row node
        // of Eq. 10 becomes the destination when reading down a column).
        let penalty: Vec<f64> = (0..n)
            .map(|u| {
                let d = graph.degree(NodeId::from_index(u));
                if d > 0.0 {
                    d.powf(-alpha)
                } else {
                    0.0
                }
            })
            .collect();

        // Column sums of the penalized matrix: for column v,
        // Σ_u w(u, v) · penalty[u].
        let mut col_sum = vec![0f64; n];
        for v in 0..n {
            let vid = NodeId::from_index(v);
            let ids = graph.neighbor_ids(vid);
            let ws = graph.neighbor_weights(vid);
            let mut s = 0.0;
            for (t, w) in ids.iter().zip(ws) {
                s += w * penalty[*t as usize];
            }
            col_sum[v] = s;
        }

        // coeff[u→v] = w(u, v) · penalty[u] / col_sum[v].
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(graph.arc_count());
        let mut coeffs = Vec::with_capacity(graph.arc_count());
        offsets.push(0u32);
        for u in 0..n {
            let uid = NodeId::from_index(u);
            let ids = graph.neighbor_ids(uid);
            let ws = graph.neighbor_weights(uid);
            for (t, w) in ids.iter().zip(ws) {
                let v = *t as usize;
                let c = if col_sum[v] > 0.0 {
                    w * penalty[u] / col_sum[v]
                } else {
                    0.0
                };
                targets.push(*t);
                coeffs.push(c);
            }
            offsets.push(targets.len() as u32);
        }
        Transition {
            offsets,
            targets,
            coeffs,
            kind: Normalization::DegreePenalized { alpha },
            node_count: n,
        }
    }

    /// Eq. 20: `S[u, v] = w(u, v) / sqrt(d_u · d_v)`.
    fn symmetric(graph: &CsrGraph) -> Self {
        let n = graph.node_count();
        let inv_sqrt: Vec<f64> = (0..n)
            .map(|u| {
                let d = graph.degree(NodeId::from_index(u));
                if d > 0.0 {
                    1.0 / d.sqrt()
                } else {
                    0.0
                }
            })
            .collect();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(graph.arc_count());
        let mut coeffs = Vec::with_capacity(graph.arc_count());
        offsets.push(0u32);
        for u in 0..n {
            let uid = NodeId::from_index(u);
            let ids = graph.neighbor_ids(uid);
            let ws = graph.neighbor_weights(uid);
            for (t, w) in ids.iter().zip(ws) {
                targets.push(*t);
                coeffs.push(w * inv_sqrt[u] * inv_sqrt[*t as usize]);
            }
            offsets.push(targets.len() as u32);
        }
        Transition {
            offsets,
            targets,
            coeffs,
            kind: Normalization::Symmetric,
            node_count: n,
        }
    }

    /// The normalization this operator applies.
    pub fn kind(&self) -> Normalization {
        self.kind
    }

    /// Number of nodes (matrix dimension).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Computes `out = M · x` (one sparse matrix–vector product).
    ///
    /// The caller layers the restart term on top (`ceps-rwr` does
    /// `x ← c · Mx + (1−c) e`).
    ///
    /// # Panics
    /// Panics if `x` or `out` is not `node_count` long.
    pub fn apply(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.node_count, "input vector length mismatch");
        assert_eq!(out.len(), self.node_count, "output vector length mismatch");
        for u in 0..self.node_count {
            let (s, e) = (self.offsets[u] as usize, self.offsets[u + 1] as usize);
            let mut acc = 0.0;
            for (t, c) in self.targets[s..e].iter().zip(&self.coeffs[s..e]) {
                acc += c * x[*t as usize];
            }
            out[u] = acc;
        }
    }

    /// Computes `out = M · X` for a dense block `X` of `cols` column
    /// vectors, stored row-major with stride `cols` (node-major: `X[u, j]`
    /// at `x[u * cols + j]`).
    ///
    /// One pass over the CSR arrays serves every column: each
    /// `(target, coeff)` entry is loaded once and applied to `cols`
    /// accumulators, instead of being re-read per solve as in the
    /// one-column [`Transition::apply`]. Per column, the accumulation
    /// visits arcs in the same order as `apply`, so results are
    /// bitwise-identical to `cols` independent scalar products.
    ///
    /// # Panics
    /// Panics if `cols == 0` or either slice is not `node_count * cols`
    /// long.
    pub fn apply_block(&self, x: &[f64], out: &mut [f64], cols: usize) {
        assert!(cols > 0, "block must have at least one column");
        assert_eq!(
            x.len(),
            self.node_count * cols,
            "input block length mismatch"
        );
        assert_eq!(
            out.len(),
            self.node_count * cols,
            "output block length mismatch"
        );
        self.apply_block_rows(x, out, cols, 0);
    }

    /// Block kernel over the row range `first_row ..`, writing into `out`
    /// (whose length selects how many rows are computed). Shared by
    /// [`Transition::apply_block`] and the parallel row-chunked variants.
    ///
    /// Dispatches narrow widths to a const-generic kernel whose `cols`
    /// accumulators live in registers for the whole CSR sweep; the batched
    /// win over repeated [`Transition::apply`] comes from that reuse. Wider
    /// blocks sweep the CSR arrays once per 8-column panel, which keeps the
    /// register pressure bounded while still amortizing each entry load
    /// across 8 columns.
    fn apply_block_rows(&self, x: &[f64], out: &mut [f64], cols: usize, first_row: usize) {
        debug_assert_eq!(out.len() % cols, 0);
        match cols {
            1 => self.apply_block_rows_fixed::<1>(x, out, cols, first_row, 0),
            2 => self.apply_block_rows_fixed::<2>(x, out, cols, first_row, 0),
            3 => self.apply_block_rows_fixed::<3>(x, out, cols, first_row, 0),
            4 => self.apply_block_rows_fixed::<4>(x, out, cols, first_row, 0),
            5 => self.apply_block_rows_fixed::<5>(x, out, cols, first_row, 0),
            6 => self.apply_block_rows_fixed::<6>(x, out, cols, first_row, 0),
            7 => self.apply_block_rows_fixed::<7>(x, out, cols, first_row, 0),
            8 => self.apply_block_rows_fixed::<8>(x, out, cols, first_row, 0),
            _ => {
                let mut first_col = 0;
                while first_col < cols {
                    match cols - first_col {
                        1 => self.apply_block_rows_fixed::<1>(x, out, cols, first_row, first_col),
                        2 => self.apply_block_rows_fixed::<2>(x, out, cols, first_row, first_col),
                        3 => self.apply_block_rows_fixed::<3>(x, out, cols, first_row, first_col),
                        4 => self.apply_block_rows_fixed::<4>(x, out, cols, first_row, first_col),
                        5 => self.apply_block_rows_fixed::<5>(x, out, cols, first_row, first_col),
                        6 => self.apply_block_rows_fixed::<6>(x, out, cols, first_row, first_col),
                        7 => self.apply_block_rows_fixed::<7>(x, out, cols, first_row, first_col),
                        _ => self.apply_block_rows_fixed::<8>(x, out, cols, first_row, first_col),
                    }
                    first_col += 8;
                }
            }
        }
    }

    /// Computes the `K`-column panel starting at column `first_col` of the
    /// stride-`cols` block, for the rows covered by `out`. Per column the
    /// arc order is identical to [`Transition::apply`], so any panel split
    /// produces bitwise-identical results.
    fn apply_block_rows_fixed<const K: usize>(
        &self,
        x: &[f64],
        out: &mut [f64],
        cols: usize,
        first_row: usize,
        first_col: usize,
    ) {
        for (local, orow) in out.chunks_exact_mut(cols).enumerate() {
            let u = first_row + local;
            let (s, e) = (self.offsets[u] as usize, self.offsets[u + 1] as usize);
            let mut acc = [0f64; K];
            for (t, c) in self.targets[s..e].iter().zip(&self.coeffs[s..e]) {
                let xrow = &x[*t as usize * cols + first_col..];
                for (a, xv) in acc.iter_mut().zip(&xrow[..K]) {
                    *a += c * xv;
                }
            }
            orow[first_col..first_col + K].copy_from_slice(&acc);
        }
    }

    /// Number of stored coefficients (arcs): the cost of one
    /// [`Transition::apply`] sweep, and — times the column count — the
    /// work estimate the parallel kernels weigh against a pool's
    /// [`WorkerPool::min_work`] threshold.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.coeffs.len()
    }

    /// Splits the rows into up to `target` contiguous ranges of roughly
    /// equal **nonzero count** (not row count): chunk boundaries are found
    /// by binary-searching the CSR `offsets` prefix sums for the `k/target`
    /// nnz quantiles. Skewed-degree graphs (ours are) make per-row-count
    /// chunks pathologically unbalanced — one hub-heavy chunk serializes
    /// the whole product; nnz balancing is what lets the worker pool keep
    /// every thread busy.
    ///
    /// Ranges are non-empty, disjoint, ascending and cover `0..node_count`
    /// exactly. A row whose nnz exceeds a quantile span simply becomes its
    /// own (oversized) chunk — rows are never split.
    pub fn balanced_row_chunks(&self, target: usize) -> Vec<(usize, usize)> {
        let n = self.node_count;
        if n == 0 {
            return Vec::new();
        }
        let target = target.clamp(1, n);
        let nnz = self.nnz() as u64;
        if nnz == 0 {
            return vec![(0, n)];
        }
        let mut chunks = Vec::with_capacity(target);
        let mut prev = 0usize;
        for k in 1..target {
            let want = (k as u64 * nnz).div_ceil(target as u64) as u32;
            // First row index whose prefix sum reaches the quantile.
            let bound = self.offsets.partition_point(|&o| o < want).min(n);
            if bound > prev {
                chunks.push((prev, bound));
                prev = bound;
            }
        }
        if prev < n {
            chunks.push((prev, n));
        }
        chunks
    }

    /// Parallel [`Transition::apply`] over a persistent [`WorkerPool`]:
    /// identical to the sequential kernel, with rows computed by whichever
    /// worker claims them. See [`Transition::par_apply_block`].
    ///
    /// # Panics
    /// Panics if `x` or `out` is not `node_count` long.
    pub fn par_apply(&self, x: &[f64], out: &mut [f64], pool: &WorkerPool) {
        assert_eq!(x.len(), self.node_count, "input vector length mismatch");
        assert_eq!(out.len(), self.node_count, "output vector length mismatch");
        self.par_apply_block(x, out, 1, pool);
    }

    /// Parallel [`Transition::apply_block`] over a persistent
    /// [`WorkerPool`]: one dispatch (wake → steal → sleep) per call, no
    /// thread spawns. The rows are pre-split into nnz-balanced chunks
    /// ([`Transition::balanced_row_chunks`], ~4 per worker) and claimed off
    /// an atomic cursor, so a straggling worker sheds load to the others.
    ///
    /// Falls back to the sequential kernel when the pool is
    /// single-threaded or the estimated work (`nnz × cols`) is under the
    /// pool's [`WorkerPool::min_work`] threshold — below it the barrier
    /// costs more than the parallelism recovers.
    ///
    /// **Bitwise-identical to [`Transition::apply_block`]**: each row is
    /// computed by exactly one worker with the same per-row arithmetic
    /// order, so neither the chunking nor the claiming order can change a
    /// single bit of the output.
    ///
    /// Telemetry (when a `ceps-obs` recorder is installed): a `pool.apply`
    /// span around the dispatch and a `pool.chunks_stolen` counter for
    /// chunks claimed by non-calling workers.
    ///
    /// # Panics
    /// Panics if `cols == 0`, either slice is not `node_count * cols` long,
    /// or the job panics on a worker.
    pub fn par_apply_block(&self, x: &[f64], out: &mut [f64], cols: usize, pool: &WorkerPool) {
        assert!(cols > 0, "block must have at least one column");
        assert_eq!(
            x.len(),
            self.node_count * cols,
            "input block length mismatch"
        );
        assert_eq!(
            out.len(),
            self.node_count * cols,
            "output block length mismatch"
        );
        let workers = pool.threads().min(self.node_count).max(1);
        if workers <= 1 || self.nnz().saturating_mul(cols) < pool.min_work() {
            return self.apply_block_rows(x, out, cols, 0);
        }
        let _span = ceps_obs::span("pool.apply");
        let bounds = self.balanced_row_chunks(workers * ceps_pool::CHUNKS_PER_WORKER);
        // Split `out` into per-chunk slices up front; each cell is locked
        // exactly once by whichever worker claims it (uncontended by
        // construction — the cursor hands every index to one worker), which
        // is how disjoint `&mut` access crosses the `Fn` closure without
        // `unsafe` in this crate.
        let mut jobs: Vec<Mutex<Option<(usize, &mut [f64])>>> = Vec::with_capacity(bounds.len());
        let mut rest = out;
        for &(start, end) in &bounds {
            let (chunk, tail) = rest.split_at_mut((end - start) * cols);
            jobs.push(Mutex::new(Some((start, chunk))));
            rest = tail;
        }
        let cursor = AtomicUsize::new(0);
        let stolen = AtomicU64::new(0);
        pool.run(&|worker| {
            let mut claimed = 0u64;
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = jobs.get(i) else { break };
                let (first_row, chunk) = cell
                    .lock()
                    .expect("chunk cell lock")
                    .take()
                    .expect("chunk claimed twice");
                self.apply_block_rows(x, chunk, cols, first_row);
                claimed += 1;
            }
            if worker != 0 && claimed > 0 {
                stolen.fetch_add(claimed, Ordering::Relaxed);
            }
        });
        if ceps_obs::enabled() {
            ceps_obs::counter("pool.chunks_stolen", stolen.load(Ordering::Relaxed));
        }
    }

    /// The matrix entry `M[u, v]` (`W̃[u, v]` in the paper's notation — for
    /// the stochastic kinds, the probability of stepping `v → u`).
    ///
    /// Used by the edge-score definition Eq. 15. `O(log deg(u))`.
    pub fn coeff(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let (s, e) = (
            self.offsets[u.index()] as usize,
            self.offsets[u.index() + 1] as usize,
        );
        self.targets[s..e]
            .binary_search(&v.0)
            .ok()
            .map(|i| self.coeffs[s + i])
    }

    /// Out-neighborhood view used by solvers: ids and coefficients of row `u`.
    #[inline]
    pub fn row(&self, u: NodeId) -> (&[u32], &[f64]) {
        let (s, e) = (
            self.offsets[u.index()] as usize,
            self.offsets[u.index() + 1] as usize,
        );
        (&self.targets[s..e], &self.coeffs[s..e])
    }

    /// Entries of column `v`: `(u, M[u, v])` for every structurally
    /// non-zero row `u` — the out-distribution of a walk standing at `v`
    /// for the stochastic kinds. `O(deg(v) · log deg(u))`.
    ///
    /// The sparsity pattern is symmetric (the operator comes from an
    /// undirected graph), so column `v`'s rows are exactly `v`'s CSR
    /// neighbors; only the coefficients differ from row `v`'s.
    pub fn column_entries(&self, v: NodeId) -> Vec<(NodeId, f64)> {
        let (ids, _) = self.row(v);
        ids.iter()
            .map(|&u| {
                let c = self.coeff(NodeId(u), v).unwrap_or(0.0);
                (NodeId(u), c)
            })
            .collect()
    }

    /// Column sums `Σ_u M[u, v]` — 1.0 (or 0.0 for isolated nodes) for the
    /// stochastic kinds; used by tests to assert the invariant.
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0f64; self.node_count];
        for u in 0..self.node_count {
            let (s, e) = (self.offsets[u] as usize, self.offsets[u + 1] as usize);
            for (t, c) in self.targets[s..e].iter().zip(&self.coeffs[s..e]) {
                sums[*t as usize] += c;
            }
        }
        sums
    }

    /// Densifies the operator into row-major `n × n` — test-oracle helper for
    /// small graphs only.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let n = self.node_count;
        let mut m = vec![vec![0f64; n]; n];
        for u in 0..n {
            let (s, e) = (self.offsets[u] as usize, self.offsets[u + 1] as usize);
            for (t, c) in self.targets[s..e].iter().zip(&self.coeffs[s..e]) {
                m[u][*t as usize] = *c;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_plus_tail() -> CsrGraph {
        // Triangle 0-1-2 (weights 1, 2, 3) with a tail 2-3 (weight 4).
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 3.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 4.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn column_stochastic_columns_sum_to_one() {
        let g = triangle_plus_tail();
        let t = Transition::new(&g, Normalization::ColumnStochastic);
        for s in t.column_sums() {
            assert!((s - 1.0).abs() < 1e-12, "column sum {s}");
        }
    }

    #[test]
    fn column_stochastic_matches_w_over_degree() {
        let g = triangle_plus_tail();
        let t = Transition::new(&g, Normalization::ColumnStochastic);
        // M[u, v] = w(u, v) / d_v. d_2 = 2 + 3 + 4 = 9.
        let c = t.coeff(NodeId(1), NodeId(2)).unwrap();
        assert!((c - 2.0 / 9.0).abs() < 1e-12);
        let c = t.coeff(NodeId(3), NodeId(2)).unwrap();
        assert!((c - 4.0 / 9.0).abs() < 1e-12);
        assert_eq!(t.coeff(NodeId(0), NodeId(3)), None);
    }

    #[test]
    fn degree_penalized_columns_still_stochastic() {
        let g = triangle_plus_tail();
        for alpha in [0.0, 0.25, 0.5, 1.0] {
            let t = Transition::new(&g, Normalization::DegreePenalized { alpha });
            for s in t.column_sums() {
                assert!((s - 1.0).abs() < 1e-12, "alpha {alpha}: column sum {s}");
            }
        }
    }

    #[test]
    fn alpha_zero_equals_plain_column_normalization() {
        let g = triangle_plus_tail();
        let a = Transition::new(&g, Normalization::ColumnStochastic);
        let b = Transition::new(&g, Normalization::DegreePenalized { alpha: 0.0 });
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(a.coeff(u, v), b.coeff(u, v));
            }
        }
    }

    #[test]
    fn penalization_shifts_mass_away_from_high_degree_destinations() {
        // From node 1, the unpenalized walk prefers node 2 (weight 2, d=9)
        // over node 0 (weight 1, d=4). Penalizing by destination degree must
        // raise the relative probability of the low-degree destination 0.
        let g = triangle_plus_tail();
        let plain = Transition::new(&g, Normalization::ColumnStochastic);
        let pen = Transition::new(&g, Normalization::DegreePenalized { alpha: 1.0 });
        let ratio_plain =
            plain.coeff(NodeId(0), NodeId(1)).unwrap() / plain.coeff(NodeId(2), NodeId(1)).unwrap();
        let ratio_pen =
            pen.coeff(NodeId(0), NodeId(1)).unwrap() / pen.coeff(NodeId(2), NodeId(1)).unwrap();
        assert!(ratio_pen > ratio_plain);
    }

    #[test]
    fn symmetric_kind_is_symmetric() {
        let g = triangle_plus_tail();
        let t = Transition::new(&g, Normalization::Symmetric);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(t.coeff(u, v), t.coeff(v, u));
            }
        }
        // Column sums of S are not stochastic (they may exceed 1); the
        // relevant spectral property (radius ≤ 1, so Eq. 20 converges) is
        // exercised by the ceps-rwr variant tests instead.
        // S[0, 1] = w / sqrt(d_0 d_1) = 1 / sqrt(4 * 3).
        let c = t.coeff(NodeId(0), NodeId(1)).unwrap();
        assert!((c - 1.0 / (12.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn apply_matches_dense_multiply() {
        let g = triangle_plus_tail();
        let t = Transition::new(&g, Normalization::DegreePenalized { alpha: 0.5 });
        let dense = t.to_dense();
        let x = [0.1, 0.2, 0.3, 0.4];
        let mut out = [0f64; 4];
        t.apply(&x, &mut out);
        for u in 0..4 {
            let want: f64 = (0..4).map(|v| dense[u][v] * x[v]).sum();
            assert!((out[u] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn isolated_nodes_get_zero_columns() {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let g = b.build().unwrap();
        let t = Transition::new(&g, Normalization::ColumnStochastic);
        let sums = t.column_sums();
        assert!((sums[0] - 1.0).abs() < 1e-12);
        assert!((sums[1] - 1.0).abs() < 1e-12);
        assert_eq!(sums[2], 0.0);
    }
}
