//! Descriptive graph statistics.
//!
//! The substitution argument in DESIGN.md rests on the synthetic graphs
//! matching DBLP's *structural* profile: skewed degrees, local clustering
//! (papers are cliques), community structure. This module computes the
//! numbers those claims are checked against — in `ceps-datagen`'s tests,
//! the `ceps stats` CLI command and EXPERIMENTS.md.

use crate::{CsrGraph, NodeId};

/// Summary statistics of a weighted graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Total edge weight.
    pub total_weight: f64,
    /// Mean unweighted degree.
    pub mean_degree: f64,
    /// Maximum unweighted degree.
    pub max_degree: usize,
    /// Mean weighted degree.
    pub mean_weighted_degree: f64,
    /// Maximum weighted degree.
    pub max_weighted_degree: f64,
    /// Gini coefficient of the unweighted degree distribution
    /// (0 = all equal, → 1 = extreme skew).
    pub degree_gini: f64,
    /// Global clustering coefficient (3 × triangles / wedges), unweighted.
    pub clustering: f64,
}

/// Computes the full summary. Triangle counting is exact and runs in
/// `O(Σ_v deg(v)²)` — fine up to the paper's scale for occasional reports,
/// not for inner loops.
pub fn graph_stats(graph: &CsrGraph) -> GraphStats {
    let n = graph.node_count();
    let degrees: Vec<usize> = graph.nodes().map(|v| graph.neighbor_count(v)).collect();
    let wdegrees: Vec<f64> = graph.nodes().map(|v| graph.degree(v)).collect();

    let mean_degree = degrees.iter().sum::<usize>() as f64 / n as f64;
    let mean_weighted_degree = wdegrees.iter().sum::<f64>() / n as f64;

    let (triangles, wedges) = triangle_and_wedge_counts(graph);
    let clustering = if wedges == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / wedges as f64
    };

    GraphStats {
        nodes: n,
        edges: graph.edge_count(),
        total_weight: graph.total_weight(),
        mean_degree,
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        mean_weighted_degree,
        max_weighted_degree: graph.max_degree(),
        degree_gini: gini(&degrees),
        clustering,
    }
}

/// Gini coefficient of a non-negative integer sample.
pub fn gini(values: &[usize]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.iter().map(|&v| v as f64).collect();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let sum: f64 = sorted.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    // G = (2 Σ_i i·x_i) / (n Σ x) − (n + 1)/n with 1-based ranks.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * sum) - (n + 1.0) / n
}

/// Exact triangle count plus wedge (open + closed 2-path) count.
fn triangle_and_wedge_counts(graph: &CsrGraph) -> (u64, u64) {
    let mut triangles = 0u64;
    let mut wedges = 0u64;
    for v in graph.nodes() {
        let d = graph.neighbor_count(v) as u64;
        wedges += d * d.saturating_sub(1) / 2;
        // Count triangles where v is the smallest id (each counted once).
        let nv = graph.neighbor_ids(v);
        for (i, &a) in nv.iter().enumerate() {
            if a <= v.0 {
                continue;
            }
            for &b in &nv[i + 1..] {
                if b > a && graph.has_edge(NodeId(a), NodeId(b)) {
                    triangles += 1;
                }
            }
        }
    }
    (triangles, wedges)
}

/// Degree histogram in logarithmic buckets `[2^i, 2^{i+1})` — the standard
/// view for eyeballing a power law.
pub fn log_degree_histogram(graph: &CsrGraph) -> Vec<(usize, usize)> {
    let mut buckets: Vec<usize> = Vec::new();
    for v in graph.nodes() {
        let d = graph.neighbor_count(v);
        if d == 0 {
            continue;
        }
        let b = usize::BITS as usize - 1 - d.leading_zeros() as usize;
        if buckets.len() <= b {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(i, c)| (1usize << i, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_plus_pendant() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for (x, y) in [(0, 1), (1, 2), (0, 2), (2, 3)] {
            b.add_edge(NodeId(x), NodeId(y), 2.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn counts_and_means() {
        let s = graph_stats(&triangle_plus_pendant());
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.total_weight, 8.0);
        assert_eq!(s.max_degree, 3);
        assert!((s.mean_degree - 2.0).abs() < 1e-12);
        assert_eq!(s.max_weighted_degree, 6.0);
    }

    #[test]
    fn clustering_of_triangle_with_pendant() {
        // 1 triangle; wedges: deg 2,2,3,1 -> 1+1+3+0 = 5; C = 3/5.
        let s = graph_stats(&triangle_plus_pendant());
        assert!(
            (s.clustering - 0.6).abs() < 1e-12,
            "clustering {}",
            s.clustering
        );
    }

    #[test]
    fn clique_clustering_is_one_path_is_zero() {
        let mut b = GraphBuilder::new();
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_edge(NodeId(i), NodeId(j), 1.0).unwrap();
            }
        }
        assert!((graph_stats(&b.build().unwrap()).clustering - 1.0).abs() < 1e-12);

        let mut b = GraphBuilder::new();
        for i in 0..4u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        assert_eq!(graph_stats(&b.build().unwrap()).clustering, 0.0);
    }

    #[test]
    fn gini_bounds() {
        assert_eq!(gini(&[]), 0.0);
        assert!(
            (gini(&[5, 5, 5, 5])).abs() < 1e-12,
            "equal sample must be 0"
        );
        // One node holds everything: G -> (n-1)/n.
        let g = gini(&[0, 0, 0, 100]);
        assert!((g - 0.75).abs() < 1e-12, "gini {g}");
        // Skewed beats uniform.
        assert!(gini(&[1, 1, 1, 97]) > gini(&[20, 30, 25, 25]));
    }

    #[test]
    fn log_histogram_buckets_by_powers_of_two() {
        // Degrees: 2, 2, 3, 1 -> bucket 1: one node (deg 1); bucket 2: three.
        let h = log_degree_histogram(&triangle_plus_pendant());
        assert_eq!(h, vec![(1, 1), (2, 3)]);
    }
}
