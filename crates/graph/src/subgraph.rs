//! Node-induced subgraphs.
//!
//! Two distinct needs share this module:
//!
//! * **EXTRACT's output** (Table 4) is "a small, unweighted, undirected
//!   graph `H`" — a set of nodes of the big graph plus the edges induced
//!   among them. [`Subgraph`] keeps the original ids so scores indexed by
//!   the parent graph keep working, which is what the evaluation ratios
//!   (Eqs. 13–14) need.
//! * **Fast CePS** (Table 5) runs the whole pipeline on the union of the
//!   partitions containing the query nodes; [`Subgraph::into_graph`]
//!   materializes that union as a standalone [`CsrGraph`] with a dense
//!   re-numbering and a mapping back to parent ids.

use std::collections::BTreeSet;

use crate::{CsrGraph, GraphBuilder, GraphError, NodeId, Result};

/// A node-induced subgraph of a parent [`CsrGraph`], addressed by parent ids.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Subgraph {
    /// Members in ascending id order (deterministic iteration).
    nodes: BTreeSet<NodeId>,
}

impl Subgraph {
    /// An empty subgraph.
    pub fn new() -> Self {
        Subgraph {
            nodes: BTreeSet::new(),
        }
    }

    /// A subgraph over the given nodes (duplicates collapse).
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        Subgraph {
            nodes: nodes.into_iter().collect(),
        }
    }

    /// Adds a node; returns whether it was new.
    pub fn insert(&mut self, v: NodeId) -> bool {
        self.nodes.insert(v)
    }

    /// Whether `v` is a member.
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.contains(&v)
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the subgraph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates members in ascending id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Extends with all of `other`'s nodes.
    pub fn union_with(&mut self, other: &Subgraph) {
        self.nodes.extend(other.nodes.iter().copied());
    }

    /// Edges of `parent` with **both** endpoints in the subgraph, each once
    /// as `(lo, hi, weight)`.
    pub fn induced_edges<'a>(
        &'a self,
        parent: &'a CsrGraph,
    ) -> impl Iterator<Item = (NodeId, NodeId, f64)> + 'a {
        self.nodes.iter().flat_map(move |&v| {
            parent
                .neighbors(v)
                .filter(move |&(u, _)| v.0 < u.0 && self.contains(u))
                .map(move |(u, w)| (v, u, w))
        })
    }

    /// Number of induced edges.
    pub fn induced_edge_count(&self, parent: &CsrGraph) -> usize {
        self.induced_edges(parent).count()
    }

    /// Materializes the induced subgraph as a standalone graph.
    ///
    /// Returns the new graph plus `back`: `back[new_id] = parent_id`, the
    /// mapping Fast CePS uses to translate results on the shrunken graph
    /// back to the original.
    ///
    /// # Errors
    /// [`GraphError::EmptyGraph`] if the subgraph has no nodes, or
    /// [`GraphError::NodeOutOfBounds`] if a member id is not in `parent`.
    pub fn into_graph(&self, parent: &CsrGraph) -> Result<(CsrGraph, Vec<NodeId>)> {
        if self.nodes.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        let back: Vec<NodeId> = self.nodes.iter().copied().collect();
        for &v in &back {
            parent.check_node(v)?;
        }
        // Dense forward map: parent id -> new id (u32::MAX = absent).
        let mut fwd = vec![u32::MAX; parent.node_count()];
        for (new, old) in back.iter().enumerate() {
            fwd[old.index()] = new as u32;
        }
        let mut b = GraphBuilder::with_nodes(back.len());
        for (lo, hi, w) in self.induced_edges(parent) {
            b.add_edge(NodeId(fwd[lo.index()]), NodeId(fwd[hi.index()]), w)?;
        }
        Ok((b.build()?, back))
    }

    /// Whether the induced subgraph is connected when restricted to members
    /// (an empty subgraph counts as connected).
    pub fn is_connected(&self, parent: &CsrGraph) -> bool {
        let Some(&start) = self.nodes.iter().next() else {
            return true;
        };
        let mut seen = BTreeSet::new();
        seen.insert(start);
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            for (u, _) in parent.neighbors(v) {
                if self.contains(u) && seen.insert(u) {
                    stack.push(u);
                }
            }
        }
        seen.len() == self.nodes.len()
    }

    /// Number of connected components among the members (0 for empty).
    pub fn component_count(&self, parent: &CsrGraph) -> usize {
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        let mut components = 0;
        for &start in &self.nodes {
            if seen.contains(&start) {
                continue;
            }
            components += 1;
            seen.insert(start);
            let mut stack = vec![start];
            while let Some(v) = stack.pop() {
                for (u, _) in parent.neighbors(v) {
                    if self.contains(u) && seen.insert(u) {
                        stack.push(u);
                    }
                }
            }
        }
        components
    }
}

impl Default for Subgraph {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<NodeId> for Subgraph {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        Subgraph::from_nodes(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0-1-2-3-4 path plus chord 1-3.
    fn parent() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for (a, bb, w) in [
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (3, 4, 1.0),
            (1, 3, 5.0),
        ] {
            b.add_edge(NodeId(a), NodeId(bb), w).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn membership_and_iteration_order() {
        let s = Subgraph::from_nodes([NodeId(3), NodeId(1), NodeId(3)]);
        assert_eq!(s.len(), 2);
        let order: Vec<_> = s.nodes().collect();
        assert_eq!(order, vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn induced_edges_require_both_endpoints() {
        let g = parent();
        let s = Subgraph::from_nodes([NodeId(1), NodeId(3), NodeId(4)]);
        let edges: Vec<_> = s.induced_edges(&g).collect();
        assert_eq!(
            edges,
            vec![(NodeId(1), NodeId(3), 5.0), (NodeId(3), NodeId(4), 1.0)]
        );
        assert_eq!(s.induced_edge_count(&g), 2);
    }

    #[test]
    fn into_graph_renumbers_and_maps_back() {
        let g = parent();
        let s = Subgraph::from_nodes([NodeId(1), NodeId(3), NodeId(4)]);
        let (sub, back) = s.into_graph(&g).unwrap();
        assert_eq!(back, vec![NodeId(1), NodeId(3), NodeId(4)]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        // New id 0 = parent 1, new id 1 = parent 3: the chord weight rides along.
        assert_eq!(sub.weight(NodeId(0), NodeId(1)), Some(5.0));
    }

    #[test]
    fn into_graph_rejects_empty_and_foreign_nodes() {
        let g = parent();
        assert!(Subgraph::new().into_graph(&g).is_err());
        let s = Subgraph::from_nodes([NodeId(99)]);
        assert!(s.into_graph(&g).is_err());
    }

    #[test]
    fn connectivity_and_components() {
        let g = parent();
        let connected = Subgraph::from_nodes([NodeId(1), NodeId(2), NodeId(3)]);
        assert!(connected.is_connected(&g));
        assert_eq!(connected.component_count(&g), 1);

        let split = Subgraph::from_nodes([NodeId(0), NodeId(4)]);
        assert!(!split.is_connected(&g));
        assert_eq!(split.component_count(&g), 2);

        assert!(Subgraph::new().is_connected(&g));
        assert_eq!(Subgraph::new().component_count(&g), 0);
    }

    #[test]
    fn union_merges_node_sets() {
        let mut a = Subgraph::from_nodes([NodeId(0), NodeId(1)]);
        let b = Subgraph::from_nodes([NodeId(1), NodeId(2)]);
        a.union_with(&b);
        assert_eq!(a.len(), 3);
    }
}
