//! Property-based tests for the graph substrate.

use std::io::Cursor;

use ceps_graph::{
    algo::{connected_components, dijkstra, hop_distances},
    io::{read_edge_list, write_edge_list},
    normalize::{Normalization, Transition},
    GraphBuilder, LayoutChoice, NodeId, Precision, Subgraph, TransitionOptions,
};
use proptest::prelude::*;

/// Arbitrary edge soup over up to 24 nodes (may be disconnected, with
/// duplicate pairs to exercise merging).
fn arb_edges() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (2usize..=24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, 0.1f64..100.0), 1..4 * n);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(usize, usize, f64)]) -> ceps_graph::CsrGraph {
    let mut b = GraphBuilder::with_nodes(n);
    for &(x, y, w) in edges {
        if x != y {
            b.add_edge(NodeId(x as u32), NodeId(y as u32), w).unwrap();
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR structural invariants: symmetric adjacency, sorted neighbor
    /// slices, degree = sum of incident weights.
    #[test]
    fn csr_invariants_hold((n, edges) in arb_edges()) {
        let g = build(n, &edges);
        for v in g.nodes() {
            let ids = g.neighbor_ids(v);
            prop_assert!(ids.windows(2).all(|w| w[0] < w[1]), "unsorted slice at {v}");
            let mut deg = 0.0;
            for (u, w) in g.neighbors(v) {
                prop_assert_eq!(g.weight(u, v), Some(w), "asymmetric edge {}-{}", v, u);
                deg += w;
            }
            prop_assert!((deg - g.degree(v)).abs() < 1e-9);
        }
        // Arc count is exactly twice the edge count.
        prop_assert_eq!(g.arc_count(), 2 * g.edge_count());
        // Total weight halves the degree sum.
        let deg_sum: f64 = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert!((g.total_weight() - deg_sum / 2.0).abs() < 1e-9);
    }

    /// Duplicate edges merge by weight sum regardless of orientation.
    #[test]
    fn duplicate_edges_merge((n, edges) in arb_edges()) {
        let g = build(n, &edges);
        // Recompute expected pair sums independently.
        let mut expected = std::collections::BTreeMap::new();
        for &(x, y, w) in &edges {
            if x != y {
                let key = (x.min(y), x.max(y));
                *expected.entry(key).or_insert(0.0) += w;
            }
        }
        prop_assert_eq!(g.edge_count(), expected.len());
        for ((lo, hi), w) in expected {
            let got = g.weight(NodeId(lo as u32), NodeId(hi as u32)).unwrap();
            prop_assert!((got - w).abs() < 1e-9);
        }
    }

    /// Edge-list round trip is the identity.
    #[test]
    fn io_round_trip((n, edges) in arb_edges()) {
        let g = build(n, &edges);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        prop_assert_eq!(g, g2);
    }

    /// Stochastic normalizations have unit (or empty) columns for any
    /// graph and alpha.
    #[test]
    fn normalization_columns_stochastic((n, edges) in arb_edges(), alpha in 0.0f64..2.0) {
        let g = build(n, &edges);
        let t = Transition::new(&g, Normalization::DegreePenalized { alpha });
        for (v, s) in t.column_sums().into_iter().enumerate() {
            let isolated = g.degree(NodeId(v as u32)) == 0.0;
            if isolated {
                prop_assert_eq!(s, 0.0);
            } else {
                prop_assert!((s - 1.0).abs() < 1e-9, "column {v} sums to {s}");
            }
        }
        // column_entries agrees with coeff lookups.
        for v in g.nodes() {
            for (u, c) in t.column_entries(v) {
                prop_assert_eq!(t.coeff(u, v), Some(c));
            }
        }
    }

    /// The block kernel is the scalar operator applied per column: for any
    /// graph, normalization and block width, `apply_block` on a random
    /// N x Q block equals Q scalar `apply` calls, bitwise (the per-column
    /// arithmetic order is identical by construction).
    #[test]
    fn apply_block_matches_scalar_apply(
        (n, edges) in arb_edges(),
        alpha in 0.0f64..2.0,
        cols in 1usize..6,
        fill in proptest::collection::vec(0.0f64..1.0, 24 * 6),
    ) {
        let g = build(n, &edges);
        let t = Transition::new(&g, Normalization::DegreePenalized { alpha });
        let x: Vec<f64> = fill[..n * cols].to_vec();
        let mut block_out = vec![0f64; n * cols];
        t.apply_block(&x, &mut block_out, cols);
        let mut col = vec![0f64; n];
        let mut col_out = vec![0f64; n];
        for j in 0..cols {
            for u in 0..n {
                col[u] = x[u * cols + j];
            }
            t.apply(&col, &mut col_out);
            for u in 0..n {
                prop_assert_eq!(block_out[u * cols + j], col_out[u],
                    "col {} node {}", j, u);
            }
        }
    }

    /// Pooled row-chunking never changes the output: `par_apply_block`
    /// over a persistent worker pool equals `apply_block` bitwise across
    /// thread counts {1, 2, 3, 8} and widths {1, 2, 5} (each row is
    /// computed by exactly one worker, same inner loop). The pool's
    /// `min_work` is forced to 0 so tiny random graphs still exercise the
    /// parallel path, and the pool is reused across both calls like the
    /// solver reuses it across iterations.
    #[test]
    fn par_apply_block_matches_sequential(
        (n, edges) in arb_edges(),
        cols_pick in 0usize..3,
        threads_pick in 0usize..4,
        fill in proptest::collection::vec(0.0f64..1.0, 24 * 5),
    ) {
        let cols = [1usize, 2, 5][cols_pick];
        let threads = [1usize, 2, 3, 8][threads_pick];
        let g = build(n, &edges);
        let t = Transition::new(&g, Normalization::ColumnStochastic);
        let pool = ceps_pool::WorkerPool::with_min_work(threads, 0);
        let x: Vec<f64> = fill[..n * cols].to_vec();
        let mut seq = vec![0f64; n * cols];
        let mut par = vec![0f64; n * cols];
        t.apply_block(&x, &mut seq, cols);
        t.par_apply_block(&x, &mut par, cols, &pool);
        prop_assert_eq!(&seq, &par);
        if cols == 1 {
            let mut par1 = vec![0f64; n];
            t.par_apply(&x, &mut par1, &pool);
            prop_assert_eq!(&seq, &par1);
        }
    }

    /// `balanced_row_chunks` partitions the rows exactly (non-empty,
    /// disjoint, ascending, covering), and no chunk carries more than one
    /// quantile span of nnz beyond its largest single row — the balance
    /// guarantee the pool's work distribution rests on.
    #[test]
    fn balanced_row_chunks_cover_rows_and_balance_nnz(
        (n, edges) in arb_edges(),
        target in 1usize..12,
    ) {
        let g = build(n, &edges);
        let t = Transition::new(&g, Normalization::ColumnStochastic);
        let chunks = t.balanced_row_chunks(target);
        prop_assert!(chunks.len() <= target.min(n));
        let mut expect = 0usize;
        for &(s, e) in &chunks {
            prop_assert_eq!(s, expect, "contiguous ascending coverage");
            prop_assert!(e > s, "non-empty chunk");
            expect = e;
        }
        prop_assert_eq!(expect, n, "chunks cover every row");
        let row_nnz = |u: usize| t.row(NodeId(u as u32)).0.len();
        // The implementation clamps `target` to the row count.
        let quantile = t.nnz().div_ceil(target.min(n));
        for &(s, e) in &chunks {
            let nnz: usize = (s..e).map(row_nnz).sum();
            let biggest = (s..e).map(row_nnz).max().unwrap_or(0);
            prop_assert!(
                nnz <= quantile + biggest,
                "chunk [{s}, {e}) holds {nnz} nnz > quantile {quantile} + biggest row {biggest}"
            );
        }
    }

    /// The cache-blocked (banded) layout is a pure traversal reordering:
    /// for any graph, band width, column count, storage precision and
    /// worker count, the banded operator equals the flat one **bitwise** —
    /// sequentially and through a forced-parallel pooled dispatch. Rows'
    /// targets are sorted, bands sweep ascending, and the per-band f64
    /// accumulator round-trips exactly through `out`, so the addition
    /// order matches the flat kernel addend for addend.
    #[test]
    fn banded_layout_matches_flat_bitwise(
        (n, edges) in arb_edges(),
        alpha in 0.0f64..2.0,
        // One index over the full 4 x 3 x 4 x 2 grid of
        // (cols, threads, band width, precision) combinations.
        grid_pick in 0usize..96,
        fill in proptest::collection::vec(0.0f64..1.0, 24 * 8),
    ) {
        let cols = [1usize, 2, 5, 8][grid_pick % 4];
        let threads = [1usize, 2, 4][(grid_pick / 4) % 3];
        let band_width = [1u32, 3, 7, 16][(grid_pick / 12) % 4];
        let precision = [Precision::F64, Precision::F32][(grid_pick / 48) % 2];
        let g = build(n, &edges);
        let norm = Normalization::DegreePenalized { alpha };
        let flat = Transition::with_options(&g, norm, TransitionOptions {
            layout: LayoutChoice::Flat,
            precision,
        });
        let banded = Transition::with_options(&g, norm, TransitionOptions {
            layout: LayoutChoice::Banded { band_width },
            precision,
        });
        let x: Vec<f64> = fill[..n * cols].to_vec();
        let mut flat_out = vec![0f64; n * cols];
        let mut banded_out = vec![0f64; n * cols];
        flat.apply_block(&x, &mut flat_out, cols);
        banded.apply_block(&x, &mut banded_out, cols);
        prop_assert_eq!(&flat_out, &banded_out, "sequential banded != flat");
        let pool = ceps_pool::WorkerPool::with_min_work(threads, 0);
        let mut par_out = vec![0f64; n * cols];
        banded.par_apply_block(&x, &mut par_out, cols, &pool);
        prop_assert_eq!(&flat_out, &par_out, "pooled banded != flat");
    }

    /// Dijkstra distances are consistent with BFS hops under unit costs.
    #[test]
    fn dijkstra_matches_bfs_on_unit_costs((n, edges) in arb_edges()) {
        let g = build(n, &edges);
        let run = dijkstra(&g, NodeId(0), |_| 1.0);
        let hops = hop_distances(&g, NodeId(0));
        for v in 0..n {
            if hops[v] == u32::MAX {
                prop_assert!(run.dist[v].is_infinite());
            } else {
                prop_assert!((run.dist[v] - hops[v] as f64).abs() < 1e-9);
            }
        }
    }

    /// Components partition the graph and agree with subgraph connectivity.
    #[test]
    fn components_are_consistent((n, edges) in arb_edges()) {
        let g = build(n, &edges);
        let comp = connected_components(&g);
        prop_assert_eq!(comp.sizes().iter().sum::<usize>(), n);
        // Every edge joins same-component endpoints.
        for (a, b, _) in g.edges() {
            prop_assert!(comp.same_component(a, b));
        }
        // The whole-graph subgraph has exactly comp.count components.
        let all: Subgraph = g.nodes().collect();
        prop_assert_eq!(all.component_count(&g), comp.count);
    }

    /// Induced-subgraph materialization preserves weights through the
    /// id mapping.
    #[test]
    fn subgraph_materialization_preserves_weights(
        (n, edges) in arb_edges(),
        picks in proptest::collection::vec(0usize..24, 1..10),
    ) {
        let g = build(n, &edges);
        let sub: Subgraph =
            picks.iter().map(|&p| NodeId((p % n) as u32)).collect();
        let (mat, back) = sub.into_graph(&g).unwrap();
        prop_assert_eq!(mat.node_count(), sub.len());
        for (a, b, w) in mat.edges() {
            let (pa, pb) = (back[a.index()], back[b.index()]);
            prop_assert_eq!(g.weight(pa, pb), Some(w));
        }
        prop_assert_eq!(mat.edge_count(), sub.induced_edge_count(&g));
    }
}
