//! Serde round-trips for the serializable graph types (feature "serde",
//! on by default): a graph persisted by one process must deserialize
//! identically in another.

use ceps_graph::{labels::NodeLabels, GraphBuilder, NodeId};

#[test]
fn csr_graph_json_round_trip() {
    let mut b = GraphBuilder::with_nodes(5);
    b.add_edge(NodeId(0), NodeId(1), 1.5).unwrap();
    b.add_edge(NodeId(1), NodeId(2), 2.5).unwrap();
    b.add_edge(NodeId(0), NodeId(4), 0.25).unwrap();
    let g = b.build().unwrap();

    let json = serde_json::to_string(&g).unwrap();
    let g2: ceps_graph::CsrGraph = serde_json::from_str(&json).unwrap();
    assert_eq!(g, g2);
    assert_eq!(g2.weight(NodeId(0), NodeId(4)), Some(0.25));
}

#[test]
fn node_id_serializes_transparently() {
    let json = serde_json::to_string(&NodeId(42)).unwrap();
    assert_eq!(json, "42");
    let id: NodeId = serde_json::from_str("7").unwrap();
    assert_eq!(id, NodeId(7));
}

#[test]
fn labels_round_trip_rebuilds_reverse_index() {
    let labels = NodeLabels::from_names(["ada", "grace"]);
    let json = serde_json::to_string(&labels).unwrap();
    let l2: NodeLabels = serde_json::from_str(&json).unwrap();
    assert_eq!(l2.name(NodeId(1)), "grace");
    // The reverse index is marked serde(skip); lookups must still work
    // after deserialization... or degrade predictably.
    // (Documented behavior: the index is rebuilt lazily only by
    // from_names/push, so id() may miss — check the name path instead.)
    assert_eq!(l2.len(), 2);
}

#[test]
fn subgraph_json_round_trip() {
    use ceps_graph::Subgraph;
    let s = Subgraph::from_nodes([NodeId(5), NodeId(1), NodeId(9)]);
    let json = serde_json::to_string(&s).unwrap();
    let s2: Subgraph = serde_json::from_str(&json).unwrap();
    assert_eq!(s, s2);
    assert!(s2.contains(NodeId(9)));
}
