//! # ceps-load — open-loop load generation for the CePS service
//!
//! A zero-external-dependency load generator in the spirit of `ceps-obs`
//! and `ceps-pool`: deterministic, self-contained, driven entirely by a
//! seed. Three layers:
//!
//! * [`schedule`] — deterministic arrival schedules (constant and
//!   Poisson inter-arrivals over seeded splitmix64) and a [`QueryMix`]
//!   sampler over a preset's node space with a configurable repeat rate
//!   to exercise the server's reply cache.
//! * [`runner`] — the open-loop driver: N concurrent [`CepsClient`]
//!   connections fire the schedule, and every latency is charged to the
//!   request's **intended** send time, never the actual one. When the
//!   server stalls and the driver falls behind, the backlog shows up in
//!   the percentiles instead of being silently omitted (the
//!   *coordinated omission* correction). Reports split warmup from the
//!   measurement phase.
//! * [`slo`] — an [`SloSpec`] (p99 bound + max shed/error rate) and
//!   [`capacity_search`]: double the offered rate until the SLO breaks,
//!   binary-refine the bracket, and emit the throughput-latency curve
//!   with the knee marked.
//!
//! The `ceps loadgen` CLI subcommand and the `experiments -- loadgen`
//! benchmark (which feeds the `BENCH_loadgen.json` regression gate) are
//! thin wrappers over these three layers.
//!
//! [`CepsClient`]: ceps_net::CepsClient
//! [`QueryMix`]: schedule::QueryMix
//! [`SloSpec`]: slo::SloSpec
//! [`capacity_search`]: slo::capacity_search

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runner;
pub mod schedule;
pub mod slo;

pub use runner::{run, run_with, LoadConfig, LoadReport, PhaseReport};
pub use schedule::{arrival_schedule, splitmix64, ArrivalKind, QueryMix};
pub use slo::{capacity_search, CapacityCurve, CurvePoint, SearchConfig, SloSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    use ceps_core::serve::ServeReply;
    use ceps_net::{
        in_proc, CepsClient, Framed, InProcConnector, Reply, Request, Transport,
        DEFAULT_MAX_FRAME_BYTES,
    };

    /// A minimal wire-speaking mock server over the in-process transport:
    /// answers every `Query` with an empty `Scores` reply after a fixed
    /// service delay. The delay is the knob the coordinated-omission and
    /// capacity tests turn.
    fn mock_server(service: Duration) -> (InProcConnector, Arc<AtomicBool>) {
        let (mut transport, connector) = in_proc();
        let done = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&done);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let conn = match transport.accept_timeout(Duration::from_millis(20)) {
                    Ok(Some(conn)) => conn,
                    Ok(None) => continue,
                    Err(_) => break,
                };
                std::thread::spawn(move || {
                    let mut framed = Framed::new(conn, DEFAULT_MAX_FRAME_BYTES);
                    loop {
                        match framed.recv::<Request>() {
                            Ok(Some(Request::Query { id, .. })) => {
                                std::thread::sleep(service);
                                let reply = Reply::Scores {
                                    id,
                                    reply: ServeReply {
                                        k: 1,
                                        members: Vec::new(),
                                        paths: Vec::new(),
                                    },
                                };
                                if framed.send(&reply).is_err() {
                                    break;
                                }
                            }
                            Ok(Some(_)) | Ok(None) | Err(_) => break,
                        }
                    }
                });
            }
        });
        (connector, done)
    }

    fn connect_via(connector: &InProcConnector) -> impl Fn() -> io::Result<CepsClient> + Sync + '_ {
        move || Ok(CepsClient::from_conn(Box::new(connector.connect()?)))
    }

    #[test]
    fn underloaded_run_reports_service_time_latency() {
        let service = Duration::from_millis(2);
        let (connector, done) = mock_server(service);
        let cfg = LoadConfig {
            rps: 50.0,
            duration_s: 1.0,
            warmup_s: 0.2,
            arrival: ArrivalKind::Constant,
            connections: 2,
            ..LoadConfig::default()
        };
        let report = run_with(&cfg, &connect_via(&connector)).unwrap();
        done.store(true, Ordering::Relaxed);

        assert_eq!(report.scheduled, 50);
        assert_eq!(report.measure.errors, 0);
        assert_eq!(report.measure.sheds, 0);
        assert!(report.measure.count > 0 && report.warmup.count > 0);
        assert_eq!(
            report.measure.count + report.warmup.count,
            report.scheduled,
            "every scheduled arrival lands in exactly one phase"
        );
        // At 25 rps per connection against 2ms service, the driver never
        // queues: intended-time latency collapses to the service time.
        assert!(
            report.measure.p50_ms >= 1.0 && report.measure.p50_ms < 20.0,
            "p50 {} should sit near the 2ms service time",
            report.measure.p50_ms
        );
        // Achieved tracks offered when the server keeps up.
        assert!(
            (report.achieved_rps - 50.0).abs() < 15.0,
            "achieved {} ≈ offered 50",
            report.achieved_rps
        );
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"ceps-load/v1\""));
        assert!(report.render().contains("achieved"));
    }

    #[test]
    fn stalled_server_intended_time_p99_dwarfs_service_time() {
        // One serial connection, 20ms service, arrivals every 5ms: the
        // driver falls behind immediately and the backlog grows by ~15ms
        // per request. A closed-loop (actual-send-time) measurement
        // would report ~20ms p99 — the coordinated-omission lie. The
        // intended-time p99 must instead expose the queueing delay.
        let service_ms = 20.0;
        let (connector, done) = mock_server(Duration::from_millis(service_ms as u64));
        let cfg = LoadConfig {
            rps: 200.0,
            duration_s: 0.5,
            warmup_s: 0.1,
            arrival: ArrivalKind::Constant,
            connections: 1,
            ..LoadConfig::default()
        };
        let report = run_with(&cfg, &connect_via(&connector)).unwrap();
        done.store(true, Ordering::Relaxed);

        assert_eq!(report.measure.errors, 0);
        assert!(
            report.measure.p99_ms > 10.0 * service_ms,
            "intended-time p99 {}ms must dwarf the {service_ms}ms service time",
            report.measure.p99_ms
        );
        // And the early (warmup) requests saw far less backlog than the
        // late ones — the signature of a growing queue.
        assert!(report.measure.p99_ms > report.warmup.p50_ms);
        // Achieved throughput is capped by the serial 20ms service.
        assert!(
            report.achieved_rps < 80.0,
            "achieved {} must sit near 50 rps, not the offered 200",
            report.achieved_rps
        );
    }

    #[test]
    fn capacity_search_brackets_the_knee() {
        // 2ms deterministic service on one connection saturates near
        // 500 rps; the bands below are wide enough for shared CI hosts.
        let (connector, done) = mock_server(Duration::from_millis(2));
        let cfg = LoadConfig {
            rps: 0.0, // overridden per probe
            duration_s: 0.4,
            warmup_s: 0.1,
            arrival: ArrivalKind::Constant,
            connections: 1,
            ..LoadConfig::default()
        };
        let slo = SloSpec {
            p99_ms: 50.0,
            max_error_rate: 0.01,
        };
        let search = SearchConfig {
            start_rps: 50.0,
            max_rps: 6400.0,
            refine_steps: 2,
        };
        let mut seen = 0usize;
        let curve =
            capacity_search(&cfg, &slo, &search, &connect_via(&connector), |_| seen += 1).unwrap();
        done.store(true, Ordering::Relaxed);

        assert_eq!(seen, curve.points.len(), "progress sees every probe");
        let knee = curve.knee_rps.expect("50 rps against 2ms service passes");
        assert!(
            (50.0..2000.0).contains(&knee),
            "knee {knee} should bracket the ~500 rps serial capacity"
        );
        assert!(
            curve.points.iter().any(|p| !p.slo_met),
            "the search must have found the failing side of the bracket"
        );
        let sorted = curve.sorted_points();
        assert!(sorted
            .windows(2)
            .all(|w| w[0].offered_rps <= w[1].offered_rps));
        assert_eq!(curve.knee().unwrap().offered_rps, knee);
    }
}
