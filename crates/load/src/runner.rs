//! The open-loop runner: fires a pre-built arrival schedule at a CePS
//! server over N concurrent connections and reports latency charged to
//! the *intended* send time.
//!
//! ## Why intended time
//!
//! A naive driver timestamps each request when it actually leaves the
//! socket. But when the server slows down, the driver's serial
//! connections stall behind unanswered requests, so later requests leave
//! late — and their measured latency silently excludes the time they
//! spent waiting in the driver. That is *coordinated omission*: the load
//! generator cooperates with the server to hide the worst latencies.
//! Here every request has an intended send time fixed by the schedule
//! before the run starts, and latency is `completion − intended`. A
//! stalled server is charged for the backlog it caused, exactly as a
//! real open-world client population would experience it.

use std::io;
use std::time::{Duration, Instant};

use ceps_core::ServeRequest;
use ceps_net::{CepsClient, Reply, WireErrorKind};

use crate::schedule::{arrival_schedule, ArrivalKind, QueryMix};

/// Everything a load run needs, fully deterministic given `seed`.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Offered request rate (requests per second across all connections).
    pub rps: f64,
    /// Total run length in seconds, warmup included.
    pub duration_s: f64,
    /// Leading portion of the run excluded from the measurement phase
    /// (cache fill, connection ramp). Must be smaller than `duration_s`.
    pub warmup_s: f64,
    /// Arrival process.
    pub arrival: ArrivalKind,
    /// Concurrent client connections; arrivals round-robin across them.
    pub connections: usize,
    /// Query nodes per request (the paper's `Q`).
    pub queries_per: usize,
    /// Node ids are drawn from `0..node_space` (the preset's node count).
    pub node_space: usize,
    /// Probability a request repeats an earlier query verbatim, to
    /// exercise the server's reply cache.
    pub repeat: f64,
    /// Seed for the arrival schedule and the query mix.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            rps: 100.0,
            duration_s: 5.0,
            warmup_s: 1.0,
            arrival: ArrivalKind::Poisson,
            connections: 4,
            queries_per: 5,
            node_space: 1000,
            repeat: 0.3,
            seed: 42,
        }
    }
}

/// How one request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// A `Scores` reply.
    Ok,
    /// The server shed it under admission control (`Overloaded`).
    Shed,
    /// Any other reply or a transport failure.
    Error,
}

/// One completed (or failed) request: intended offset, intended-time
/// latency, and classification.
#[derive(Debug, Clone, Copy)]
struct Sample {
    offset_s: f64,
    latency_ms: f64,
    outcome: Outcome,
}

/// Latency/outcome summary of one phase (warmup or measurement).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Requests fired in this phase.
    pub count: u64,
    /// `Scores` replies.
    pub ok: u64,
    /// Requests shed by admission control.
    pub sheds: u64,
    /// Protocol or transport failures.
    pub errors: u64,
    /// Intended-time latency percentiles (milliseconds).
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// 99.9th percentile.
    pub p999_ms: f64,
    /// Worst observed latency.
    pub max_ms: f64,
    /// Mean latency, from the log₂ histogram the phase accumulates.
    pub mean_ms: f64,
}

impl PhaseReport {
    fn from_samples(samples: &[Sample]) -> PhaseReport {
        let mut lat: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        // The log₂ histogram mirrors what the obs registry would hold;
        // its mean is exact (sum/count), the percentiles come from the
        // sorted samples so SLO checks are not quantised to powers of 2.
        let mut hist = ceps_obs::Histogram::new();
        for s in samples {
            hist.record(s.latency_ms);
        }
        let pct = |p: f64| -> f64 {
            if lat.is_empty() {
                return 0.0;
            }
            let rank = ((p / 100.0) * lat.len() as f64).ceil() as usize;
            lat[rank.clamp(1, lat.len()) - 1]
        };
        PhaseReport {
            count: samples.len() as u64,
            ok: samples.iter().filter(|s| s.outcome == Outcome::Ok).count() as u64,
            sheds: samples
                .iter()
                .filter(|s| s.outcome == Outcome::Shed)
                .count() as u64,
            errors: samples
                .iter()
                .filter(|s| s.outcome == Outcome::Error)
                .count() as u64,
            p50_ms: pct(50.0),
            p90_ms: pct(90.0),
            p99_ms: pct(99.0),
            p999_ms: pct(99.9),
            max_ms: lat.last().copied().unwrap_or(0.0),
            mean_ms: hist.mean(),
        }
    }

    /// Sheds + errors as a fraction of requests fired; 0 for an empty
    /// phase.
    pub fn error_rate(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        (self.sheds + self.errors) as f64 / self.count as f64
    }
}

/// The full per-run report `run`/`run_with` return.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Arrival process name (`"constant"` / `"poisson"`).
    pub arrival: String,
    /// Offered rate from the config.
    pub offered_rps: f64,
    /// Ok replies per second over the measurement window.
    pub achieved_rps: f64,
    /// Total run length (seconds).
    pub duration_s: f64,
    /// Warmup length (seconds).
    pub warmup_s: f64,
    /// Connection count.
    pub connections: usize,
    /// Arrivals the schedule contained.
    pub scheduled: u64,
    /// Warmup-phase summary (intended offset `< warmup_s`).
    pub warmup: PhaseReport,
    /// Measurement-phase summary.
    pub measure: PhaseReport,
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn phase_json(p: &PhaseReport) -> String {
    format!(
        "{{\"count\": {}, \"ok\": {}, \"sheds\": {}, \"errors\": {}, \
         \"p50_ms\": {}, \"p90_ms\": {}, \"p99_ms\": {}, \"p999_ms\": {}, \
         \"max_ms\": {}, \"mean_ms\": {}}}",
        p.count,
        p.ok,
        p.sheds,
        p.errors,
        num(p.p50_ms),
        num(p.p90_ms),
        num(p.p99_ms),
        num(p.p999_ms),
        num(p.max_ms),
        num(p.mean_ms),
    )
}

impl LoadReport {
    /// One-line-per-field `ceps-load/v1` JSON (hand-rolled like the rest
    /// of the observability surfaces; no serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\": \"ceps-load/v1\", \"arrival\": \"{}\", \
             \"offered_rps\": {}, \"achieved_rps\": {}, \"duration_s\": {}, \
             \"warmup_s\": {}, \"connections\": {}, \"scheduled\": {}, \
             \"warmup\": {}, \"measure\": {}}}",
            self.arrival,
            num(self.offered_rps),
            num(self.achieved_rps),
            num(self.duration_s),
            num(self.warmup_s),
            self.connections,
            self.scheduled,
            phase_json(&self.warmup),
            phase_json(&self.measure),
        )
    }

    /// Human-readable report for the CLI.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "load: {} arrivals, offered {:.1} rps over {:.1}s ({} connections, {:.1}s warmup)",
            self.arrival, self.offered_rps, self.duration_s, self.connections, self.warmup_s
        );
        let _ = writeln!(
            out,
            "  achieved {:.1} rps ({:.1}% of offered)",
            self.achieved_rps,
            if self.offered_rps > 0.0 {
                100.0 * self.achieved_rps / self.offered_rps
            } else {
                0.0
            }
        );
        for (name, p) in [("warmup", &self.warmup), ("measure", &self.measure)] {
            let _ = writeln!(
                out,
                "  {name:<8} n={:<6} ok={:<6} shed={:<4} err={:<4} \
                 p50={:.2}ms p90={:.2}ms p99={:.2}ms p999={:.2}ms max={:.2}ms",
                p.count, p.ok, p.sheds, p.errors, p.p50_ms, p.p90_ms, p.p99_ms, p.p999_ms, p.max_ms
            );
        }
        out
    }
}

/// Runs the configured load against a server address
/// (`tcp://…`/`unix://…`, anything [`CepsClient::connect`] accepts).
///
/// # Errors
/// Connection establishment failures; failures mid-run are counted as
/// request errors, not surfaced here.
pub fn run(cfg: &LoadConfig, addr: &str) -> io::Result<LoadReport> {
    run_with(cfg, &|| CepsClient::connect(addr))
}

/// Like [`run`], but with an arbitrary connection factory — tests and
/// the self-hosted benchmark drive an in-process transport through this.
///
/// # Errors
/// Factory failures while establishing the initial connections.
pub fn run_with(
    cfg: &LoadConfig,
    connect: &(dyn Fn() -> io::Result<CepsClient> + Sync),
) -> io::Result<LoadReport> {
    assert!(cfg.connections >= 1, "need at least one connection");
    assert!(
        cfg.warmup_s < cfg.duration_s,
        "warmup must leave a measurement window"
    );
    let schedule = arrival_schedule(cfg.arrival, cfg.rps, cfg.duration_s, cfg.seed);
    let mut mix = QueryMix::new(
        cfg.node_space,
        cfg.queries_per,
        cfg.repeat,
        cfg.seed ^ 0x9e2d,
    );
    // Assign (intended offset, query) pairs round-robin across the
    // connections; each connection fires its share in schedule order.
    let mut work: Vec<Vec<(f64, Vec<usize>)>> = vec![Vec::new(); cfg.connections];
    for (i, &offset) in schedule.iter().enumerate() {
        work[i % cfg.connections].push((offset, mix.next_query()));
    }
    let mut clients = Vec::with_capacity(cfg.connections);
    for _ in 0..cfg.connections {
        clients.push(connect()?);
    }

    let base = Instant::now();
    let mut samples: Vec<Sample> = Vec::with_capacity(schedule.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .into_iter()
            .zip(work.into_iter())
            .map(|(mut client, lane)| {
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(lane.len());
                    for (offset, nodes) in lane {
                        let intended = base + Duration::from_secs_f64(offset);
                        let now = Instant::now();
                        if intended > now {
                            std::thread::sleep(intended - now);
                        }
                        let req = ServeRequest::new(
                            nodes
                                .iter()
                                .map(|&n| ceps_graph::NodeId(n as u32))
                                .collect::<Vec<_>>(),
                        );
                        let (outcome, dead) = match client.send_request(&req) {
                            Ok(_id) => match client.recv_reply() {
                                Ok(Reply::Scores { .. }) => (Outcome::Ok, false),
                                Ok(Reply::Error { error, .. })
                                    if error.kind == WireErrorKind::Overloaded =>
                                {
                                    (Outcome::Shed, false)
                                }
                                Ok(_) => (Outcome::Error, false),
                                Err(_) => (Outcome::Error, true),
                            },
                            Err(_) => (Outcome::Error, true),
                        };
                        out.push(Sample {
                            offset_s: offset,
                            latency_ms: intended.elapsed().as_secs_f64() * 1e3,
                            outcome,
                        });
                        if dead {
                            // The connection is gone; remaining arrivals
                            // in this lane count as errors at zero
                            // service — the schedule still charges them.
                            break;
                        }
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            samples.extend(handle.join().expect("load worker panicked"));
        }
    });

    // A stalled server drains its backlog past `duration_s`; achieved
    // throughput must divide by the wall time actually spent, or a
    // saturated run would report the offered rate as achieved.
    let wall_s = base.elapsed().as_secs_f64();
    let (warm, meas): (Vec<Sample>, Vec<Sample>) =
        samples.into_iter().partition(|s| s.offset_s < cfg.warmup_s);
    let measure = PhaseReport::from_samples(&meas);
    let measure_window = (cfg.duration_s - cfg.warmup_s).max(wall_s - cfg.warmup_s);
    Ok(LoadReport {
        arrival: cfg.arrival.name().to_string(),
        offered_rps: cfg.rps,
        achieved_rps: measure.ok as f64 / measure_window,
        duration_s: cfg.duration_s,
        warmup_s: cfg.warmup_s,
        connections: cfg.connections,
        scheduled: schedule.len() as u64,
        warmup: PhaseReport::from_samples(&warm),
        measure,
    })
}
