//! Deterministic arrival schedules and query-mix sampling.
//!
//! An **open-loop** load generator decides *when* every request fires
//! before the run starts: the schedule is a pure function of (arrival
//! process, offered rate, duration, seed), independent of how the server
//! responds. That independence is the whole point — a closed-loop driver
//! that waits for each reply before sending the next one throttles itself
//! exactly when the server slows down, hiding the backlog the real world
//! would have piled up (coordinated omission). Everything here is seeded
//! splitmix64, so the same seed reproduces the same schedule and the same
//! query stream bit-for-bit.

/// splitmix64 step: advances `state` and returns the next u64.
///
/// Same generator the rest of the workspace uses for seeding (datagen,
/// telemetry head-sampling); small, fast, and passes BigCrush when used
/// as a stream.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a u64 to a uniform f64 in `[0, 1)` using the top 53 bits.
#[inline]
fn u01(z: u64) -> f64 {
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The arrival process generating intended send times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Evenly spaced arrivals: request `i` is intended at `i / rps`.
    Constant,
    /// Poisson process: exponential inter-arrival gaps with mean `1/rps`.
    /// Bursty by construction — the realistic choice for capacity tests,
    /// since real traffic does not politely space itself out.
    Poisson,
}

impl ArrivalKind {
    /// Parses the CLI spelling (`"constant"` / `"poisson"`).
    pub fn parse(s: &str) -> Option<ArrivalKind> {
        match s {
            "constant" => Some(ArrivalKind::Constant),
            "poisson" => Some(ArrivalKind::Poisson),
            _ => None,
        }
    }

    /// The CLI spelling, for reports.
    pub fn name(self) -> &'static str {
        match self {
            ArrivalKind::Constant => "constant",
            ArrivalKind::Poisson => "poisson",
        }
    }
}

/// Builds the full schedule of intended send offsets (seconds from run
/// start), strictly increasing, covering `[0, duration_s)`.
///
/// The schedule is materialised up front rather than generated on the
/// fly so that latency can be charged against the *intended* time even
/// when the sender falls behind — the correction that makes the reported
/// percentiles coordinated-omission-free.
pub fn arrival_schedule(kind: ArrivalKind, rps: f64, duration_s: f64, seed: u64) -> Vec<f64> {
    assert!(rps > 0.0, "offered rate must be positive");
    assert!(duration_s > 0.0, "duration must be positive");
    let expect = (rps * duration_s).ceil() as usize + 16;
    let mut out = Vec::with_capacity(expect.min(1 << 22));
    match kind {
        ArrivalKind::Constant => {
            let gap = 1.0 / rps;
            let mut i = 0u64;
            loop {
                let t = i as f64 * gap;
                if t >= duration_s {
                    break;
                }
                out.push(t);
                i += 1;
            }
        }
        ArrivalKind::Poisson => {
            let mut state = seed ^ 0x6c07_9768_7c97_0de5;
            let mut t = 0.0f64;
            loop {
                // Inverse-CDF exponential; (1 - u) keeps ln's argument in
                // (0, 1] so the gap is finite and positive.
                let u = u01(splitmix64(&mut state));
                t += -(1.0 - u).ln() / rps;
                if t >= duration_s {
                    break;
                }
                out.push(t);
            }
        }
    }
    out
}

/// Seeded sampler producing the node list for each query, over a preset's
/// node id space, with a configurable repeat rate to exercise the serving
/// cache.
#[derive(Debug, Clone)]
pub struct QueryMix {
    /// Node ids are drawn from `0..node_space`.
    node_space: usize,
    /// Team-member count per query (the paper's `Q`).
    queries_per: usize,
    /// Probability in `[0, 1]` that a query repeats an earlier one
    /// verbatim (a cache hit on the server, once warm).
    repeat: f64,
    state: u64,
    /// Recently issued query sets eligible for repetition.
    pool: Vec<Vec<usize>>,
}

/// Cap on the repetition pool: repeats draw from the most recent 64
/// distinct queries, mirroring the locality of a working set rather than
/// the full history.
const POOL_CAP: usize = 64;

impl QueryMix {
    /// Creates a sampler. `node_space` must exceed `queries_per` so a
    /// query can always hold distinct nodes.
    pub fn new(node_space: usize, queries_per: usize, repeat: f64, seed: u64) -> QueryMix {
        assert!(queries_per >= 1, "queries_per must be at least 1");
        assert!(
            node_space > queries_per,
            "node space must exceed the query size"
        );
        assert!((0.0..=1.0).contains(&repeat), "repeat must be in [0, 1]");
        QueryMix {
            node_space,
            queries_per,
            repeat,
            state: seed ^ 0x51_7cc1_b727_220a_95,
            pool: Vec::new(),
        }
    }

    /// Draws the next query: either a verbatim repeat of a pooled query
    /// (probability `repeat`, once the pool is non-empty) or a fresh set
    /// of distinct node ids.
    pub fn next_query(&mut self) -> Vec<usize> {
        if !self.pool.is_empty() && u01(splitmix64(&mut self.state)) < self.repeat {
            let idx = (splitmix64(&mut self.state) % self.pool.len() as u64) as usize;
            return self.pool[idx].clone();
        }
        let mut nodes = Vec::with_capacity(self.queries_per);
        while nodes.len() < self.queries_per {
            let n = (splitmix64(&mut self.state) % self.node_space as u64) as usize;
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
        if self.pool.len() == POOL_CAP {
            self.pool.remove(0);
        }
        self.pool.push(nodes.clone());
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_is_evenly_spaced_and_covers_duration() {
        let s = arrival_schedule(ArrivalKind::Constant, 100.0, 1.0, 7);
        assert_eq!(s.len(), 100);
        assert_eq!(s[0], 0.0);
        for w in s.windows(2) {
            assert!((w[1] - w[0] - 0.01).abs() < 1e-12);
        }
        assert!(*s.last().unwrap() < 1.0);
    }

    #[test]
    fn poisson_schedule_is_deterministic_per_seed() {
        let a = arrival_schedule(ArrivalKind::Poisson, 500.0, 2.0, 42);
        let b = arrival_schedule(ArrivalKind::Poisson, 500.0, 2.0, 42);
        assert_eq!(a, b, "same seed must reproduce the schedule exactly");
        let c = arrival_schedule(ArrivalKind::Poisson, 500.0, 2.0, 43);
        assert_ne!(a, c, "a different seed must change the schedule");
    }

    #[test]
    fn poisson_schedule_hits_the_offered_rate_on_average() {
        let s = arrival_schedule(ArrivalKind::Poisson, 1000.0, 4.0, 9);
        // 4000 expected arrivals; 5 sigma is ~316.
        let n = s.len() as f64;
        assert!((n - 4000.0).abs() < 350.0, "got {n} arrivals");
        // Strictly increasing, inside the window.
        for w in s.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(s.iter().all(|&t| (0.0..4.0).contains(&t)));
    }

    #[test]
    fn query_mix_is_deterministic_and_draws_distinct_nodes() {
        let mut a = QueryMix::new(1000, 5, 0.3, 11);
        let mut b = QueryMix::new(1000, 5, 0.3, 11);
        for _ in 0..200 {
            let qa = a.next_query();
            let qb = b.next_query();
            assert_eq!(qa, qb);
            assert_eq!(qa.len(), 5);
            let mut sorted = qa.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "nodes within a query are distinct");
            assert!(qa.iter().all(|&n| n < 1000));
        }
    }

    #[test]
    fn repeat_rate_reuses_pooled_queries() {
        let mut mix = QueryMix::new(10_000, 4, 0.5, 3);
        let mut seen: Vec<Vec<usize>> = Vec::new();
        let mut repeats = 0usize;
        for _ in 0..400 {
            let q = mix.next_query();
            if seen.contains(&q) {
                repeats += 1;
            } else {
                seen.push(q);
            }
        }
        // With repeat=0.5 over a 10k node space, fresh collisions are
        // essentially impossible; observed repeats ≈ 200 ± 5 sigma.
        assert!((140..=260).contains(&repeats), "got {repeats} repeats");

        let mut none = QueryMix::new(10_000, 4, 0.0, 3);
        let mut seen = Vec::new();
        for _ in 0..200 {
            let q = none.next_query();
            assert!(!seen.contains(&q), "repeat=0 must never reuse a query");
            seen.push(q);
        }
    }
}
