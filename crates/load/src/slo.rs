//! SLO specification and the capacity search that finds the highest
//! offered rate a server sustains while meeting it.
//!
//! The search is the classic two-stage bracket-and-refine: **double** the
//! offered rate from `start_rps` until a run violates the SLO (or the
//! rate cap is hit), then **binary-search** the interval between the last
//! passing and first failing rate. Every probe run is recorded, so the
//! search's byproduct is a throughput-latency curve with the knee — the
//! highest passing probe — marked.

use std::io;

use crate::runner::{run_with, LoadConfig, LoadReport};
use ceps_net::CepsClient;

/// A service-level objective a load run either meets or violates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Measurement-phase intended-time p99 must not exceed this
    /// (milliseconds).
    pub p99_ms: f64,
    /// Sheds + errors over requests fired must not exceed this fraction.
    pub max_error_rate: f64,
}

impl SloSpec {
    /// Whether `report`'s measurement phase meets the objective. An
    /// empty measurement phase fails: a run that completed nothing is
    /// not evidence of capacity.
    pub fn met_by(&self, report: &LoadReport) -> bool {
        report.measure.count > 0
            && report.measure.p99_ms <= self.p99_ms
            && report.measure.error_rate() <= self.max_error_rate
    }
}

/// One probe of the capacity search.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// Offered rate of the probe.
    pub offered_rps: f64,
    /// Whether the probe met the SLO.
    pub slo_met: bool,
    /// The full run report.
    pub report: LoadReport,
}

/// The throughput-latency curve a capacity search produces.
#[derive(Debug, Clone)]
pub struct CapacityCurve {
    /// Every probe run, in the order the search made them.
    pub points: Vec<CurvePoint>,
    /// Highest offered rate that met the SLO; `None` when even the
    /// first probe failed.
    pub knee_rps: Option<f64>,
}

impl CapacityCurve {
    /// Probes sorted by offered rate — the rendering order for the
    /// throughput-latency curve.
    pub fn sorted_points(&self) -> Vec<&CurvePoint> {
        let mut pts: Vec<&CurvePoint> = self.points.iter().collect();
        pts.sort_by(|a, b| a.offered_rps.total_cmp(&b.offered_rps));
        pts
    }

    /// The report of the knee probe, if one passed.
    pub fn knee(&self) -> Option<&CurvePoint> {
        let knee = self.knee_rps?;
        self.points
            .iter()
            .find(|p| p.offered_rps == knee && p.slo_met)
    }
}

/// Tunables of [`capacity_search`].
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// First probe rate.
    pub start_rps: f64,
    /// Stop doubling past this rate (safety rail for servers that never
    /// saturate at feasible driver rates).
    pub max_rps: f64,
    /// Binary-refinement probes after the bracket is found.
    pub refine_steps: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            start_rps: 50.0,
            max_rps: 100_000.0,
            refine_steps: 3,
        }
    }
}

/// Finds the maximum sustainable offered rate meeting `slo`, probing
/// with runs shaped by `cfg` (its `rps` field is overridden per probe).
///
/// # Errors
/// Connection-establishment failures from the underlying runs.
pub fn capacity_search(
    cfg: &LoadConfig,
    slo: &SloSpec,
    search: &SearchConfig,
    connect: &(dyn Fn() -> io::Result<CepsClient> + Sync),
    mut progress: impl FnMut(&CurvePoint),
) -> io::Result<CapacityCurve> {
    let mut points: Vec<CurvePoint> = Vec::new();
    let mut probe = |rps: f64, points: &mut Vec<CurvePoint>| -> io::Result<bool> {
        let mut run_cfg = cfg.clone();
        run_cfg.rps = rps;
        // Decorrelate probes so a lucky schedule cannot carry the knee.
        run_cfg.seed = cfg.seed.wrapping_add(points.len() as u64 + 1);
        let report = run_with(&run_cfg, connect)?;
        let point = CurvePoint {
            offered_rps: rps,
            slo_met: slo.met_by(&report),
            report,
        };
        progress(&point);
        let met = point.slo_met;
        points.push(point);
        Ok(met)
    };

    // Bracket: double until the SLO breaks or the rail stops us.
    let mut lo: Option<f64> = None; // highest passing rate
    let mut hi: Option<f64> = None; // lowest failing rate
    let mut rps = search.start_rps;
    loop {
        let met = probe(rps, &mut points)?;
        if met {
            lo = Some(rps);
            if rps >= search.max_rps {
                break;
            }
            rps = (rps * 2.0).min(search.max_rps);
        } else {
            hi = Some(rps);
            break;
        }
    }

    // Refine: bisect the (pass, fail) bracket when both ends exist.
    if let (Some(mut pass), Some(mut fail)) = (lo, hi) {
        for _ in 0..search.refine_steps {
            let mid = (pass + fail) / 2.0;
            if mid <= pass || mid >= fail {
                break;
            }
            if probe(mid, &mut points)? {
                pass = mid;
            } else {
                fail = mid;
            }
        }
        lo = Some(pass);
    }

    Ok(CapacityCurve {
        points,
        knee_rps: lo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::PhaseReport;

    fn phase(count: u64, ok: u64, sheds: u64, errors: u64, p99: f64) -> PhaseReport {
        PhaseReport {
            count,
            ok,
            sheds,
            errors,
            p50_ms: p99 / 4.0,
            p90_ms: p99 / 2.0,
            p99_ms: p99,
            p999_ms: p99 * 1.5,
            max_ms: p99 * 2.0,
            mean_ms: p99 / 3.0,
        }
    }

    fn report(p99: f64, sheds: u64) -> LoadReport {
        let count = 100;
        LoadReport {
            arrival: "constant".into(),
            offered_rps: 100.0,
            achieved_rps: (count - sheds) as f64,
            duration_s: 2.0,
            warmup_s: 1.0,
            connections: 2,
            scheduled: 2 * count,
            warmup: phase(count, count, 0, 0, p99),
            measure: phase(count, count - sheds, sheds, 0, p99),
        }
    }

    #[test]
    fn slo_checks_p99_and_error_rate() {
        let slo = SloSpec {
            p99_ms: 10.0,
            max_error_rate: 0.01,
        };
        assert!(slo.met_by(&report(9.0, 0)));
        assert!(!slo.met_by(&report(11.0, 0)), "p99 bound violated");
        assert!(!slo.met_by(&report(9.0, 5)), "5% sheds over the 1% cap");
        assert!(slo.met_by(&report(9.0, 1)), "1% sheds at the cap passes");

        let mut empty = report(0.0, 0);
        empty.measure.count = 0;
        assert!(!slo.met_by(&empty), "an empty measurement phase fails");
    }

    #[test]
    fn report_json_round_trips_the_headline_fields() {
        let json = report(9.0, 2).to_json();
        assert!(json.contains("\"schema\": \"ceps-load/v1\""));
        assert!(json.contains("\"offered_rps\": 100"));
        assert!(json.contains("\"p99_ms\": 9"));
        assert!(json.contains("\"sheds\": 2"));
        assert!(json.contains("\"measure\": {"));
    }
}
