//! [`CepsClient`]: a thin synchronous `ceps-wire/v1` client.
//!
//! One client owns one connection. The simple path is the round-trip
//! API (`request`, `ping`, `stats`, `autok`, `shutdown`): send a frame,
//! block for its reply, check the echoed request id. For batch
//! workloads, [`send_request`](CepsClient::send_request) /
//! [`recv_reply`](CepsClient::recv_reply) expose the raw halves so
//! several requests can be pipelined onto the stream before the first
//! reply is read.
//!
//! ## Client-side tracing
//!
//! With [`with_tracing`](CepsClient::with_tracing) on, every `Query`
//! frame carries a fresh [`WireTrace`] context; the server adopts it, so
//! its spans, exemplars and trace lines share the client's `trace_id`.
//! The client remembers each in-flight request's id → (`trace_id`, send
//! time) and, when the matching reply lands, records the
//! client-observed round-trip. With a sink attached
//! ([`with_trace_sink`](CepsClient::with_trace_sink)) it also writes one
//! `ceps-trace/v1` line per reply tagged `"side": "client"` — merge it
//! with the server's trace JSONL and sort by `trace_id` to read the
//! full client→wire→stage breakdown per request.

use std::collections::HashMap;
use std::io::{self, Write};
use std::time::{Duration, Instant};

use ceps_core::{ServeReply, ServeRequest};
use ceps_graph::NodeId;
use ceps_obs::{id_hex, TraceContext};

use crate::error::NetError;
use crate::server::ServerStats;
use crate::transport::{Conn, ListenAddr};
use crate::wire::{Framed, Reply, Request, WireTrace, DEFAULT_MAX_FRAME_BYTES};
use crate::Result;

/// The reply to an `AutoK` request.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoKReply {
    /// The inferred `K_softAND` coefficient.
    pub k: usize,
    /// Mean held-out retrieval rank per candidate `k'`.
    pub mean_ranks: Vec<f64>,
}

/// A synchronous client for one `ceps-wire/v1` connection.
pub struct CepsClient {
    framed: Framed<Box<dyn Conn>>,
    next_id: u64,
    tracing: bool,
    /// In-flight request id → (trace_id, send time); only populated when
    /// tracing is on, so untraced clients pay nothing.
    pending: HashMap<u64, (u64, Instant)>,
    trace_out: Option<Box<dyn Write + Send>>,
    traces_written: u64,
}

impl CepsClient {
    /// Wraps an already-connected stream.
    pub fn from_conn(conn: Box<dyn Conn>) -> Self {
        CepsClient {
            framed: Framed::new(conn, DEFAULT_MAX_FRAME_BYTES),
            next_id: 1,
            tracing: false,
            pending: HashMap::new(),
            trace_out: None,
            traces_written: 0,
        }
    }

    /// Attaches a fresh trace context to every subsequent `Query` frame
    /// and tracks client-observed round-trip latency per request id.
    #[must_use]
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Like [`with_tracing`](Self::with_tracing), additionally writing
    /// one `ceps-trace/v1` JSONL line (tagged `"side": "client"`) per
    /// completed request to `out`.
    #[must_use]
    pub fn with_trace_sink(mut self, out: Box<dyn Write + Send>) -> Self {
        self.tracing = true;
        self.trace_out = Some(out);
        self
    }

    /// Client trace lines successfully written so far.
    pub fn traces_written(&self) -> u64 {
        self.traces_written
    }

    /// The `trace_id` attached to in-flight request `id`, if tracing.
    pub fn trace_id_of(&self, id: u64) -> Option<u64> {
        self.pending.get(&id).map(|(tid, _)| *tid)
    }

    /// Connects to a parsed/parseable address (`tcp://…`, `unix://…`,
    /// `host:port`, or a socket path).
    ///
    /// # Errors
    /// Connect failures.
    pub fn connect(addr: &str) -> io::Result<Self> {
        Ok(Self::from_conn(ListenAddr::parse(addr).connect()?))
    }

    /// Connects over TCP.
    ///
    /// # Errors
    /// Connect failures.
    pub fn connect_tcp(addr: &str) -> io::Result<Self> {
        Ok(Self::from_conn(
            ListenAddr::Tcp(addr.to_string()).connect()?,
        ))
    }

    /// Connects over a Unix domain socket.
    ///
    /// # Errors
    /// Connect failures.
    pub fn connect_unix(path: impl Into<std::path::PathBuf>) -> io::Result<Self> {
        Ok(Self::from_conn(ListenAddr::Unix(path.into()).connect()?))
    }

    /// Sets (or clears) the read deadline for replies.
    ///
    /// # Errors
    /// Transport errors.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.framed.conn().set_read_timeout(timeout)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends one request without waiting for its reply (pipelining);
    /// returns the request id to match against
    /// [`recv_reply`](Self::recv_reply).
    ///
    /// # Errors
    /// Transport write errors.
    pub fn send_request(&mut self, req: &ServeRequest) -> io::Result<u64> {
        let id = self.fresh_id();
        let trace = self.tracing.then(|| {
            let ctx = TraceContext::new_root();
            self.pending.insert(id, (ctx.trace_id, Instant::now()));
            WireTrace::from_context(&ctx)
        });
        self.framed.send(&Request::Query {
            id,
            req: req.clone(),
            trace,
        })?;
        Ok(id)
    }

    /// Receives the next reply frame, whatever request it answers.
    ///
    /// # Errors
    /// Transport/decode errors; [`NetError::Protocol`] when the server
    /// closed the stream instead of replying.
    pub fn recv_reply(&mut self) -> Result<Reply> {
        match self.framed.recv::<Reply>()? {
            Some(reply) => {
                self.note_reply(&reply);
                Ok(reply)
            }
            None => Err(NetError::Protocol(
                "server closed the connection before replying".into(),
            )),
        }
    }

    /// Settles client-side bookkeeping for a reply to a traced request:
    /// records the round-trip in the `client.query_ms` histogram (under
    /// the request's own trace context, so exemplars point at it) and
    /// writes the client trace line when a sink is attached.
    fn note_reply(&mut self, reply: &Reply) {
        if self.pending.is_empty() {
            return;
        }
        let Some((trace_id, sent)) = self.pending.remove(&reply.id()) else {
            return;
        };
        let latency_ms = sent.elapsed().as_secs_f64() * 1e3;
        {
            let _guard = ceps_obs::with_trace(TraceContext {
                trace_id,
                parent_span: 0,
                sampled: true,
            });
            ceps_obs::record("client.query_ms", latency_ms);
        }
        if let Some(out) = &mut self.trace_out {
            let outcome = if matches!(reply, Reply::Error { .. }) {
                "error"
            } else {
                "ok"
            };
            let line = format!(
                "{{\"schema\": \"ceps-trace/v1\", \"side\": \"client\", \"request_id\": {}, \
                 \"latency_ms\": {}, \"outcome\": \"{}\", \"trace_id\": \"{}\"}}",
                reply.id(),
                if latency_ms.is_finite() {
                    latency_ms
                } else {
                    0.0
                },
                outcome,
                id_hex(trace_id),
            );
            if writeln!(out, "{line}").and_then(|()| out.flush()).is_ok() {
                self.traces_written += 1;
            }
        }
    }

    /// Receives one reply and checks it answers `id`; unwraps remote
    /// errors into [`NetError::Remote`].
    fn expect_reply(&mut self, id: u64) -> Result<Reply> {
        let reply = self.recv_reply()?;
        // Grammar-violation errors are sent with id 0 before the server
        // hangs up — surface them as remote errors, not id mismatches.
        if let Reply::Error { error, .. } = reply {
            return Err(NetError::Remote(error));
        }
        if reply.id() != id {
            return Err(NetError::Protocol(format!(
                "reply id {} does not answer request id {id}",
                reply.id()
            )));
        }
        Ok(reply)
    }

    /// Runs one query set round-trip; the reply is byte-identical (same
    /// struct, same serialization) to the in-process
    /// [`CepsService::serve`](ceps_core::CepsService::serve) result.
    ///
    /// # Errors
    /// Transport failures, or [`NetError::Remote`] with the server's
    /// structured error (`BadRequest`, `Overloaded`, …).
    pub fn request(&mut self, req: &ServeRequest) -> Result<ServeReply> {
        let id = self.send_request(req)?;
        match self.expect_reply(id)? {
            Reply::Scores { reply, .. } => Ok(reply),
            other => Err(NetError::Protocol(format!(
                "expected Scores, got {other:?}"
            ))),
        }
    }

    /// Convenience wrapper over [`request`](Self::request) for a bare
    /// node list.
    ///
    /// # Errors
    /// As [`request`](Self::request).
    pub fn query(&mut self, queries: impl Into<Vec<NodeId>>) -> Result<ServeReply> {
        self.request(&ServeRequest::new(queries))
    }

    /// Infers the `K_softAND` coefficient for a query set server-side.
    ///
    /// # Errors
    /// As [`request`](Self::request).
    pub fn autok(&mut self, queries: impl Into<Vec<NodeId>>) -> Result<AutoKReply> {
        let id = self.fresh_id();
        self.framed.send(&Request::AutoK {
            id,
            queries: queries.into(),
        })?;
        match self.expect_reply(id)? {
            Reply::AutoK { k, mean_ranks, .. } => Ok(AutoKReply { k, mean_ranks }),
            other => Err(NetError::Protocol(format!("expected AutoK, got {other:?}"))),
        }
    }

    /// Liveness probe; returns the server's protocol version string.
    ///
    /// # Errors
    /// As [`request`](Self::request).
    pub fn ping(&mut self) -> Result<String> {
        let id = self.fresh_id();
        self.framed.send(&Request::Ping { id })?;
        match self.expect_reply(id)? {
            Reply::Pong { proto, .. } => Ok(proto),
            other => Err(NetError::Protocol(format!("expected Pong, got {other:?}"))),
        }
    }

    /// Fetches the server's counter snapshot.
    ///
    /// # Errors
    /// As [`request`](Self::request).
    pub fn stats(&mut self) -> Result<ServerStats> {
        let id = self.fresh_id();
        self.framed.send(&Request::Stats { id })?;
        match self.expect_reply(id)? {
            Reply::Stats { stats, .. } => Ok(stats),
            other => Err(NetError::Protocol(format!("expected Stats, got {other:?}"))),
        }
    }

    /// Asks the server to dump its flight-recorder ring; returns the
    /// `ceps-flight/v1` JSONL dump (empty when the recorder is off).
    ///
    /// # Errors
    /// As [`request`](Self::request).
    pub fn dump_flight(&mut self) -> Result<String> {
        let id = self.fresh_id();
        self.framed.send(&Request::DumpFlight { id })?;
        match self.expect_reply(id)? {
            Reply::Flight { dump, .. } => Ok(dump),
            other => Err(NetError::Protocol(format!(
                "expected Flight, got {other:?}"
            ))),
        }
    }

    /// Asks the server to drain and exit; waits for its `Bye`.
    ///
    /// # Errors
    /// As [`request`](Self::request).
    pub fn shutdown(&mut self) -> Result<()> {
        let id = self.fresh_id();
        self.framed.send(&Request::Shutdown { id })?;
        match self.expect_reply(id)? {
            Reply::Bye { .. } => Ok(()),
            other => Err(NetError::Protocol(format!("expected Bye, got {other:?}"))),
        }
    }
}
