//! [`CepsClient`]: a thin synchronous `ceps-wire/v1` client.
//!
//! One client owns one connection. The simple path is the round-trip
//! API (`request`, `ping`, `stats`, `autok`, `shutdown`): send a frame,
//! block for its reply, check the echoed request id. For batch
//! workloads, [`send_request`](CepsClient::send_request) /
//! [`recv_reply`](CepsClient::recv_reply) expose the raw halves so
//! several requests can be pipelined onto the stream before the first
//! reply is read.

use std::io;
use std::time::Duration;

use ceps_core::{ServeReply, ServeRequest};
use ceps_graph::NodeId;

use crate::error::NetError;
use crate::server::ServerStats;
use crate::transport::{Conn, ListenAddr};
use crate::wire::{Framed, Reply, Request, DEFAULT_MAX_FRAME_BYTES};
use crate::Result;

/// The reply to an `AutoK` request.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoKReply {
    /// The inferred `K_softAND` coefficient.
    pub k: usize,
    /// Mean held-out retrieval rank per candidate `k'`.
    pub mean_ranks: Vec<f64>,
}

/// A synchronous client for one `ceps-wire/v1` connection.
pub struct CepsClient {
    framed: Framed<Box<dyn Conn>>,
    next_id: u64,
}

impl CepsClient {
    /// Wraps an already-connected stream.
    pub fn from_conn(conn: Box<dyn Conn>) -> Self {
        CepsClient {
            framed: Framed::new(conn, DEFAULT_MAX_FRAME_BYTES),
            next_id: 1,
        }
    }

    /// Connects to a parsed/parseable address (`tcp://…`, `unix://…`,
    /// `host:port`, or a socket path).
    ///
    /// # Errors
    /// Connect failures.
    pub fn connect(addr: &str) -> io::Result<Self> {
        Ok(Self::from_conn(ListenAddr::parse(addr).connect()?))
    }

    /// Connects over TCP.
    ///
    /// # Errors
    /// Connect failures.
    pub fn connect_tcp(addr: &str) -> io::Result<Self> {
        Ok(Self::from_conn(
            ListenAddr::Tcp(addr.to_string()).connect()?,
        ))
    }

    /// Connects over a Unix domain socket.
    ///
    /// # Errors
    /// Connect failures.
    pub fn connect_unix(path: impl Into<std::path::PathBuf>) -> io::Result<Self> {
        Ok(Self::from_conn(ListenAddr::Unix(path.into()).connect()?))
    }

    /// Sets (or clears) the read deadline for replies.
    ///
    /// # Errors
    /// Transport errors.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.framed.conn().set_read_timeout(timeout)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends one request without waiting for its reply (pipelining);
    /// returns the request id to match against
    /// [`recv_reply`](Self::recv_reply).
    ///
    /// # Errors
    /// Transport write errors.
    pub fn send_request(&mut self, req: &ServeRequest) -> io::Result<u64> {
        let id = self.fresh_id();
        self.framed.send(&Request::Query {
            id,
            req: req.clone(),
        })?;
        Ok(id)
    }

    /// Receives the next reply frame, whatever request it answers.
    ///
    /// # Errors
    /// Transport/decode errors; [`NetError::Protocol`] when the server
    /// closed the stream instead of replying.
    pub fn recv_reply(&mut self) -> Result<Reply> {
        match self.framed.recv::<Reply>()? {
            Some(reply) => Ok(reply),
            None => Err(NetError::Protocol(
                "server closed the connection before replying".into(),
            )),
        }
    }

    /// Receives one reply and checks it answers `id`; unwraps remote
    /// errors into [`NetError::Remote`].
    fn expect_reply(&mut self, id: u64) -> Result<Reply> {
        let reply = self.recv_reply()?;
        // Grammar-violation errors are sent with id 0 before the server
        // hangs up — surface them as remote errors, not id mismatches.
        if let Reply::Error { error, .. } = reply {
            return Err(NetError::Remote(error));
        }
        if reply.id() != id {
            return Err(NetError::Protocol(format!(
                "reply id {} does not answer request id {id}",
                reply.id()
            )));
        }
        Ok(reply)
    }

    /// Runs one query set round-trip; the reply is byte-identical (same
    /// struct, same serialization) to the in-process
    /// [`CepsService::serve`](ceps_core::CepsService::serve) result.
    ///
    /// # Errors
    /// Transport failures, or [`NetError::Remote`] with the server's
    /// structured error (`BadRequest`, `Overloaded`, …).
    pub fn request(&mut self, req: &ServeRequest) -> Result<ServeReply> {
        let id = self.send_request(req)?;
        match self.expect_reply(id)? {
            Reply::Scores { reply, .. } => Ok(reply),
            other => Err(NetError::Protocol(format!(
                "expected Scores, got {other:?}"
            ))),
        }
    }

    /// Convenience wrapper over [`request`](Self::request) for a bare
    /// node list.
    ///
    /// # Errors
    /// As [`request`](Self::request).
    pub fn query(&mut self, queries: impl Into<Vec<NodeId>>) -> Result<ServeReply> {
        self.request(&ServeRequest::new(queries))
    }

    /// Infers the `K_softAND` coefficient for a query set server-side.
    ///
    /// # Errors
    /// As [`request`](Self::request).
    pub fn autok(&mut self, queries: impl Into<Vec<NodeId>>) -> Result<AutoKReply> {
        let id = self.fresh_id();
        self.framed.send(&Request::AutoK {
            id,
            queries: queries.into(),
        })?;
        match self.expect_reply(id)? {
            Reply::AutoK { k, mean_ranks, .. } => Ok(AutoKReply { k, mean_ranks }),
            other => Err(NetError::Protocol(format!("expected AutoK, got {other:?}"))),
        }
    }

    /// Liveness probe; returns the server's protocol version string.
    ///
    /// # Errors
    /// As [`request`](Self::request).
    pub fn ping(&mut self) -> Result<String> {
        let id = self.fresh_id();
        self.framed.send(&Request::Ping { id })?;
        match self.expect_reply(id)? {
            Reply::Pong { proto, .. } => Ok(proto),
            other => Err(NetError::Protocol(format!("expected Pong, got {other:?}"))),
        }
    }

    /// Fetches the server's counter snapshot.
    ///
    /// # Errors
    /// As [`request`](Self::request).
    pub fn stats(&mut self) -> Result<ServerStats> {
        let id = self.fresh_id();
        self.framed.send(&Request::Stats { id })?;
        match self.expect_reply(id)? {
            Reply::Stats { stats, .. } => Ok(stats),
            other => Err(NetError::Protocol(format!("expected Stats, got {other:?}"))),
        }
    }

    /// Asks the server to drain and exit; waits for its `Bye`.
    ///
    /// # Errors
    /// As [`request`](Self::request).
    pub fn shutdown(&mut self) -> Result<()> {
        let id = self.fresh_id();
        self.framed.send(&Request::Shutdown { id })?;
        match self.expect_reply(id)? {
            Reply::Bye { .. } => Ok(()),
            other => Err(NetError::Protocol(format!("expected Bye, got {other:?}"))),
        }
    }
}
