//! The crate's error type.

use std::fmt;
use std::io;

use crate::wire::WireError;

/// Everything that can go wrong speaking `ceps-wire/v1`.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// Transport-level I/O failure (includes read/write timeouts).
    Io(io::Error),
    /// A frame violated the grammar (bad header, truncated payload,
    /// invalid JSON, unknown tag). The stream cannot be resynchronized.
    Malformed(String),
    /// A frame announced a payload longer than the configured cap.
    TooLarge {
        /// Announced payload length in bytes.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// The peer answered with a structured `Error` reply.
    Remote(WireError),
    /// The peer violated the protocol (wrong reply kind, id mismatch,
    /// connection closed mid-conversation).
    Protocol(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            NetError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            NetError::Remote(e) => write!(f, "server error ({:?}): {}", e.kind, e.message),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl NetError {
    /// True when the error is an I/O timeout (the read deadline passed
    /// without a complete frame) — the caller may simply retry.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            NetError::Io(e) if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            )
        )
    }
}
