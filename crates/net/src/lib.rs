//! # ceps-net — the wire-protocol service boundary
//!
//! Everything before this crate served queries *in-process*:
//! [`ceps_core::CepsService`] replays internal streams, but there was no
//! production edge a client could connect to. `ceps-net` gives the engine
//! one, staying zero-dependency like `ceps-obs` and `ceps-pool`:
//!
//! * [`wire`] — the `ceps-wire/v1` protocol: length-prefixed single-line
//!   JSON frames carrying a small externally-tagged request/reply
//!   vocabulary (`Query`, `AutoK`, `Ping`, `Stats`, `DumpFlight`,
//!   `Shutdown` in; `Scores`, `AutoK`, `Pong`, `Stats`, `Flight`, `Bye`,
//!   structured `Error` out). `Query` frames optionally carry a
//!   [`WireTrace`] context so client and server telemetry share one
//!   `trace_id` end to end.
//!   The `Query`/`Scores` payloads are exactly
//!   [`ceps_core::ServeRequest`] / [`ceps_core::ServeReply`] — the same
//!   structs the in-process API uses, so the wire adds no second
//!   vocabulary and replies are byte-identical either way.
//! * [`transport`] — a [`Transport`]/[`Conn`] trait seam with three
//!   implementations: an in-process duplex pipe (tests drive the full
//!   server without a socket), Unix domain sockets, and TCP.
//! * [`server`] — [`CepsServer`]: a long-lived accept loop fanning
//!   connections over a bounded worker set that reuses one shared
//!   [`ceps_core::CepsService`], with read/write timeouts, a max-frame
//!   guard, admission control (structured `Overloaded` replies past a
//!   configurable in-flight cap) and graceful drain on `Shutdown`.
//! * [`client`] — [`CepsClient`]: a thin synchronous client with
//!   request-id bookkeeping and optional pipelining.
//!
//! Every accepted connection, decoded frame, shed and error bumps a
//! `ceps_net_*` counter and per-frame latency histogram through
//! [`ceps_obs`], so an attached [`ceps_obs::MetricsExporter`] picks the
//! service boundary up for free (windowed p50/p90/p99 included).
//!
//! ## In-process quick start
//!
//! ```
//! use ceps_core::{CepsConfig, CepsServiceBuilder, ServeRequest};
//! use ceps_graph::{GraphBuilder, NodeId};
//! use ceps_net::{in_proc, CepsClient, CepsServer, ServerConfig};
//!
//! let mut b = GraphBuilder::new();
//! for (x, y) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
//!     b.add_edge(NodeId(x), NodeId(y), 1.0).unwrap();
//! }
//! let service = CepsServiceBuilder::new()
//!     .cache_bytes(1 << 20)
//!     .build_from_graph(b.build().unwrap(), CepsConfig::default().budget(2))
//!     .unwrap();
//!
//! let (mut transport, connector) = in_proc();
//! let server = CepsServer::new(service, ServerConfig::default());
//! std::thread::scope(|s| {
//!     let server = &server;
//!     s.spawn(move || server.serve(&mut transport).unwrap());
//!     let mut client = CepsClient::from_conn(Box::new(connector.connect().unwrap()));
//!     let reply = client.request(&ServeRequest::new(vec![NodeId(0), NodeId(4)])).unwrap();
//!     assert!(reply.members.iter().any(|m| m.id == NodeId(2)));
//!     client.shutdown().unwrap(); // graceful drain; serve() returns
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod error;
pub mod server;
pub mod transport;
pub mod wire;

pub use client::{AutoKReply, CepsClient};
pub use error::NetError;
pub use server::{
    Admission, CepsServer, ServerConfig, ServerStats, WireCacheStats, LATENCY_WINDOW,
};
pub use transport::{
    in_proc, Conn, InProcConn, InProcConnector, InProcTransport, ListenAddr, TcpTransport,
    Transport, UnixTransport,
};
pub use wire::{
    Framed, Reply, Request, WireError, WireErrorKind, WireTrace, DEFAULT_MAX_FRAME_BYTES,
    WIRE_VERSION,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NetError>;
