//! [`CepsServer`]: the long-lived serving loop behind the wire boundary.
//!
//! One server owns one [`CepsService`] (engine + row cache) and fans
//! inbound connections over a bounded worker set. Each worker speaks
//! `ceps-wire/v1` on its connection: requests are answered in order, one
//! at a time per connection; concurrency comes from many connections.
//!
//! Three guard rails keep a misbehaving or overeager client from taking
//! the service down:
//!
//! * a **max-frame guard** — oversized frames are rejected from the
//!   header alone, before any payload is buffered;
//! * **admission control** — at most `max_in_flight` queries execute at
//!   once; excess queries get a structured `Overloaded` reply instead of
//!   queueing unboundedly;
//! * **timeouts** — reads poll in short slices (so shutdown is observed
//!   between frames), idle connections are reaped, and writes carry a
//!   deadline.
//!
//! A `Shutdown` frame (or [`CepsServer::request_stop`]) drains the
//! server: in-progress requests finish, every worker closes its
//! connection at the next frame boundary, and `serve` returns the final
//! [`ServerStats`].
//!
//! ## End-to-end tracing
//!
//! When a `Query` frame carries a [`WireTrace`](crate::wire::WireTrace),
//! the worker adopts that context for the request: server spans,
//! histogram exemplars, flight-recorder events, and the per-request
//! `ceps-trace/v1` line (when a tracer is attached via
//! [`CepsServer::with_tracer`]) all share the client's `trace_id`.
//! Untraced queries get a fresh root context so server-side telemetry is
//! attributable either way. Sheds and error replies are noted in the
//! flight recorder (when enabled), and a `DumpFlight` frame returns the
//! ring as `ceps-flight/v1` JSONL. `Stats` replies to a full health
//! snapshot: counters, in-flight, cache stats, and windowed latency
//! percentiles over the last [`LATENCY_WINDOW`] queries.

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ceps_core::{
    infer_soft_and_k, CepsService, RequestTrace, RequestTracer, ServeReply, StageTimes,
};
use ceps_obs::{counter, flight_note, record, FlightKind, TraceContext};

use crate::transport::{Conn, Transport};
use crate::wire::{Framed, Reply, Request, WireError, WireErrorKind, WireTrace, WIRE_VERSION};

/// Tuning knobs for [`CepsServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection-handling worker threads; `0` means "match the owned
    /// service's worker count".
    pub workers: usize,
    /// Maximum accepted frame payload in bytes.
    pub max_frame_bytes: usize,
    /// Close a connection after this many milliseconds without a frame;
    /// `0` disables idle reaping.
    pub idle_timeout_ms: u64,
    /// Write deadline per reply frame in milliseconds; `0` disables.
    pub write_timeout_ms: u64,
    /// Maximum queries executing at once before `Overloaded` sheds kick
    /// in; `0` means "match the worker count".
    pub max_in_flight: usize,
    /// How long each accept poll waits before re-checking for shutdown,
    /// in milliseconds.
    pub accept_poll_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            max_frame_bytes: crate::wire::DEFAULT_MAX_FRAME_BYTES,
            idle_timeout_ms: 30_000,
            write_timeout_ms: 10_000,
            max_in_flight: 0,
            accept_poll_ms: 250,
        }
    }
}

/// Admission control: a counting gate over concurrently executing
/// queries. Public so tests can saturate it deterministically and assert
/// the server sheds.
#[derive(Debug)]
pub struct Admission {
    cap: usize,
    in_flight: AtomicUsize,
}

impl Admission {
    /// A gate admitting at most `cap` concurrent holders.
    pub fn new(cap: usize) -> Self {
        Admission {
            cap: cap.max(1),
            in_flight: AtomicUsize::new(0),
        }
    }

    /// The concurrency cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Queries executing right now.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Tries to admit one query; `None` when the cap is reached. The
    /// returned permit releases its slot on drop.
    pub fn try_acquire(self: &Arc<Self>) -> Option<AdmissionPermit> {
        let mut cur = self.in_flight.load(Ordering::Acquire);
        loop {
            if cur >= self.cap {
                return None;
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    ceps_obs::gauge_set("net.in_flight", (cur + 1) as i64);
                    return Some(AdmissionPermit(Arc::clone(self)));
                }
                Err(now) => cur = now,
            }
        }
    }
}

/// RAII admission slot; dropping it re-opens the gate for one query.
#[derive(Debug)]
pub struct AdmissionPermit(Arc<Admission>);

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let prev = self.0.in_flight.fetch_sub(1, Ordering::AcqRel);
        ceps_obs::gauge_set("net.in_flight", prev.saturating_sub(1) as i64);
    }
}

/// Recent query latencies retained for the windowed percentiles in
/// [`ServerStats`].
pub const LATENCY_WINDOW: usize = 512;

/// Row-cache counters in wire form (mirrors `ceps_core::CacheStats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct WireCacheStats {
    /// Query rows served warm.
    pub hits: u64,
    /// Query rows solved cold.
    pub misses: u64,
    /// Rows evicted under the byte budget.
    pub evictions: u64,
}

/// Health snapshot a `Stats` frame returns (and `serve` on exit).
///
/// The windowed percentile and cache fields are `#[serde(default)]` so
/// snapshots from older v1 servers (which omit them) still decode.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServerStats {
    /// Protocol version ([`WIRE_VERSION`]).
    pub proto: String,
    /// Connections accepted since start.
    pub connections: u64,
    /// Frames decoded since start (all request kinds).
    pub frames: u64,
    /// `Query` + `AutoK` frames admitted and executed.
    pub queries: u64,
    /// Requests shed with `Overloaded`.
    pub sheds: u64,
    /// Error replies sent (sheds included) plus undecodable frames.
    pub errors: u64,
    /// Queries executing at snapshot time.
    pub in_flight: usize,
    /// Milliseconds since the server was created.
    pub uptime_ms: u64,
    /// Median query latency over the last [`LATENCY_WINDOW`] queries
    /// (0 until a query completed).
    #[serde(default)]
    pub p50_ms: f64,
    /// 90th-percentile windowed query latency.
    #[serde(default)]
    pub p90_ms: f64,
    /// 99th-percentile windowed query latency.
    #[serde(default)]
    pub p99_ms: f64,
    /// Median queue delay (frame decode → execution start) over the same
    /// window — the share of latency charged to waiting, not serving.
    #[serde(default)]
    pub queue_p50_ms: f64,
    /// 99th-percentile windowed queue delay.
    #[serde(default)]
    pub queue_p99_ms: f64,
    /// Row-cache counters (`None` when the service runs uncached).
    #[serde(default)]
    pub cache: Option<WireCacheStats>,
}

#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    frames: AtomicU64,
    queries: AtomicU64,
    sheds: AtomicU64,
    errors: AtomicU64,
}

/// Work queue between the accept loop and the connection workers.
struct ConnQueue {
    queue: Mutex<VecDeque<Box<dyn Conn>>>,
    ready: Condvar,
    cap: usize,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        ConnQueue {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            cap,
        }
    }

    /// Blocks until the bounded queue has room, then enqueues.
    fn push(&self, conn: Box<dyn Conn>) {
        let mut q = self.queue.lock().expect("queue poisoned");
        while q.len() >= self.cap {
            q = self.ready.wait(q).expect("queue poisoned");
        }
        q.push_back(conn);
        ceps_obs::gauge_set("net.conn_queue_depth", q.len() as i64);
        self.ready.notify_all();
    }

    /// Dequeues the next connection, or `None` once draining and empty.
    fn pop(&self, stop: &AtomicBool) -> Option<Box<dyn Conn>> {
        let mut q = self.queue.lock().expect("queue poisoned");
        loop {
            if let Some(conn) = q.pop_front() {
                ceps_obs::gauge_set("net.conn_queue_depth", q.len() as i64);
                self.ready.notify_all();
                return Some(conn);
            }
            if stop.load(Ordering::Acquire) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(q, Duration::from_millis(100))
                .expect("queue poisoned");
            q = guard;
        }
    }
}

/// A long-lived wire server wrapping one [`CepsService`].
pub struct CepsServer {
    service: CepsService,
    config: ServerConfig,
    admission: Arc<Admission>,
    stop: AtomicBool,
    counters: Counters,
    started: Instant,
    tracer: Option<RequestTracer>,
    latencies: Mutex<VecDeque<f64>>,
    queue_delays: Mutex<VecDeque<f64>>,
}

impl CepsServer {
    /// Wraps `service` with the given tuning.
    pub fn new(service: CepsService, config: ServerConfig) -> Self {
        let workers = if config.workers == 0 {
            service.workers()
        } else {
            config.workers
        };
        let cap = if config.max_in_flight == 0 {
            workers
        } else {
            config.max_in_flight
        };
        CepsServer {
            service,
            config,
            admission: Arc::new(Admission::new(cap)),
            stop: AtomicBool::new(false),
            counters: Counters::default(),
            started: Instant::now(),
            tracer: None,
            latencies: Mutex::new(VecDeque::with_capacity(LATENCY_WINDOW)),
            queue_delays: Mutex::new(VecDeque::with_capacity(LATENCY_WINDOW)),
        }
    }

    /// Attaches a per-request trace sink: every admitted `Query` feeds the
    /// tracer's head/tail sampling and, when kept, emits one
    /// `ceps-trace/v1` line carrying the request's `trace_id`.
    #[must_use]
    pub fn with_tracer(mut self, tracer: RequestTracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The attached tracer, if any (for end-of-run reporting).
    pub fn tracer(&self) -> Option<&RequestTracer> {
        self.tracer.as_ref()
    }

    /// The wrapped service.
    pub fn service(&self) -> &CepsService {
        &self.service
    }

    /// Feeds one completed query latency into the bounded window behind
    /// the `Stats` percentiles. Returns the p99 of the window *before*
    /// this query so callers can mark slow requests — computed only when
    /// the flight recorder (its sole consumer) is enabled and the window
    /// is warm; 0 otherwise.
    fn note_latency(&self, latency_ms: f64) -> f64 {
        let mut ring = self.latencies.lock().unwrap_or_else(|e| e.into_inner());
        let p99 = if ceps_obs::flight_enabled() && ring.len() >= 32 {
            percentile_sorted(&mut ring.iter().copied().collect::<Vec<_>>(), 99.0)
        } else {
            0.0
        };
        if ring.len() == LATENCY_WINDOW {
            ring.pop_front();
        }
        ring.push_back(latency_ms);
        p99
    }

    /// Windowed latency percentiles over the retained ring.
    fn latency_percentiles(&self) -> (f64, f64, f64) {
        let ring = self.latencies.lock().unwrap_or_else(|e| e.into_inner());
        let mut sorted: Vec<f64> = ring.iter().copied().collect();
        (
            percentile_sorted(&mut sorted, 50.0),
            percentile_sorted(&mut sorted, 90.0),
            percentile_sorted(&mut sorted, 99.0),
        )
    }

    /// Feeds one request's queue delay (frame decode → execution start)
    /// into its bounded window and the `net.queue_ms` histogram.
    fn note_queue_delay(&self, queue_ms: f64) {
        record("net.queue_ms", queue_ms);
        let mut ring = self.queue_delays.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == LATENCY_WINDOW {
            ring.pop_front();
        }
        ring.push_back(queue_ms);
    }

    /// Windowed queue-delay percentiles over the retained ring.
    fn queue_percentiles(&self) -> (f64, f64) {
        let ring = self.queue_delays.lock().unwrap_or_else(|e| e.into_inner());
        let mut sorted: Vec<f64> = ring.iter().copied().collect();
        (
            percentile_sorted(&mut sorted, 50.0),
            percentile_sorted(&mut sorted, 99.0),
        )
    }

    /// The admission gate (tests hold permits to force `Overloaded`).
    pub fn admission(&self) -> &Arc<Admission> {
        &self.admission
    }

    /// Asks the accept loop and all workers to drain and exit — the
    /// out-of-band equivalent of a wire `Shutdown` frame.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// True once a shutdown has been requested.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// A point-in-time health snapshot: counters, in-flight, windowed
    /// latency and queue-delay percentiles, and row-cache counters.
    ///
    /// This is the **single** snapshot assembly path: the `Stats` wire
    /// reply, the drain summary [`serve`](Self::serve) returns, and any
    /// CLI rendering all go through here, so the surfaces cannot drift.
    pub fn stats(&self) -> ServerStats {
        let (p50_ms, p90_ms, p99_ms) = self.latency_percentiles();
        let (queue_p50_ms, queue_p99_ms) = self.queue_percentiles();
        ServerStats {
            proto: WIRE_VERSION.to_string(),
            connections: self.counters.connections.load(Ordering::Relaxed),
            frames: self.counters.frames.load(Ordering::Relaxed),
            queries: self.counters.queries.load(Ordering::Relaxed),
            sheds: self.counters.sheds.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            in_flight: self.admission.in_flight(),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            p50_ms,
            p90_ms,
            p99_ms,
            queue_p50_ms,
            queue_p99_ms,
            cache: self.service.cache_stats().map(|c| WireCacheStats {
                hits: c.hits,
                misses: c.misses,
                evictions: c.evictions,
            }),
        }
    }

    /// Runs the accept loop over `transport` until a `Shutdown` frame or
    /// [`request_stop`](Self::request_stop) drains it; returns the final
    /// counter snapshot.
    ///
    /// # Errors
    /// Fatal listener errors from the transport. Per-connection errors
    /// are counted and logged, never fatal.
    pub fn serve(&self, transport: &mut dyn Transport) -> io::Result<ServerStats> {
        let workers = if self.config.workers == 0 {
            self.service.workers()
        } else {
            self.config.workers
        };
        let queue = ConnQueue::new(workers.max(1) * 2);
        let poll = Duration::from_millis(self.config.accept_poll_ms.max(1));
        ceps_obs::info!(
            "ceps-net: serving on {} ({} workers, cap {})",
            transport.addr(),
            workers.max(1),
            self.admission.cap()
        );

        let mut accept_err = None;
        std::thread::scope(|s| {
            let queue = &queue;
            for worker in 0..workers.max(1) {
                s.spawn(move || {
                    while let Some(conn) = queue.pop(&self.stop) {
                        self.handle_conn(conn, worker);
                    }
                });
            }
            while !self.stop.load(Ordering::Acquire) {
                match transport.accept_timeout(poll) {
                    Ok(Some(conn)) => {
                        self.counters.connections.fetch_add(1, Ordering::Relaxed);
                        counter("net.connections_total", 1);
                        queue.push(conn);
                    }
                    Ok(None) => {}
                    Err(e) => {
                        accept_err = Some(e);
                        self.stop.store(true, Ordering::Release);
                    }
                }
            }
            // Workers observe the stop flag via pop()'s timeout and via
            // their per-read slices, then drain and join at scope end.
        });
        match accept_err {
            Some(e) => Err(e),
            None => Ok(self.stats()),
        }
    }

    /// Speaks the protocol on one connection until EOF, error, idle
    /// timeout, or drain. `worker` is the serving thread's index,
    /// reported in per-request trace lines.
    fn handle_conn(&self, conn: Box<dyn Conn>, worker: usize) {
        let read_slice = Duration::from_millis(250);
        let _ = conn.set_read_timeout(Some(read_slice));
        let write_timeout = match self.config.write_timeout_ms {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        };
        let _ = conn.set_write_timeout(write_timeout);
        let peer = conn.peer();
        let idle_cap = match self.config.idle_timeout_ms {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        };

        let mut framed = Framed::new(conn, self.config.max_frame_bytes);
        let mut last_activity = Instant::now();
        loop {
            if self.stop.load(Ordering::Acquire) {
                return; // drain: between frames, nothing in flight here
            }
            let frame_start = Instant::now();
            let request = match framed.recv::<Request>() {
                Ok(Some(req)) => req,
                Ok(None) => return, // clean EOF
                Err(e) if e.is_timeout() => {
                    if let Some(cap) = idle_cap {
                        if last_activity.elapsed() > cap {
                            ceps_obs::debug!("ceps-net: reaping idle connection from {peer}");
                            return;
                        }
                    }
                    continue;
                }
                Err(e) => {
                    // Grammar violations get a structured goodbye (id 0:
                    // the offending frame never decoded); the stream is
                    // beyond resync either way.
                    self.counters.errors.fetch_add(1, Ordering::Relaxed);
                    counter("net.errors_total", 1);
                    let kind = match e {
                        crate::NetError::TooLarge { .. } => WireErrorKind::TooLarge,
                        _ => WireErrorKind::Malformed,
                    };
                    let _ = framed.send(&Reply::Error {
                        id: 0,
                        error: WireError::new(kind, e.to_string()),
                    });
                    return;
                }
            };
            // Decode completion stamp: everything between here and the
            // moment the query actually starts executing is queue delay,
            // attributed separately from service time.
            let decoded = Instant::now();
            last_activity = decoded;
            self.counters.frames.fetch_add(1, Ordering::Relaxed);
            counter("net.frames_total", 1);

            let (reply, done) = self.dispatch(request, worker, decoded);
            if matches!(reply, Reply::Error { .. }) {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                counter("net.errors_total", 1);
                flight_note(FlightKind::Error, "net.error_reply", 1);
            }
            record("net.frame_ms", frame_start.elapsed().as_secs_f64() * 1e3);
            if framed.send(&reply).is_err() || done {
                return;
            }
        }
    }

    /// Answers one decoded request; the bool asks the caller to close
    /// the connection after sending the reply. `decoded` is the instant
    /// the request's frame finished decoding — the anchor for queue-delay
    /// attribution on query execution.
    fn dispatch(&self, request: Request, worker: usize, decoded: Instant) -> (Reply, bool) {
        match request {
            Request::Ping { id } => (
                Reply::Pong {
                    id,
                    proto: WIRE_VERSION.to_string(),
                },
                false,
            ),
            Request::Stats { id } => (
                Reply::Stats {
                    id,
                    stats: self.stats(),
                },
                false,
            ),
            Request::Shutdown { id } => {
                ceps_obs::info!("ceps-net: shutdown requested over the wire");
                self.stop.store(true, Ordering::Release);
                (Reply::Bye { id }, true)
            }
            Request::Query { id, req, trace } => {
                let Some(_permit) = self.admission.try_acquire() else {
                    return (self.shed(id), false);
                };
                self.counters.queries.fetch_add(1, Ordering::Relaxed);
                counter("net.queries_total", 1);
                // Adopt the client's context (shared trace_id across both
                // sides of the wire) or mint a fresh root for untraced
                // frames, so spans, exemplars and flight events recorded
                // while serving this request are attributable either way.
                let ctx = trace
                    .as_ref()
                    .and_then(WireTrace::to_context)
                    .unwrap_or_else(TraceContext::new_root);
                let _trace_guard = ceps_obs::with_trace(ctx);
                let start = Instant::now();
                let queue_ms = start.duration_since(decoded).as_secs_f64() * 1e3;
                self.note_queue_delay(queue_ms);
                let outcome = self.service.run_instrumented(&req.queries);
                let latency_ms = start.elapsed().as_secs_f64() * 1e3;
                record("net.query_ms", latency_ms);
                // Every completed query leaves a mark in the ring (value:
                // latency in µs), so a flight dump shows the recent
                // request history even when nothing went wrong.
                ceps_obs::flight_event(
                    FlightKind::Mark,
                    "net.query",
                    ctx.trace_id,
                    (latency_ms * 1e3) as u64,
                );
                let prior_p99 = self.note_latency(latency_ms);
                if prior_p99 > 0.0 && latency_ms > prior_p99 {
                    ceps_obs::flight_event(
                        FlightKind::SlowRequest,
                        "net.slow_request",
                        ctx.trace_id,
                        (latency_ms * 1e3) as u64,
                    );
                }
                let reply = match outcome {
                    Ok((result, metrics)) => {
                        if let Some(tracer) = &self.tracer {
                            tracer.record(&RequestTrace {
                                request_id: id,
                                worker,
                                queries: req.queries.len(),
                                latency_ms,
                                queue_ms,
                                stages: metrics.stages,
                                cache_hits: metrics.cache_hits,
                                cache_misses: metrics.cache_misses,
                                budget: self.service.engine().config().budget,
                                paths: result.paths.len(),
                                error: None,
                                trace_id: Some(ctx.trace_id),
                            });
                        }
                        Reply::Scores {
                            id,
                            reply: ServeReply::from_result(&result, &req.queries),
                        }
                    }
                    Err(e) => {
                        if let Some(tracer) = &self.tracer {
                            tracer.record(&RequestTrace {
                                request_id: id,
                                worker,
                                queries: req.queries.len(),
                                latency_ms,
                                queue_ms,
                                stages: StageTimes::default(),
                                cache_hits: 0,
                                cache_misses: 0,
                                budget: self.service.engine().config().budget,
                                paths: 0,
                                error: Some(e.to_string()),
                                trace_id: Some(ctx.trace_id),
                            });
                        }
                        Reply::Error {
                            id,
                            error: WireError::new(WireErrorKind::BadRequest, e.to_string()),
                        }
                    }
                };
                (reply, false)
            }
            Request::AutoK { id, queries } => {
                let Some(_permit) = self.admission.try_acquire() else {
                    return (self.shed(id), false);
                };
                self.counters.queries.fetch_add(1, Ordering::Relaxed);
                counter("net.queries_total", 1);
                let _trace_guard = ceps_obs::with_trace(TraceContext::new_root());
                let start = Instant::now();
                self.note_queue_delay(start.duration_since(decoded).as_secs_f64() * 1e3);
                let reply = match infer_soft_and_k(self.service.engine(), &queries) {
                    Ok(inf) => Reply::AutoK {
                        id,
                        k: inf.k,
                        mean_ranks: inf.mean_ranks,
                    },
                    Err(e) => Reply::Error {
                        id,
                        error: WireError::new(WireErrorKind::BadRequest, e.to_string()),
                    },
                };
                let latency_ms = start.elapsed().as_secs_f64() * 1e3;
                record("net.query_ms", latency_ms);
                self.note_latency(latency_ms);
                (reply, false)
            }
            Request::DumpFlight { id } => (
                // Deliberately not gated on admission: the ring must be
                // dumpable while the server is overloaded — that is when
                // it matters.
                Reply::Flight {
                    id,
                    dump: ceps_obs::flight_dump(),
                },
                false,
            ),
        }
    }

    fn shed(&self, id: u64) -> Reply {
        self.counters.sheds.fetch_add(1, Ordering::Relaxed);
        counter("net.sheds_total", 1);
        flight_note(FlightKind::Shed, "net.shed", self.admission.cap() as u64);
        Reply::Error {
            id,
            error: WireError::new(
                WireErrorKind::Overloaded,
                format!("in-flight cap {} reached", self.admission.cap()),
            ),
        }
    }
}

/// Nearest-rank percentile over a scratch buffer (sorted in place);
/// 0 when empty.
fn percentile_sorted(values: &mut [f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * values.len() as f64).ceil().max(1.0) as usize;
    values[rank.min(values.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_core::{CepsConfig, CepsServiceBuilder, ServeRequest};
    use ceps_graph::{GraphBuilder, NodeId};

    use crate::client::CepsClient;
    use crate::transport::in_proc;

    fn test_service() -> CepsService {
        let mut b = GraphBuilder::new();
        for (x, y) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5)] {
            b.add_edge(NodeId(x), NodeId(y), 1.0).unwrap();
        }
        CepsServiceBuilder::new()
            .cache_bytes(1 << 20)
            .workers(2)
            .build_from_graph(b.build().unwrap(), CepsConfig::default().budget(3))
            .unwrap()
    }

    #[test]
    fn admission_gate_counts_and_releases() {
        let gate = Arc::new(Admission::new(2));
        let p1 = gate.try_acquire().unwrap();
        let p2 = gate.try_acquire().unwrap();
        assert_eq!(gate.in_flight(), 2);
        assert!(gate.try_acquire().is_none());
        drop(p1);
        assert_eq!(gate.in_flight(), 1);
        let p3 = gate.try_acquire().unwrap();
        drop((p2, p3));
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn server_answers_ping_stats_query_and_drains_on_shutdown() {
        let server = CepsServer::new(test_service(), ServerConfig::default());
        let (mut transport, connector) = in_proc();
        let stats = std::thread::scope(|s| {
            let server = &server;
            let handle = s.spawn(move || server.serve(&mut transport).unwrap());

            let mut client = CepsClient::from_conn(Box::new(connector.connect().unwrap()));
            let proto = client.ping().unwrap();
            assert_eq!(proto, WIRE_VERSION);

            let reply = client
                .request(&ServeRequest::new(vec![NodeId(0), NodeId(5)]))
                .unwrap();
            assert!(reply.k >= 1);
            assert!(!reply.members.is_empty());

            let stats = client.stats().unwrap();
            assert_eq!(stats.queries, 1);
            assert!(stats.frames >= 3);

            client.shutdown().unwrap();
            handle.join().unwrap()
        });
        assert!(stats.frames >= 4);
        assert_eq!(stats.sheds, 0);
    }

    #[test]
    fn saturated_admission_sheds_with_overloaded() {
        let mut config = ServerConfig::default();
        config.max_in_flight = 1;
        let server = CepsServer::new(test_service(), config);
        let (mut transport, connector) = in_proc();
        std::thread::scope(|s| {
            let server = &server;
            s.spawn(move || server.serve(&mut transport).unwrap());

            // Hold the only slot so the next query must shed.
            let permit = server.admission().try_acquire().unwrap();
            let mut client = CepsClient::from_conn(Box::new(connector.connect().unwrap()));
            let err = client
                .request(&ServeRequest::new(vec![NodeId(0)]))
                .unwrap_err();
            match err {
                crate::NetError::Remote(e) => {
                    assert_eq!(e.kind, WireErrorKind::Overloaded)
                }
                other => panic!("expected Overloaded shed, got {other}"),
            }
            drop(permit);
            // Slot free again: the same connection now succeeds.
            client.request(&ServeRequest::new(vec![NodeId(0)])).unwrap();
            assert_eq!(server.stats().sheds, 1);
            client.shutdown().unwrap();
        });
    }

    #[test]
    fn bad_queries_get_structured_bad_request() {
        let server = CepsServer::new(test_service(), ServerConfig::default());
        let (mut transport, connector) = in_proc();
        std::thread::scope(|s| {
            let server = &server;
            s.spawn(move || server.serve(&mut transport).unwrap());
            let mut client = CepsClient::from_conn(Box::new(connector.connect().unwrap()));
            let err = client
                .request(&ServeRequest::new(vec![NodeId(999)]))
                .unwrap_err();
            match err {
                crate::NetError::Remote(e) => assert_eq!(e.kind, WireErrorKind::BadRequest),
                other => panic!("expected BadRequest, got {other}"),
            }
            // The connection survives a rejected query.
            client.ping().unwrap();
            client.shutdown().unwrap();
        });
    }

    /// A `Write` handing its bytes to a shared buffer the test can read.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn percentile_sorted_uses_nearest_rank() {
        assert_eq!(percentile_sorted(&mut [], 99.0), 0.0);
        let mut one = vec![5.0];
        assert_eq!(percentile_sorted(&mut one, 50.0), 5.0);
        let mut v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_sorted(&mut v, 50.0), 50.0);
        assert_eq!(percentile_sorted(&mut v, 99.0), 99.0);
        assert_eq!(percentile_sorted(&mut v, 100.0), 100.0);
    }

    #[test]
    fn stats_snapshot_carries_percentiles_and_cache_counters() {
        let server = CepsServer::new(test_service(), ServerConfig::default());
        let (mut transport, connector) = in_proc();
        std::thread::scope(|s| {
            let server = &server;
            s.spawn(move || server.serve(&mut transport).unwrap());
            let mut client = CepsClient::from_conn(Box::new(connector.connect().unwrap()));
            for _ in 0..3 {
                client
                    .request(&ServeRequest::new(vec![NodeId(0), NodeId(5)]))
                    .unwrap();
            }
            let stats = client.stats().unwrap();
            assert!(stats.p50_ms > 0.0, "3 queries must leave a median");
            assert!(stats.p99_ms >= stats.p90_ms && stats.p90_ms >= stats.p50_ms);
            let cache = stats.cache.expect("service is cached");
            assert_eq!(cache.hits + cache.misses, 6, "2 rows x 3 requests");
            assert!(cache.misses >= 2, "first request solves cold");
            client.shutdown().unwrap();
        });
    }

    #[test]
    fn queue_delay_is_attributed_in_stats_and_trace_lines() {
        let sink = SharedBuf::default();
        let server = CepsServer::new(test_service(), ServerConfig::default())
            .with_tracer(RequestTracer::new(Box::new(sink.clone()), 1.0));
        let (mut transport, connector) = in_proc();
        std::thread::scope(|s| {
            let server = &server;
            s.spawn(move || server.serve(&mut transport).unwrap());
            let mut client = CepsClient::from_conn(Box::new(connector.connect().unwrap()));
            for _ in 0..3 {
                client
                    .request(&ServeRequest::new(vec![NodeId(0), NodeId(5)]))
                    .unwrap();
            }
            let stats = client.stats().unwrap();
            // Queue delay on an idle in-proc pipe is tiny but non-negative
            // and strictly below the service time.
            assert!(stats.queue_p50_ms >= 0.0);
            assert!(stats.queue_p99_ms >= stats.queue_p50_ms);
            assert!(stats.queue_p99_ms < stats.p99_ms.max(1.0));
            client.shutdown().unwrap();
        });
        for line in sink.text().lines() {
            assert!(
                line.contains("\"queue_ms\": "),
                "trace line lacks queue_ms: {line}"
            );
        }
    }

    #[test]
    fn drain_summary_and_stats_reply_share_one_snapshot_path() {
        // Satellite fix: the `Stats` wire reply and the final stats that
        // `serve` returns on drain must be assembled by the same helper.
        // Pin that: a Stats fetched right before shutdown equals the
        // drain-returned snapshot on every field that cannot legitimately
        // advance between the two calls (uptime ticks on, and the
        // shutdown itself adds frames).
        let server = CepsServer::new(test_service(), ServerConfig::default());
        let (mut transport, connector) = in_proc();
        let (wire_stats, drained) = std::thread::scope(|s| {
            let server = &server;
            let handle = s.spawn(move || server.serve(&mut transport).unwrap());
            let mut client = CepsClient::from_conn(Box::new(connector.connect().unwrap()));
            for _ in 0..2 {
                client
                    .request(&ServeRequest::new(vec![NodeId(0), NodeId(5)]))
                    .unwrap();
            }
            let wire_stats = client.stats().unwrap();
            client.shutdown().unwrap();
            (wire_stats, handle.join().unwrap())
        });
        assert_eq!(wire_stats.proto, drained.proto);
        assert_eq!(wire_stats.connections, drained.connections);
        assert_eq!(wire_stats.queries, drained.queries);
        assert_eq!(wire_stats.sheds, drained.sheds);
        assert_eq!(wire_stats.errors, drained.errors);
        assert_eq!(wire_stats.p50_ms, drained.p50_ms);
        assert_eq!(wire_stats.p90_ms, drained.p90_ms);
        assert_eq!(wire_stats.p99_ms, drained.p99_ms);
        assert_eq!(wire_stats.queue_p50_ms, drained.queue_p50_ms);
        assert_eq!(wire_stats.queue_p99_ms, drained.queue_p99_ms);
        assert_eq!(wire_stats.cache, drained.cache);
        // The shutdown round-trip adds exactly its own frame.
        assert_eq!(wire_stats.frames + 1, drained.frames);
    }

    #[test]
    fn traced_queries_share_one_trace_id_across_client_and_server_lines() {
        let server_sink = SharedBuf::default();
        let server = CepsServer::new(test_service(), ServerConfig::default())
            .with_tracer(RequestTracer::new(Box::new(server_sink.clone()), 1.0));
        let client_sink = SharedBuf::default();
        let (mut transport, connector) = in_proc();
        std::thread::scope(|s| {
            let server = &server;
            s.spawn(move || server.serve(&mut transport).unwrap());
            let mut client = CepsClient::from_conn(Box::new(connector.connect().unwrap()))
                .with_trace_sink(Box::new(client_sink.clone()));
            client
                .request(&ServeRequest::new(vec![NodeId(0), NodeId(5)]))
                .unwrap();
            assert_eq!(client.traces_written(), 1);
            client.shutdown().unwrap();
        });
        assert_eq!(server.tracer().unwrap().written(), 1);

        let extract_id = |line: &str| -> String {
            let (_, rest) = line.split_once("\"trace_id\": \"").expect("trace_id field");
            rest[..16].to_string()
        };
        let client_line = client_sink.text();
        let server_line = server_sink.text();
        assert!(client_line.contains("\"side\": \"client\""));
        assert!(server_line.contains("\"schema\": \"ceps-trace/v1\""));
        assert_eq!(
            extract_id(&client_line),
            extract_id(&server_line),
            "server must adopt the client's context"
        );
    }

    #[test]
    fn dump_flight_returns_the_ring_over_the_wire() {
        ceps_obs::flight_enable(64);
        let mut config = ServerConfig::default();
        config.max_in_flight = 1;
        let server = CepsServer::new(test_service(), config);
        let (mut transport, connector) = in_proc();
        std::thread::scope(|s| {
            let server = &server;
            s.spawn(move || server.serve(&mut transport).unwrap());
            let mut client =
                CepsClient::from_conn(Box::new(connector.connect().unwrap())).with_tracing();

            // Saturate admission so the shed lands in the ring.
            let permit = server.admission().try_acquire().unwrap();
            let err = client
                .request(&ServeRequest::new(vec![NodeId(0)]))
                .unwrap_err();
            assert!(matches!(err, crate::NetError::Remote(_)));
            drop(permit);

            let dump = client.dump_flight().unwrap();
            assert!(dump.contains("\"schema\": \"ceps-flight/v1\""));
            assert!(
                dump.contains("\"kind\": \"shed\""),
                "shed event recorded: {dump}"
            );
            client.shutdown().unwrap();
        });
        ceps_obs::flight_disable();
    }

    #[test]
    fn request_stop_drains_without_a_wire_frame() {
        let server = CepsServer::new(test_service(), ServerConfig::default());
        let (mut transport, _connector) = in_proc();
        std::thread::scope(|s| {
            let server = &server;
            let handle = s.spawn(move || server.serve(&mut transport).unwrap());
            std::thread::sleep(Duration::from_millis(50));
            server.request_stop();
            let stats = handle.join().unwrap();
            assert_eq!(stats.connections, 0);
        });
    }
}
