//! Transport seam: where frames travel.
//!
//! [`CepsServer`](crate::CepsServer) speaks to the world through the
//! [`Transport`] trait (an accept loop yielding boxed [`Conn`]s), so the
//! same server code runs over three media:
//!
//! * [`in_proc`] — a duplex in-memory pipe pair. Tests drive the whole
//!   server, admission control included, without touching a socket.
//! * [`UnixTransport`] — Unix domain sockets (the CI smoke path).
//! * [`TcpTransport`] — TCP, for cross-host serving.
//!
//! [`ListenAddr`] parses the CLI's `--listen` strings (`tcp://host:port`,
//! `unix:///path`, plus bare `host:port` / path heuristics) and can bind
//! a server transport or connect a client [`Conn`] from the same value.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A bidirectional byte stream a [`Framed`](crate::Framed) codec can run
/// over. Implementations must honor read timeouts so the server can poll
/// for shutdown between frames.
pub trait Conn: Read + Write + Send {
    /// Sets (or clears) the read deadline for subsequent reads. A read
    /// that passes the deadline fails with `WouldBlock` or `TimedOut`.
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;

    /// Sets (or clears) the write deadline for subsequent writes.
    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;

    /// A human-readable peer label for logs and stats.
    fn peer(&self) -> String;
}

impl Conn for TcpStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }

    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, timeout)
    }

    fn peer(&self) -> String {
        self.peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "tcp:?".into())
    }
}

impl Conn for UnixStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        UnixStream::set_read_timeout(self, timeout)
    }

    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        UnixStream::set_write_timeout(self, timeout)
    }

    fn peer(&self) -> String {
        "unix".into()
    }
}

/// A listener the server accept loop drives. `accept_timeout` must
/// return within roughly the given duration even when no client arrives,
/// so the loop can observe shutdown.
pub trait Transport: Send {
    /// Waits up to `timeout` for one inbound connection; `Ok(None)` when
    /// none arrived in time.
    ///
    /// # Errors
    /// Fatal listener errors (the accept loop stops on them).
    fn accept_timeout(&mut self, timeout: Duration) -> io::Result<Option<Box<dyn Conn>>>;

    /// A human-readable bound-address label.
    fn addr(&self) -> String;
}

/// Granularity of the poll-sleep accept loops below.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

fn poll_accept<T, F>(timeout: Duration, mut try_accept: F) -> io::Result<Option<T>>
where
    F: FnMut() -> io::Result<Option<T>>,
{
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(conn) = try_accept()? {
            return Ok(Some(conn));
        }
        let now = Instant::now();
        if now >= deadline {
            return Ok(None);
        }
        std::thread::sleep(ACCEPT_POLL.min(deadline - now));
    }
}

/// TCP listener transport.
pub struct TcpTransport {
    listener: TcpListener,
    addr: String,
}

impl TcpTransport {
    /// Binds a nonblocking TCP listener on `addr` (e.g. `127.0.0.1:0`).
    ///
    /// # Errors
    /// Bind failures.
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener
            .local_addr()
            .map(|a| format!("tcp://{a}"))
            .unwrap_or_else(|_| format!("tcp://{addr}"));
        Ok(TcpTransport { listener, addr })
    }

    /// The actual bound address (`tcp://ip:port`, port resolved when the
    /// bind used port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }
}

impl Transport for TcpTransport {
    fn accept_timeout(&mut self, timeout: Duration) -> io::Result<Option<Box<dyn Conn>>> {
        poll_accept(timeout, || match self.listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                Ok(Some(Box::new(stream) as Box<dyn Conn>))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        })
    }

    fn addr(&self) -> String {
        self.addr.clone()
    }
}

/// Unix-domain-socket listener transport. Removes a stale socket file on
/// bind and cleans its socket up on drop.
pub struct UnixTransport {
    listener: UnixListener,
    path: PathBuf,
}

impl UnixTransport {
    /// Binds a nonblocking Unix listener at `path`, replacing a stale
    /// socket file left by a dead server.
    ///
    /// # Errors
    /// Bind failures (including `path` existing as a non-socket file).
    pub fn bind(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        match UnixListener::bind(&path) {
            Ok(listener) => {
                listener.set_nonblocking(true)?;
                Ok(UnixTransport { listener, path })
            }
            Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                // Stale socket from a previous run: a live server would
                // accept a probe connection.
                if UnixStream::connect(&path).is_err() {
                    std::fs::remove_file(&path)?;
                    let listener = UnixListener::bind(&path)?;
                    listener.set_nonblocking(true)?;
                    Ok(UnixTransport { listener, path })
                } else {
                    Err(e)
                }
            }
            Err(e) => Err(e),
        }
    }

    /// The socket path this transport is bound to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Transport for UnixTransport {
    fn accept_timeout(&mut self, timeout: Duration) -> io::Result<Option<Box<dyn Conn>>> {
        poll_accept(timeout, || match self.listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                Ok(Some(Box::new(stream) as Box<dyn Conn>))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        })
    }

    fn addr(&self) -> String {
        format!("unix://{}", self.path.display())
    }
}

impl Drop for UnixTransport {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

// ---------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------

/// One direction of the in-process duplex pipe.
#[derive(Debug, Default)]
struct PipeState {
    data: VecDeque<u8>,
    closed: bool,
}

#[derive(Debug, Default)]
struct Pipe {
    state: Mutex<PipeState>,
    cond: Condvar,
}

impl Pipe {
    fn write(&self, buf: &[u8]) -> io::Result<usize> {
        let mut state = self.state.lock().expect("pipe poisoned");
        if state.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "in-proc peer closed",
            ));
        }
        state.data.extend(buf.iter().copied());
        self.cond.notify_all();
        Ok(buf.len())
    }

    fn read(&self, buf: &mut [u8], timeout: Option<Duration>) -> io::Result<usize> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut state = self.state.lock().expect("pipe poisoned");
        loop {
            if !state.data.is_empty() {
                let n = buf.len().min(state.data.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = state.data.pop_front().expect("len checked");
                }
                return Ok(n);
            }
            if state.closed {
                return Ok(0);
            }
            state = match deadline {
                None => self.cond.wait(state).expect("pipe poisoned"),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::WouldBlock,
                            "in-proc read timed out",
                        ));
                    }
                    self.cond
                        .wait_timeout(state, deadline - now)
                        .expect("pipe poisoned")
                        .0
                }
            };
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().expect("pipe poisoned");
        state.closed = true;
        self.cond.notify_all();
    }
}

/// One endpoint of an in-process duplex connection.
#[derive(Debug)]
pub struct InProcConn {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
    read_timeout: Mutex<Option<Duration>>,
    label: &'static str,
}

impl InProcConn {
    fn pair() -> (InProcConn, InProcConn) {
        let a = Arc::new(Pipe::default());
        let b = Arc::new(Pipe::default());
        (
            InProcConn {
                rx: Arc::clone(&a),
                tx: Arc::clone(&b),
                read_timeout: Mutex::new(None),
                label: "in-proc:client",
            },
            InProcConn {
                rx: b,
                tx: a,
                read_timeout: Mutex::new(None),
                label: "in-proc:server",
            },
        )
    }
}

impl Read for InProcConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let timeout = *self.read_timeout.lock().expect("timeout poisoned");
        self.rx.read(buf, timeout)
    }
}

impl Write for InProcConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Conn for InProcConn {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        *self.read_timeout.lock().expect("timeout poisoned") = timeout;
        Ok(())
    }

    fn set_write_timeout(&self, _timeout: Option<Duration>) -> io::Result<()> {
        Ok(()) // in-proc writes never block
    }

    fn peer(&self) -> String {
        self.label.into()
    }
}

impl Drop for InProcConn {
    fn drop(&mut self) {
        self.rx.close();
        self.tx.close();
    }
}

/// The server side of [`in_proc`]: yields connections the paired
/// [`InProcConnector`] dials.
pub struct InProcTransport {
    incoming: Receiver<InProcConn>,
}

impl Transport for InProcTransport {
    fn accept_timeout(&mut self, timeout: Duration) -> io::Result<Option<Box<dyn Conn>>> {
        poll_accept(timeout, || match self.incoming.try_recv() {
            Ok(conn) => Ok(Some(Box::new(conn) as Box<dyn Conn>)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "all in-proc connectors dropped",
            )),
        })
    }

    fn addr(&self) -> String {
        "in-proc".into()
    }
}

/// The client side of [`in_proc`]: dials new connections into the paired
/// [`InProcTransport`]. Cloneable; the transport's accept loop errors out
/// once every connector clone is gone.
#[derive(Clone)]
pub struct InProcConnector {
    dial: Sender<InProcConn>,
}

impl InProcConnector {
    /// Opens a new duplex connection to the paired transport.
    ///
    /// # Errors
    /// `BrokenPipe` when the transport (server side) is gone.
    pub fn connect(&self) -> io::Result<InProcConn> {
        let (client, server) = InProcConn::pair();
        self.dial
            .send(server)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "in-proc transport dropped"))?;
        Ok(client)
    }
}

/// Creates a paired in-process listener and dialer — the test-and-doc
/// transport that exercises the full server without a socket.
pub fn in_proc() -> (InProcTransport, InProcConnector) {
    let (dial, incoming) = mpsc::channel();
    (InProcTransport { incoming }, InProcConnector { dial })
}

// ---------------------------------------------------------------------
// Address parsing
// ---------------------------------------------------------------------

/// A parsed `--listen` / `--connect` address, usable from both ends:
/// [`ListenAddr::bind`] for servers, [`ListenAddr::connect`] for clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// `tcp://host:port` (or bare `host:port`).
    Tcp(String),
    /// `unix:///path/to.sock` (or a bare filesystem path).
    Unix(PathBuf),
}

impl ListenAddr {
    /// Parses an address string. Explicit `tcp://` / `unix://` prefixes
    /// win; otherwise a trailing `:<port>` means TCP and anything else is
    /// a Unix socket path.
    pub fn parse(s: &str) -> ListenAddr {
        if let Some(rest) = s.strip_prefix("tcp://") {
            return ListenAddr::Tcp(rest.to_string());
        }
        if let Some(rest) = s.strip_prefix("unix://") {
            return ListenAddr::Unix(PathBuf::from(rest));
        }
        match s.rsplit_once(':') {
            Some((host, port)) if !host.is_empty() && port.parse::<u16>().is_ok() => {
                ListenAddr::Tcp(s.to_string())
            }
            _ => ListenAddr::Unix(PathBuf::from(s)),
        }
    }

    /// Binds a server transport at this address.
    ///
    /// # Errors
    /// Bind failures.
    pub fn bind(&self) -> io::Result<Box<dyn Transport>> {
        match self {
            ListenAddr::Tcp(addr) => Ok(Box::new(TcpTransport::bind(addr)?)),
            ListenAddr::Unix(path) => Ok(Box::new(UnixTransport::bind(path)?)),
        }
    }

    /// Connects a client stream to this address.
    ///
    /// # Errors
    /// Connect failures.
    pub fn connect(&self) -> io::Result<Box<dyn Conn>> {
        match self {
            ListenAddr::Tcp(addr) => Ok(Box::new(TcpStream::connect(addr)?)),
            ListenAddr::Unix(path) => Ok(Box::new(UnixStream::connect(path)?)),
        }
    }
}

impl std::fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListenAddr::Tcp(addr) => write!(f, "tcp://{addr}"),
            ListenAddr::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_addr_parsing_heuristics() {
        assert_eq!(
            ListenAddr::parse("tcp://0.0.0.0:7070"),
            ListenAddr::Tcp("0.0.0.0:7070".into())
        );
        assert_eq!(
            ListenAddr::parse("unix:///tmp/ceps.sock"),
            ListenAddr::Unix(PathBuf::from("/tmp/ceps.sock"))
        );
        assert_eq!(
            ListenAddr::parse("127.0.0.1:9000"),
            ListenAddr::Tcp("127.0.0.1:9000".into())
        );
        assert_eq!(
            ListenAddr::parse("/run/ceps.sock"),
            ListenAddr::Unix(PathBuf::from("/run/ceps.sock"))
        );
        // Port out of u16 range → not a TCP address.
        assert_eq!(
            ListenAddr::parse("weird:99999"),
            ListenAddr::Unix(PathBuf::from("weird:99999"))
        );
    }

    #[test]
    fn in_proc_pipe_moves_bytes_and_times_out() {
        let (client, mut server) = InProcConn::pair();
        let mut client = client;
        client.write_all(b"hello").unwrap();
        let mut buf = [0u8; 8];
        let n = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");

        Conn::set_read_timeout(&server, Some(Duration::from_millis(20))).unwrap();
        let err = server.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);

        drop(client);
        // Peer gone: reads drain to EOF.
        assert_eq!(server.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn in_proc_accept_sees_dialed_connections() {
        let (mut transport, connector) = in_proc();
        assert!(transport
            .accept_timeout(Duration::from_millis(10))
            .unwrap()
            .is_none());
        let mut client = connector.connect().unwrap();
        let mut server = transport
            .accept_timeout(Duration::from_millis(200))
            .unwrap()
            .expect("dialed connection arrives");
        client.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn tcp_transport_accepts_and_reports_addr() {
        let mut transport = TcpTransport::bind("127.0.0.1:0").unwrap();
        let addr = transport.local_addr().unwrap();
        assert!(transport.addr().starts_with("tcp://127.0.0.1:"));
        let mut client = TcpStream::connect(addr).unwrap();
        let mut server = transport
            .accept_timeout(Duration::from_millis(500))
            .unwrap()
            .expect("connection accepted");
        client.write_all(b"hi").unwrap();
        let mut buf = [0u8; 2];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
    }

    #[test]
    fn unix_transport_replaces_stale_socket_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("ceps-net-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale.sock");
        {
            let t = UnixTransport::bind(&path).unwrap();
            assert!(path.exists());
            drop(t);
        }
        assert!(!path.exists(), "socket removed on drop");

        // Simulate a crashed server: socket file exists, nobody listens.
        {
            let _t = UnixTransport::bind(&path).unwrap();
            // Leak the file by pre-creating it again after drop below.
        }
        std::os::unix::net::UnixListener::bind(&path).map(drop).ok();
        let mut t = UnixTransport::bind(&path).expect("stale socket replaced");
        let mut client = UnixStream::connect(&path).unwrap();
        let mut server = t
            .accept_timeout(Duration::from_millis(500))
            .unwrap()
            .expect("connection accepted");
        client.write_all(b"ok").unwrap();
        let mut buf = [0u8; 2];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ok");
        drop(t);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
