//! The `ceps-wire/v1` protocol: frame grammar and the request/reply
//! vocabulary.
//!
//! ## Frame grammar
//!
//! Every frame — in both directions — is *length-prefixed JSONL*:
//!
//! ```text
//! frame   := header payload "\n"
//! header  := 1*10DIGIT "\n"          ; decimal byte length of payload
//! payload := <one single-line JSON object, exactly `header` bytes>
//! ```
//!
//! The header lets a receiver enforce its maximum frame size *before*
//! buffering or parsing the payload; the trailing newline keeps the
//! stream greppable and makes desynchronization detectable. Payloads are
//! the externally-tagged [`Request`] / [`Reply`] enums, e.g.:
//!
//! ```text
//! 39
//! {"Query":{"id":7,"req":{"queries":[0,4]}}}
//! ```
//!
//! ## Trace propagation
//!
//! `Query` frames may carry an optional [`WireTrace`] — the client's
//! [`TraceContext`](ceps_obs::TraceContext) with ids rendered as 16-char
//! hex strings (frame JSON numbers are f64; a raw `u64` id would lose
//! precision past 2^53). A server adopts the inbound context for the
//! duration of the request, so server spans, histogram exemplars, and
//! `ceps-trace/v1` lines share the client's `trace_id`. The field is
//! `#[serde(default)]`: v1 peers that omit it interoperate unchanged.
//!
//! ## Error taxonomy
//!
//! Server-side failures travel as structured [`Reply::Error`] frames
//! carrying a [`WireError`] (`kind` + human message). The kinds:
//!
//! | kind           | meaning                                              |
//! |----------------|------------------------------------------------------|
//! | `BadRequest`   | the query failed validation (unknown node, dup, …)   |
//! | `TooLarge`     | the frame announced a payload past the server's cap  |
//! | `Overloaded`   | admission control shed the request (in-flight cap)   |
//! | `ShuttingDown` | the server is draining; retry against another server |
//! | `Malformed`    | the byte stream violated the frame grammar           |
//! | `Internal`     | anything else; the message has details               |
//!
//! `Malformed` and `TooLarge` leave the stream unsynchronizable, so the
//! server closes the connection after sending them (with request id 0 —
//! the id of a frame that never decoded is unknowable).

use std::io::{self, Read, Write};

use ceps_core::{ServeReply, ServeRequest};
use ceps_graph::NodeId;

use crate::error::NetError;
use crate::server::ServerStats;

/// Protocol identifier, reported by `Pong` and `Stats` replies.
pub const WIRE_VERSION: &str = "ceps-wire/v1";

/// Default maximum payload size (1 MiB) — generous for replies on
/// paper-scale graphs, small enough to bound per-connection memory.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// Most digits a frame header may carry (10 digits ≤ 9.9 GB covers any
/// sane cap; longer headers are malformed, not merely large).
const MAX_HEADER_DIGITS: usize = 10;

/// Read chunk size when filling the frame buffer.
const READ_CHUNK: usize = 64 << 10;

/// A [`TraceContext`](ceps_obs::TraceContext) in wire form: ids travel
/// as 16-char lowercase hex strings so they survive the f64 JSON number
/// representation intact.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WireTrace {
    /// Hex-encoded `trace_id` shared by every hop of the request.
    #[serde(default)]
    pub trace_id: String,
    /// Hex-encoded span id of the sender (`""`/`"0"` at the root).
    #[serde(default)]
    pub parent_span: String,
    /// Whether downstream stages should emit detailed telemetry.
    #[serde(default)]
    pub sampled: bool,
}

impl WireTrace {
    /// Wire form of an in-process context.
    pub fn from_context(ctx: &ceps_obs::TraceContext) -> Self {
        WireTrace {
            trace_id: ceps_obs::id_hex(ctx.trace_id),
            parent_span: ceps_obs::id_hex(ctx.parent_span),
            sampled: ctx.sampled,
        }
    }

    /// Parses back into an in-process context; `None` when `trace_id` is
    /// absent, unparsable, or zero (0 is reserved for "no trace").
    pub fn to_context(&self) -> Option<ceps_obs::TraceContext> {
        let trace_id = ceps_obs::parse_id_hex(&self.trace_id).filter(|&id| id != 0)?;
        Some(ceps_obs::TraceContext {
            trace_id,
            parent_span: ceps_obs::parse_id_hex(&self.parent_span).unwrap_or(0),
            sampled: self.sampled,
        })
    }
}

/// Client → server frames.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Request {
    /// Run the CePS pipeline for one query set.
    Query {
        /// Client-chosen request id, echoed by the reply.
        id: u64,
        /// The shared in-process/wire request payload.
        req: ServeRequest,
        /// The caller's trace context, if it is propagating one.
        #[serde(default)]
        trace: Option<WireTrace>,
    },
    /// Infer the `K_softAND` coefficient for a query set.
    AutoK {
        /// Request id.
        id: u64,
        /// The query nodes.
        queries: Vec<NodeId>,
    },
    /// Liveness/version probe.
    Ping {
        /// Request id.
        id: u64,
    },
    /// Server counters snapshot.
    Stats {
        /// Request id.
        id: u64,
    },
    /// Ask the server to drain and exit its accept loop.
    Shutdown {
        /// Request id.
        id: u64,
    },
    /// Dump the server's flight-recorder ring as `ceps-flight/v1` JSONL
    /// (empty when the recorder is disabled).
    DumpFlight {
        /// Request id.
        id: u64,
    },
}

impl Request {
    /// The request id carried by any frame kind.
    pub fn id(&self) -> u64 {
        match *self {
            Request::Query { id, .. }
            | Request::AutoK { id, .. }
            | Request::Ping { id }
            | Request::Stats { id }
            | Request::Shutdown { id }
            | Request::DumpFlight { id } => id,
        }
    }
}

/// Server → client frames. Every reply echoes the request id it answers
/// (`Error` frames answering an undecodable frame use id 0).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Reply {
    /// The answer to a `Query` frame.
    Scores {
        /// Echoed request id.
        id: u64,
        /// The shared in-process/wire reply payload.
        reply: ServeReply,
    },
    /// The answer to an `AutoK` frame.
    AutoK {
        /// Echoed request id.
        id: u64,
        /// The inferred coefficient.
        k: usize,
        /// Mean held-out retrieval rank per candidate `k'`.
        mean_ranks: Vec<f64>,
    },
    /// The answer to a `Ping` frame.
    Pong {
        /// Echoed request id.
        id: u64,
        /// The protocol version ([`WIRE_VERSION`]).
        proto: String,
    },
    /// The answer to a `Stats` frame.
    Stats {
        /// Echoed request id.
        id: u64,
        /// Counter snapshot.
        stats: ServerStats,
    },
    /// Acknowledges a `Shutdown` frame; the connection closes after it.
    Bye {
        /// Echoed request id.
        id: u64,
    },
    /// The answer to a `DumpFlight` frame.
    Flight {
        /// Echoed request id.
        id: u64,
        /// `ceps-flight/v1` JSONL dump of the server's event ring (empty
        /// when the flight recorder is disabled).
        dump: String,
    },
    /// A structured failure reply.
    Error {
        /// Echoed request id (0 when the offending frame never decoded).
        id: u64,
        /// What went wrong.
        error: WireError,
    },
}

impl Reply {
    /// The request id this reply answers.
    pub fn id(&self) -> u64 {
        match *self {
            Reply::Scores { id, .. }
            | Reply::AutoK { id, .. }
            | Reply::Pong { id, .. }
            | Reply::Stats { id, .. }
            | Reply::Bye { id }
            | Reply::Flight { id, .. }
            | Reply::Error { id, .. } => id,
        }
    }
}

/// The error taxonomy of structured [`Reply::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WireErrorKind {
    /// The request failed validation (unknown node, duplicate query, …).
    BadRequest,
    /// The frame announced a payload past the receiver's size cap.
    TooLarge,
    /// Admission control shed the request (in-flight cap reached).
    Overloaded,
    /// The server is draining after a `Shutdown` frame.
    ShuttingDown,
    /// The byte stream violated the frame grammar.
    Malformed,
    /// Any other server-side failure.
    Internal,
}

/// A structured error reply payload.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WireError {
    /// Machine-readable category.
    pub kind: WireErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Builds an error payload.
    pub fn new(kind: WireErrorKind, message: impl Into<String>) -> Self {
        WireError {
            kind,
            message: message.into(),
        }
    }
}

/// Encodes one value as a complete frame (header + payload + newline).
pub fn encode_frame<T: serde::Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let json = serde_json::to_string(value).expect("frame serialization is infallible");
    let mut out = Vec::with_capacity(json.len() + 16);
    out.extend_from_slice(json.len().to_string().as_bytes());
    out.push(b'\n');
    out.extend_from_slice(json.as_bytes());
    out.push(b'\n');
    out
}

/// Incremental frame decoder: feed arbitrary byte chunks in, take whole
/// payloads out. Tolerates frames split at any byte boundary.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    max_frame: usize,
}

impl FrameBuffer {
    /// An empty buffer enforcing `max_frame` payload bytes.
    pub fn new(max_frame: usize) -> Self {
        FrameBuffer {
            buf: Vec::new(),
            max_frame,
        }
    }

    /// Appends raw bytes received from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete payload, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    /// [`NetError::TooLarge`] when the header announces a payload past the
    /// cap; [`NetError::Malformed`] on any grammar violation. Both leave
    /// the stream beyond recovery — the caller should close it.
    pub fn next_frame(&mut self) -> Result<Option<String>, NetError> {
        let Some(nl) = self
            .buf
            .iter()
            .take(MAX_HEADER_DIGITS + 1)
            .position(|&b| b == b'\n')
        else {
            if self.buf.len() > MAX_HEADER_DIGITS {
                return Err(NetError::Malformed(format!(
                    "frame header exceeds {MAX_HEADER_DIGITS} digits"
                )));
            }
            return Ok(None);
        };
        let header = &self.buf[..nl];
        if header.is_empty() || !header.iter().all(u8::is_ascii_digit) {
            return Err(NetError::Malformed(format!(
                "frame header {:?} is not a decimal length",
                String::from_utf8_lossy(header)
            )));
        }
        let len: usize = std::str::from_utf8(header)
            .expect("ascii digits")
            .parse()
            .map_err(|_| NetError::Malformed("frame header overflows usize".into()))?;
        if len > self.max_frame {
            return Err(NetError::TooLarge {
                len,
                max: self.max_frame,
            });
        }
        // header + '\n' + payload + '\n'
        let total = nl + 1 + len + 1;
        if self.buf.len() < total {
            return Ok(None);
        }
        if self.buf[total - 1] != b'\n' {
            return Err(NetError::Malformed(
                "payload not terminated by a newline at the announced length".into(),
            ));
        }
        let payload = String::from_utf8(self.buf[nl + 1..total - 1].to_vec())
            .map_err(|e| NetError::Malformed(format!("payload is not UTF-8: {e}")))?;
        self.buf.drain(..total);
        Ok(Some(payload))
    }
}

/// A framed connection: a [`Read`]`+`[`Write`] stream plus an incremental
/// [`FrameBuffer`], giving typed `send`/`recv` over any transport.
#[derive(Debug)]
pub struct Framed<C> {
    conn: C,
    buf: FrameBuffer,
}

impl<C: Read + Write> Framed<C> {
    /// Wraps a connection, enforcing `max_frame` payload bytes on reads.
    pub fn new(conn: C, max_frame: usize) -> Self {
        Framed {
            conn,
            buf: FrameBuffer::new(max_frame),
        }
    }

    /// The wrapped connection.
    pub fn conn(&self) -> &C {
        &self.conn
    }

    /// Mutable access to the wrapped connection (timeout tuning).
    pub fn conn_mut(&mut self) -> &mut C {
        &mut self.conn
    }

    /// Serializes and writes one frame, flushing the stream.
    ///
    /// # Errors
    /// Transport write errors.
    pub fn send<T: serde::Serialize + ?Sized>(&mut self, value: &T) -> io::Result<()> {
        self.conn.write_all(&encode_frame(value))?;
        self.conn.flush()
    }

    /// Reads the next frame and deserializes it; `Ok(None)` on a clean
    /// end-of-stream at a frame boundary.
    ///
    /// # Errors
    /// [`NetError::Io`] on transport errors (including read timeouts —
    /// check [`NetError::is_timeout`]; buffered partial frames survive a
    /// timeout, so the caller can simply retry), [`NetError::TooLarge`] /
    /// [`NetError::Malformed`] on grammar violations,
    /// [`NetError::Protocol`] when the stream ends mid-frame or the JSON
    /// does not match `T`.
    pub fn recv<T: serde::Deserialize>(&mut self) -> Result<Option<T>, NetError> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if let Some(payload) = self.buf.next_frame()? {
                let value = serde_json::from_str(&payload).map_err(|e| {
                    NetError::Malformed(format!("payload does not parse: {e} in {payload:?}"))
                })?;
                return Ok(Some(value));
            }
            match self.conn.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.pending() == 0 {
                        Ok(None)
                    } else {
                        Err(NetError::Protocol(format!(
                            "stream ended inside a frame ({} bytes pending)",
                            self.buf.pending()
                        )))
                    };
                }
                Ok(n) => self.buf.extend(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(json: &str) -> Vec<u8> {
        let mut out = json.len().to_string().into_bytes();
        out.push(b'\n');
        out.extend_from_slice(json.as_bytes());
        out.push(b'\n');
        out
    }

    #[test]
    fn request_and_reply_round_trip_every_variant() {
        let reqs = vec![
            Request::Query {
                id: 7,
                req: ServeRequest::new(vec![NodeId(0), NodeId(4)]),
                trace: None,
            },
            Request::Query {
                id: 12,
                req: ServeRequest::new(vec![NodeId(2)]),
                trace: Some(WireTrace {
                    trace_id: "00f1e2d3c4b5a697".into(),
                    parent_span: "0000000000000001".into(),
                    sampled: true,
                }),
            },
            Request::AutoK {
                id: 8,
                queries: vec![NodeId(1)],
            },
            Request::Ping { id: 9 },
            Request::Stats { id: 10 },
            Request::Shutdown { id: 11 },
            Request::DumpFlight { id: 13 },
        ];
        for req in reqs {
            let json = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(req, back);
            assert_eq!(req.id(), back.id());
        }

        let replies = vec![
            Reply::Pong {
                id: 1,
                proto: WIRE_VERSION.into(),
            },
            Reply::Bye { id: 2 },
            Reply::AutoK {
                id: 3,
                k: 2,
                mean_ranks: vec![1.5, 2.25],
            },
            Reply::Error {
                id: 4,
                error: WireError::new(WireErrorKind::Overloaded, "cap 4 reached"),
            },
            Reply::Flight {
                id: 5,
                dump: "{\"schema\": \"ceps-flight/v1\"}\n".into(),
            },
        ];
        for reply in replies {
            let json = serde_json::to_string(&reply).unwrap();
            let back: Reply = serde_json::from_str(&json).unwrap();
            assert_eq!(reply, back);
        }
    }

    #[test]
    fn legacy_query_frames_without_trace_still_decode() {
        // A v1 peer that predates the trace field omits it entirely.
        let json = r#"{"Query":{"id":7,"req":{"queries":[0,4]}}}"#;
        let back: Request = serde_json::from_str(json).unwrap();
        match back {
            Request::Query { id, ref trace, .. } => {
                assert_eq!(id, 7);
                assert_eq!(*trace, None);
            }
            other => panic!("expected Query, got {other:?}"),
        }
    }

    #[test]
    fn wire_trace_round_trips_and_rejects_garbage() {
        let ctx = ceps_obs::TraceContext {
            trace_id: 0xdead_beef_0000_0001,
            parent_span: 0x42,
            sampled: true,
        };
        let wire = WireTrace::from_context(&ctx);
        assert_eq!(wire.trace_id.len(), 16);
        assert_eq!(wire.to_context(), Some(ctx));

        for bad in ["", "zzzz", "00000000000000000"] {
            let w = WireTrace {
                trace_id: bad.into(),
                parent_span: String::new(),
                sampled: false,
            };
            assert_eq!(w.to_context(), None, "{bad:?} must not parse");
        }
        // A zero id means "no trace", not a trace with id 0.
        let zero = WireTrace {
            trace_id: "0000000000000000".into(),
            parent_span: String::new(),
            sampled: true,
        };
        assert_eq!(zero.to_context(), None);
    }

    #[test]
    fn encode_frame_matches_grammar() {
        let req = Request::Ping { id: 3 };
        let bytes = encode_frame(&req);
        let text = String::from_utf8(bytes.clone()).unwrap();
        let (header, rest) = text.split_once('\n').unwrap();
        let payload = rest.strip_suffix('\n').unwrap();
        assert_eq!(header.parse::<usize>().unwrap(), payload.len());
        assert_eq!(payload, serde_json::to_string(&req).unwrap());
        assert!(!payload.contains('\n'), "payload is single-line JSON");
    }

    #[test]
    fn frame_buffer_reassembles_byte_by_byte() {
        let json = r#"{"Ping":{"id":42}}"#;
        let bytes = frame_bytes(json);
        let mut buf = FrameBuffer::new(1024);
        for (i, b) in bytes.iter().enumerate() {
            assert_eq!(buf.next_frame().unwrap(), None, "incomplete at byte {i}");
            buf.extend(std::slice::from_ref(b));
        }
        assert_eq!(buf.next_frame().unwrap().as_deref(), Some(json));
        assert_eq!(buf.next_frame().unwrap(), None);
        assert_eq!(buf.pending(), 0);
    }

    #[test]
    fn frame_buffer_handles_back_to_back_frames() {
        let mut bytes = frame_bytes(r#"{"Ping":{"id":1}}"#);
        bytes.extend_from_slice(&frame_bytes(r#"{"Stats":{"id":2}}"#));
        let mut buf = FrameBuffer::new(1024);
        buf.extend(&bytes);
        assert!(buf.next_frame().unwrap().unwrap().contains("Ping"));
        assert!(buf.next_frame().unwrap().unwrap().contains("Stats"));
        assert_eq!(buf.next_frame().unwrap(), None);
    }

    #[test]
    fn oversized_and_malformed_headers_are_rejected() {
        let mut buf = FrameBuffer::new(16);
        buf.extend(&frame_bytes(&"x".repeat(64)));
        assert!(matches!(
            buf.next_frame(),
            Err(NetError::TooLarge { len: 64, max: 16 })
        ));

        let mut buf = FrameBuffer::new(16);
        buf.extend(b"abc\n{}\n");
        assert!(matches!(buf.next_frame(), Err(NetError::Malformed(_))));

        // A stream that never produces a newline within the header budget.
        let mut buf = FrameBuffer::new(16);
        buf.extend(b"123456789012345");
        assert!(matches!(buf.next_frame(), Err(NetError::Malformed(_))));

        // Payload shorter than announced (newline lands elsewhere).
        let mut buf = FrameBuffer::new(64);
        buf.extend(b"10\n{}\nextra....");
        assert!(matches!(buf.next_frame(), Err(NetError::Malformed(_))));
    }
}
