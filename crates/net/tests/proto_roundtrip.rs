//! Property tests for the `ceps-wire/v1` codec and transport seam:
//! arbitrary request/reply payloads must survive framing across arbitrary
//! chunk boundaries, oversized frames must be rejected from the header,
//! and pipelined (interleaved-id) conversations must stay matched.

use std::io::{self, Read, Write};

use ceps_core::{CepsConfig, CepsServiceBuilder, ReplyMember, ReplyPath, ServeReply, ServeRequest};
use ceps_graph::{GraphBuilder, NodeId};
use ceps_net::{
    in_proc, CepsServer, Framed, NetError, Reply, Request, ServerConfig, WireErrorKind, WireTrace,
};
use proptest::collection::vec;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

fn arb_request() -> impl Strategy<Value = Request> {
    (0u64..1_000_000, vec(0u32..10_000, 1..8), 0u32..5).prop_map(|(id, nodes, kind)| {
        let queries: Vec<NodeId> = nodes.into_iter().map(NodeId).collect();
        match kind {
            0 => Request::Query {
                id,
                req: ServeRequest::new(queries),
                // Traced and untraced frames must both round-trip; derive
                // the optional context deterministically from the id.
                trace: (id % 2 == 0).then(|| WireTrace {
                    trace_id: format!("{:016x}", id | 1),
                    parent_span: format!("{:016x}", id ^ 0xabcd),
                    sampled: id % 4 == 0,
                }),
            },
            1 => Request::AutoK { id, queries },
            2 => Request::Ping { id },
            3 => Request::Stats { id },
            _ => Request::Shutdown { id },
        }
    })
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    (
        0u64..1_000_000,
        1usize..6,
        vec((0u32..10_000, -1.0..1.0f64, 0u32..2), 0..10),
        vec((0usize..4, vec(0u32..10_000, 0..5)), 0..4),
    )
        .prop_map(|(id, k, members, paths)| Reply::Scores {
            id,
            reply: ServeReply {
                k,
                members: members
                    .into_iter()
                    .map(|(n, score, is_q)| ReplyMember {
                        id: NodeId(n),
                        score,
                        is_query: is_q == 1,
                    })
                    .collect(),
                paths: paths
                    .into_iter()
                    .map(|(source_index, nodes)| ReplyPath {
                        source_index,
                        nodes: nodes.into_iter().map(NodeId).collect(),
                    })
                    .collect(),
            },
        })
}

// ---------------------------------------------------------------------
// A Read/Write pair that dribbles bytes out in scripted chunk sizes, so
// the decoder sees every possible frame split.
// ---------------------------------------------------------------------

struct ChunkedStream {
    bytes: Vec<u8>,
    pos: usize,
    chunks: Vec<usize>,
    turn: usize,
}

impl ChunkedStream {
    fn new(bytes: Vec<u8>, chunks: Vec<usize>) -> Self {
        ChunkedStream {
            bytes,
            pos: 0,
            chunks,
            turn: 0,
        }
    }
}

impl Read for ChunkedStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.bytes.len() {
            return Ok(0);
        }
        let step = self.chunks[self.turn % self.chunks.len()].max(1);
        self.turn += 1;
        let n = step.min(buf.len()).min(self.bytes.len() - self.pos);
        buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Write for ChunkedStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any request survives framing + arbitrary read-chunk boundaries,
    /// and re-encoding the decoded value reproduces the exact bytes.
    #[test]
    fn requests_round_trip_across_chunk_boundaries(
        req in arb_request(),
        chunks in vec(1usize..9, 1..6),
    ) {
        let bytes = ceps_net::wire::encode_frame(&req);
        let mut framed = Framed::new(ChunkedStream::new(bytes.clone(), chunks), 1 << 20);
        let back: Request = framed.recv().unwrap().expect("one full frame");
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(ceps_net::wire::encode_frame(&back), bytes);
        // Clean EOF at the frame boundary.
        prop_assert!(framed.recv::<Request>().unwrap().is_none());
    }

    /// Any reply (scores with arbitrary f64 payloads included) survives
    /// framing byte-identically.
    #[test]
    fn replies_round_trip_byte_identically(
        reply in arb_reply(),
        chunks in vec(1usize..17, 1..5),
    ) {
        let bytes = ceps_net::wire::encode_frame(&reply);
        let mut framed = Framed::new(ChunkedStream::new(bytes.clone(), chunks), 1 << 20);
        let back: Reply = framed.recv().unwrap().expect("one full frame");
        prop_assert_eq!(&back, &reply);
        prop_assert_eq!(ceps_net::wire::encode_frame(&back), bytes);
    }

    /// Back-to-back frames split at arbitrary boundaries all arrive, in
    /// order.
    #[test]
    fn frame_sequences_preserve_order(
        reqs in vec(arb_request(), 1..5),
        chunks in vec(1usize..13, 1..5),
    ) {
        let mut bytes = Vec::new();
        for r in &reqs {
            bytes.extend_from_slice(&ceps_net::wire::encode_frame(r));
        }
        let mut framed = Framed::new(ChunkedStream::new(bytes, chunks), 1 << 20);
        for r in &reqs {
            let back: Request = framed.recv().unwrap().expect("frame present");
            prop_assert_eq!(&back, r);
        }
        prop_assert!(framed.recv::<Request>().unwrap().is_none());
    }

    /// A frame whose header announces more than the cap is rejected
    /// before the payload is consumed, whatever the chunking.
    #[test]
    fn oversized_frames_rejected_from_the_header(
        req in arb_request(),
        cap in 1usize..16,
        chunks in vec(1usize..9, 1..4),
    ) {
        let bytes = ceps_net::wire::encode_frame(&req);
        prop_assume!(bytes.len() > cap + 4); // header digits + newlines
        let mut framed = Framed::new(ChunkedStream::new(bytes, chunks), cap);
        match framed.recv::<Request>() {
            Err(NetError::TooLarge { len, max }) => {
                prop_assert_eq!(max, cap);
                prop_assert!(len > cap);
            }
            other => prop_assert!(false, "expected TooLarge, got {:?}", other.is_ok()),
        }
    }
}

// ---------------------------------------------------------------------
// Live-transport properties: pipelined ids against a real server.
// ---------------------------------------------------------------------

fn tiny_service() -> ceps_core::CepsService {
    let mut b = GraphBuilder::new();
    for (x, y) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5)] {
        b.add_edge(NodeId(x), NodeId(y), 1.0).unwrap();
    }
    CepsServiceBuilder::new()
        .cache_bytes(1 << 20)
        .workers(2)
        .build_from_graph(b.build().unwrap(), CepsConfig::default().budget(3))
        .unwrap()
}

fn tiny_server() -> CepsServer {
    CepsServer::new(tiny_service(), ServerConfig::default())
}

/// Pipelining: many requests written before any reply is read come back
/// in order with matching ids, and concurrent connections don't cross
/// their streams.
#[test]
fn interleaved_request_ids_stay_matched_across_connections() {
    let server = tiny_server();
    let (mut transport, connector) = in_proc();
    std::thread::scope(|s| {
        let server = &server;
        s.spawn(move || server.serve(&mut transport).unwrap());

        let mut workers = Vec::new();
        for conn_idx in 0u64..3 {
            let connector = connector.clone();
            workers.push(s.spawn(move || {
                let conn = connector.connect().unwrap();
                let mut framed = Framed::new(conn, 1 << 20);
                // Distinct id space per connection, sent all up front.
                let ids: Vec<u64> = (0..8).map(|i| conn_idx * 1000 + i).collect();
                for &id in &ids {
                    let frame: Request = if id % 2 == 0 {
                        Request::Query {
                            id,
                            req: ServeRequest::new(vec![NodeId((id % 6) as u32)]),
                            trace: None,
                        }
                    } else {
                        Request::Ping { id }
                    };
                    framed.send(&frame).unwrap();
                }
                // Replies arrive strictly in request order, ids echoed.
                for &id in &ids {
                    let reply: Reply = framed.recv().unwrap().expect("reply per request");
                    assert_eq!(reply.id(), id, "conn {conn_idx} got crossed streams");
                    match reply {
                        Reply::Scores { .. } | Reply::Pong { .. } => {}
                        other => panic!("unexpected reply {other:?}"),
                    }
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }

        let mut client = ceps_net::CepsClient::from_conn(Box::new(connector.connect().unwrap()));
        let stats = client.stats().unwrap();
        assert_eq!(stats.queries, 12, "3 connections x 4 queries each");
        client.shutdown().unwrap();
    });
}

/// A shared byte sink for trace JSONL written from server workers and
/// client threads alike.
#[derive(Clone, Default)]
struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// End-to-end trace identity under pipelining: arbitrary query
    /// batches, pipelined (all sends before any recv) across concurrent
    /// connections, come back with every client trace line joined to
    /// exactly one server trace line by `trace_id` — and the traced
    /// replies carry the same score bits as an untraced in-process run,
    /// so tracing is observation-only.
    #[test]
    fn pipelined_traced_queries_keep_trace_ids_matched_end_to_end(
        plans in vec(vec((0u32..6, 1usize..4), 1..5), 1..4),
    ) {
        // Untraced ground truth: recorder off, no tracer, no contexts.
        let reference = tiny_service();
        let expected: Vec<Vec<ServeReply>> = plans
            .iter()
            .map(|sets| {
                sets.iter()
                    .map(|&(node, extra)| {
                        let queries: Vec<NodeId> =
                            (0..extra).map(|j| NodeId((node + j as u32) % 6)).collect();
                        reference.serve(&ServeRequest::new(queries)).unwrap()
                    })
                    .collect()
            })
            .collect();

        let server_sink = SharedBuf::default();
        let server = tiny_server().with_tracer(ceps_core::RequestTracer::new(
            Box::new(server_sink.clone()),
            1.0,
        ));
        let client_sink = SharedBuf::default();
        let (mut transport, connector) = in_proc();
        std::thread::scope(|s| {
            let server = &server;
            s.spawn(move || server.serve(&mut transport).unwrap());

            let mut conns = Vec::new();
            for (conn_idx, sets) in plans.iter().enumerate() {
                let connector = connector.clone();
                let sink = client_sink.clone();
                let expected = &expected[conn_idx];
                conns.push(s.spawn(move || {
                    let mut client =
                        ceps_net::CepsClient::from_conn(Box::new(connector.connect().unwrap()))
                            .with_trace_sink(Box::new(sink));
                    // Pipeline: every request on the wire before the
                    // first reply is read.
                    let mut sent = Vec::new();
                    for &(node, extra) in sets {
                        let queries: Vec<NodeId> =
                            (0..extra).map(|j| NodeId((node + j as u32) % 6)).collect();
                        let id = client.send_request(&ServeRequest::new(queries)).unwrap();
                        let trace_id = client.trace_id_of(id).expect("pending id is traced");
                        sent.push((id, trace_id));
                    }
                    for (&(id, trace_id), want) in sent.iter().zip(expected) {
                        let reply = client.recv_reply().unwrap();
                        assert_eq!(reply.id(), id, "pipelined replies arrive in order");
                        match reply {
                            Reply::Scores { reply, .. } => assert_eq!(
                                &reply, want,
                                "traced wire reply diverged from untraced serve()"
                            ),
                            other => panic!("unexpected reply {other:?}"),
                        }
                        assert_ne!(trace_id, 0, "root contexts are nonzero");
                    }
                    sent
                }));
            }
            let sent: Vec<(u64, u64)> = conns.into_iter().flat_map(|c| c.join().unwrap()).collect();

            let mut shutter =
                ceps_net::CepsClient::from_conn(Box::new(connector.connect().unwrap()));
            shutter.shutdown().unwrap();

            // Join the two JSONL streams on trace_id: every request the
            // clients traced must appear exactly once on each side, with
            // matching request ids.
            let server_lines: Vec<serde_json::Value> = server_sink
                .text()
                .lines()
                .map(|l| serde_json::from_str(l).unwrap())
                .collect();
            let client_lines: Vec<serde_json::Value> = client_sink
                .text()
                .lines()
                .map(|l| serde_json::from_str(l).unwrap())
                .collect();
            let total: usize = plans.iter().map(Vec::len).sum();
            assert_eq!(server_lines.len(), total, "head rate 1.0 keeps every request");
            assert_eq!(client_lines.len(), total);

            for &(id, trace_id) in &sent {
                let hex = format!("{trace_id:016x}");
                let on_server: Vec<&serde_json::Value> = server_lines
                    .iter()
                    .filter(|d| d["trace_id"].as_str() == Some(hex.as_str()))
                    .collect();
                assert_eq!(
                    on_server.len(), 1,
                    "trace {} must hit exactly one server line", hex
                );
                assert_eq!(on_server[0]["request_id"].as_u64(), Some(id));
                assert_eq!(on_server[0]["schema"].as_str(), Some("ceps-trace/v1"));
                assert!(on_server[0].get("side").is_none(), "server lines carry no side");

                let on_client: Vec<&serde_json::Value> = client_lines
                    .iter()
                    .filter(|d| d["trace_id"].as_str() == Some(hex.as_str()))
                    .collect();
                assert_eq!(on_client.len(), 1, "trace {} on exactly one client line", hex);
                assert_eq!(on_client[0]["request_id"].as_u64(), Some(id));
                assert_eq!(on_client[0]["side"].as_str(), Some("client"));
            }
        });
    }
}

/// A malformed frame gets a structured `Malformed` error reply (id 0)
/// and the connection is closed; the server stays up for new clients.
#[test]
fn malformed_frames_close_only_their_connection() {
    let server = tiny_server();
    let (mut transport, connector) = in_proc();
    std::thread::scope(|s| {
        let server = &server;
        s.spawn(move || server.serve(&mut transport).unwrap());

        let mut bad = connector.connect().unwrap();
        bad.write_all(b"not-a-length\n{}\n").unwrap();
        let mut framed = Framed::new(bad, 1 << 20);
        let reply: Reply = framed.recv().unwrap().expect("structured goodbye");
        match reply {
            Reply::Error { id, error } => {
                assert_eq!(id, 0);
                assert_eq!(error.kind, WireErrorKind::Malformed);
            }
            other => panic!("expected Error, got {other:?}"),
        }
        assert!(framed.recv::<Reply>().unwrap().is_none(), "conn closed");

        // Fresh connection still works.
        let mut client = ceps_net::CepsClient::from_conn(Box::new(connector.connect().unwrap()));
        client.ping().unwrap();
        client.shutdown().unwrap();
    });
}
