//! Trace context propagation: the identity a request carries across
//! threads and process boundaries.
//!
//! A [`TraceContext`] is three fields — a 64-bit `trace_id`, the span id
//! of the caller (`parent_span`), and a `sampled` flag — mirroring the
//! W3C trace-context model at the scale this workspace needs. Ids are
//! generated with splitmix64 over a process-global counter seeded from
//! the wall clock, rendered as fixed-width lowercase hex (16 chars) in
//! every JSON artifact: `Value` numbers are f64, so a raw `u64` would
//! silently lose precision past 2^53.
//!
//! The *current* context is a thread-local `Cell<Option<TraceContext>>`;
//! reading it is one TLS access and a copy. Scope a context with
//! [`with_trace`] (RAII guard restoring the previous value) so nested
//! adoption — server worker adopting an inbound wire context around a
//! service call — composes without leaks. The existing RAII spans and
//! the `ceps-trace/v1` tracer read [`current_trace`] automatically; no
//! signatures changed.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// The identity one request carries end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Shared by every span/line/event of one request, across processes.
    pub trace_id: u64,
    /// Span id of the caller (0 at the root).
    pub parent_span: u64,
    /// Whether downstream stages should emit detailed telemetry.
    pub sampled: bool,
}

/// splitmix64 — the workspace's standard cheap mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Process-global id source. Seeded lazily from the wall clock xor the
/// process id so two processes sharing a JSONL stream do not collide.
static ID_STATE: AtomicU64 = AtomicU64::new(0);

/// Draws a fresh non-zero 64-bit id (0 is reserved for "absent").
pub fn fresh_id() -> u64 {
    let mut cur = ID_STATE.load(Ordering::Relaxed);
    if cur == 0 {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0x5eed, |d| d.as_nanos() as u64);
        let seed = nanos ^ (u64::from(std::process::id()) << 32) | 1;
        // First writer wins; losers adopt the winner's stream.
        let _ = ID_STATE.compare_exchange(0, seed, Ordering::Relaxed, Ordering::Relaxed);
        cur = ID_STATE.load(Ordering::Relaxed);
    }
    loop {
        let mut next = cur;
        let id = splitmix64(&mut next);
        match ID_STATE.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) if id != 0 => return id,
            Ok(_) => cur = next,
            Err(now) => cur = now,
        }
    }
}

impl TraceContext {
    /// Starts a new trace (fresh `trace_id`, no parent).
    pub fn new_root() -> TraceContext {
        TraceContext {
            trace_id: fresh_id(),
            parent_span: 0,
            sampled: true,
        }
    }

    /// A child context: same trace, this context's fresh span id becomes
    /// the parent of downstream work.
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            parent_span: fresh_id(),
            sampled: self.sampled,
        }
    }

    /// The `trace_id` as fixed-width lowercase hex.
    pub fn trace_id_hex(&self) -> String {
        id_hex(self.trace_id)
    }
}

/// Fixed-width (16-char) lowercase hex for a 64-bit id.
pub fn id_hex(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a hex id as produced by [`id_hex`] (leading zeros optional).
pub fn parse_id_hex(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The context active on this thread, if any.
#[inline]
pub fn current_trace() -> Option<TraceContext> {
    CURRENT.with(Cell::get)
}

/// Replaces the thread's current context, returning the previous one.
/// Prefer [`with_trace`] unless the scope genuinely outlives a guard.
pub fn set_current_trace(ctx: Option<TraceContext>) -> Option<TraceContext> {
    CURRENT.with(|cur| cur.replace(ctx))
}

/// RAII scope for a trace context: restores the previous context on drop.
#[must_use = "the context is active only while the guard is alive"]
pub struct TraceGuard {
    prev: Option<TraceContext>,
}

/// Makes `ctx` the thread's current context for the guard's lifetime.
pub fn with_trace(ctx: TraceContext) -> TraceGuard {
    TraceGuard {
        prev: set_current_trace(Some(ctx)),
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        set_current_trace(self.prev.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_nonzero_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = fresh_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id:#x}");
        }
    }

    #[test]
    fn hex_round_trips() {
        for id in [1u64, 0xdead_beef, u64::MAX, fresh_id()] {
            let hex = id_hex(id);
            assert_eq!(hex.len(), 16);
            assert_eq!(parse_id_hex(&hex), Some(id));
        }
        assert_eq!(parse_id_hex("dead"), Some(0xdead));
        assert_eq!(parse_id_hex(""), None);
        assert_eq!(parse_id_hex("not hex!"), None);
        assert_eq!(parse_id_hex("00112233445566778899"), None);
    }

    #[test]
    fn guard_scopes_nest_and_restore() {
        assert_eq!(current_trace(), None);
        let outer = TraceContext::new_root();
        {
            let _g = with_trace(outer);
            assert_eq!(current_trace(), Some(outer));
            let inner = outer.child();
            assert_eq!(inner.trace_id, outer.trace_id);
            assert_ne!(inner.parent_span, outer.parent_span);
            {
                let _g2 = with_trace(inner);
                assert_eq!(current_trace(), Some(inner));
            }
            assert_eq!(current_trace(), Some(outer));
        }
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn contexts_survive_manual_handoff() {
        let ctx = TraceContext::new_root();
        let prev = set_current_trace(Some(ctx));
        assert_eq!(current_trace(), Some(ctx));
        set_current_trace(prev);
        assert_eq!(current_trace(), None);
    }
}
