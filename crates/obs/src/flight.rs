//! The flight recorder: a black-box ring of recent events, dumpable
//! after the fact (`ceps-flight/v1` JSONL) — on demand over the wire, on
//! panic, or when a server drains.
//!
//! ## Design
//!
//! Each thread owns a fixed-size ring ([`ThreadRing`]) of atomic slots;
//! the write cursor is a relaxed atomic bumped only by the owning
//! thread, so the hot path takes **no lock**: one enabled-flag load,
//! one thread-local access, a handful of relaxed stores. Readers
//! (dumpers) run concurrently on other threads; each slot carries a
//! seqlock-style generation counter (odd while mid-write, bumped with
//! `Release`) so a dump skips slots it raced with instead of emitting
//! torn events. Everything is `core::sync::atomic` — the crate forbids
//! `unsafe`.
//!
//! Event names (span paths, marker labels) are interned into a global
//! table once per distinct name per thread (a thread-local cache makes
//! the steady state lock-free too); slots store the 32-bit name index.
//!
//! Like the metrics recorder, the recorder is off by default and the
//! disabled path is one relaxed load plus a branch. Span enter/exit
//! events additionally require the metrics recorder to be installed
//! (spans never construct their paths otherwise).

use std::cell::RefCell;
use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::context::{current_trace, id_hex};

/// Schema identifier stamped on every dumped line.
pub const FLIGHT_SCHEMA: &str = "ceps-flight/v1";

/// Default events retained per thread.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// Global on/off gate; the only cost when off is one relaxed load.
static FLIGHT_ENABLED: AtomicBool = AtomicBool::new(false);

/// What a recorded event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A span opened (`name` is its full `/`-joined path).
    SpanEnter,
    /// A span closed; `value` is its wall time in nanoseconds.
    SpanExit,
    /// A request or connection failed; `name` labels the site.
    Error,
    /// Admission control shed a request (overload).
    Shed,
    /// A request exceeded the slow-mark threshold; `value` is ns.
    SlowRequest,
    /// A free-form marker.
    Mark,
}

impl FlightKind {
    /// Stable lowercase tag used in dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::SpanEnter => "span_enter",
            FlightKind::SpanExit => "span_exit",
            FlightKind::Error => "error",
            FlightKind::Shed => "shed",
            FlightKind::SlowRequest => "slow_request",
            FlightKind::Mark => "mark",
        }
    }

    fn from_code(code: u64) -> FlightKind {
        match code {
            0 => FlightKind::SpanEnter,
            1 => FlightKind::SpanExit,
            2 => FlightKind::Error,
            3 => FlightKind::Shed,
            4 => FlightKind::SlowRequest,
            _ => FlightKind::Mark,
        }
    }

    fn code(self) -> u64 {
        match self {
            FlightKind::SpanEnter => 0,
            FlightKind::SpanExit => 1,
            FlightKind::Error => 2,
            FlightKind::Shed => 3,
            FlightKind::SlowRequest => 4,
            FlightKind::Mark => 5,
        }
    }
}

/// One ring slot. A seqlock generation (`seq`) guards the payload: the
/// writer makes it odd, stores the fields, then makes it even with
/// `Release`; a reader that sees the generation change mid-read drops
/// the slot.
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    t_us: AtomicU64,
    kind: AtomicU64,
    name: AtomicU32,
    trace_id: AtomicU64,
    value: AtomicU64,
}

/// One thread's ring. Only the owning thread writes; any thread reads.
struct ThreadRing {
    /// Small ordinal for dump labelling (not the OS thread id).
    thread: u64,
    /// Total events ever written; `cursor % slots.len()` is the next slot.
    cursor: AtomicU64,
    slots: Vec<Slot>,
}

impl ThreadRing {
    fn new(thread: u64, capacity: usize) -> ThreadRing {
        ThreadRing {
            thread,
            cursor: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Slot::default()).collect(),
        }
    }

    /// Records one event. Single-writer: called only by the owner.
    fn push(&self, kind: FlightKind, name: u32, trace_id: u64, value: u64) {
        let n = self.cursor.load(Ordering::Relaxed);
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        let gen = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(gen | 1, Ordering::Relaxed);
        slot.t_us.store(now_us(), Ordering::Relaxed);
        slot.kind.store(kind.code(), Ordering::Relaxed);
        slot.name.store(name, Ordering::Relaxed);
        slot.trace_id.store(trace_id, Ordering::Relaxed);
        slot.value.store(value, Ordering::Relaxed);
        slot.seq.store((gen | 1).wrapping_add(1), Ordering::Release);
        self.cursor.store(n + 1, Ordering::Relaxed);
    }

    /// Reads every consistent slot, oldest first.
    fn read(&self, out: &mut Vec<RawEvent>) {
        let end = self.cursor.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = end.saturating_sub(cap);
        for n in start..end {
            let slot = &self.slots[(n % cap) as usize];
            let before = slot.seq.load(Ordering::Acquire);
            if before & 1 == 1 {
                continue; // mid-write
            }
            let ev = RawEvent {
                thread: self.thread,
                seq: n,
                t_us: slot.t_us.load(Ordering::Relaxed),
                kind: FlightKind::from_code(slot.kind.load(Ordering::Relaxed)),
                name: slot.name.load(Ordering::Relaxed),
                trace_id: slot.trace_id.load(Ordering::Relaxed),
                value: slot.value.load(Ordering::Relaxed),
            };
            if slot.seq.load(Ordering::Acquire) == before {
                out.push(ev);
            }
        }
    }
}

/// A consistent copy of one slot.
struct RawEvent {
    thread: u64,
    seq: u64,
    t_us: u64,
    kind: FlightKind,
    name: u32,
    trace_id: u64,
    value: u64,
}

/// Process-wide recorder state: every thread ring plus the name table.
struct FlightState {
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    names: Mutex<NameTable>,
    capacity: AtomicUsize,
    next_thread: AtomicU64,
}

#[derive(Default)]
struct NameTable {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

fn state() -> &'static FlightState {
    static STATE: OnceLock<FlightState> = OnceLock::new();
    STATE.get_or_init(|| FlightState {
        rings: Mutex::new(Vec::new()),
        names: Mutex::new(NameTable::default()),
        capacity: AtomicUsize::new(DEFAULT_FLIGHT_CAPACITY),
        next_thread: AtomicU64::new(0),
    })
}

thread_local! {
    /// This thread's ring plus its private name-id cache.
    static LOCAL: RefCell<Option<(Arc<ThreadRing>, HashMap<String, u32>)>> =
        const { RefCell::new(None) };
}

fn now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_micros() as u64)
}

/// True once the flight recorder is on (one relaxed load).
#[inline]
pub fn flight_enabled() -> bool {
    FLIGHT_ENABLED.load(Ordering::Relaxed)
}

/// Turns the recorder on, retaining `capacity` recent events per thread
/// (0 keeps the current capacity). Rings already allocated keep their
/// size; new threads get the new capacity.
pub fn flight_enable(capacity: usize) {
    let st = state();
    if capacity > 0 {
        st.capacity.store(capacity, Ordering::Relaxed);
    }
    FLIGHT_ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the recorder off. Already-recorded events stay dumpable.
pub fn flight_disable() {
    FLIGHT_ENABLED.store(false, Ordering::Relaxed);
}

/// Discards every recorded event (rings stay allocated). Test helper;
/// racing writers may land events after the reset returns.
pub fn flight_reset() {
    let rings = state().rings.lock().unwrap_or_else(PoisonError::into_inner);
    for ring in rings.iter() {
        for slot in &ring.slots {
            let gen = slot.seq.load(Ordering::Relaxed);
            slot.seq.store(gen | 1, Ordering::Relaxed);
        }
        ring.cursor.store(0, Ordering::Relaxed);
        for slot in &ring.slots {
            let gen = slot.seq.load(Ordering::Relaxed);
            slot.seq.store((gen | 1).wrapping_add(1), Ordering::Release);
        }
    }
}

/// Records one event with an explicit trace id. No-op when disabled.
#[inline]
pub fn flight_event(kind: FlightKind, name: &str, trace_id: u64, value: u64) {
    if !flight_enabled() {
        return;
    }
    flight_event_slow(kind, name, trace_id, value);
}

/// Records one event, attributing it to the thread's current trace
/// context (if any). No-op when disabled.
#[inline]
pub fn flight_note(kind: FlightKind, name: &str, value: u64) {
    if !flight_enabled() {
        return;
    }
    let trace_id = current_trace().map_or(0, |c| c.trace_id);
    flight_event_slow(kind, name, trace_id, value);
}

#[cold]
fn flight_event_slow(kind: FlightKind, name: &str, trace_id: u64, value: u64) {
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let (ring, cache) = local.get_or_insert_with(|| {
            let st = state();
            let ring = Arc::new(ThreadRing::new(
                st.next_thread.fetch_add(1, Ordering::Relaxed),
                st.capacity.load(Ordering::Relaxed),
            ));
            st.rings
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(Arc::clone(&ring));
            (ring, HashMap::new())
        });
        let id = match cache.get(name) {
            Some(&id) => id,
            None => {
                let mut table = state().names.lock().unwrap_or_else(PoisonError::into_inner);
                let id = match table.by_name.get(name) {
                    Some(&id) => id,
                    None => {
                        let id = table.names.len() as u32;
                        table.names.push(name.to_string());
                        table.by_name.insert(name.to_string(), id);
                        id
                    }
                };
                drop(table);
                cache.insert(name.to_string(), id);
                id
            }
        };
        ring.push(kind, id, trace_id, value);
    });
}

/// Dumps every retained event as `ceps-flight/v1` JSONL, oldest first
/// (ordered by timestamp across threads). Returns an empty string when
/// nothing was recorded.
pub fn flight_dump() -> String {
    let st = state();
    let rings: Vec<Arc<ThreadRing>> = st
        .rings
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let names: Vec<String> = {
        let table = st.names.lock().unwrap_or_else(PoisonError::into_inner);
        table.names.clone()
    };
    let mut events = Vec::new();
    for ring in &rings {
        ring.read(&mut events);
    }
    events.sort_by_key(|e| (e.t_us, e.thread, e.seq));
    let mut out = String::new();
    for e in &events {
        let name = names
            .get(e.name as usize)
            .map_or("?", String::as_str)
            .replace(['"', '\\'], "_")
            .replace(['\n', '\r', '\t'], " ");
        out.push_str(&format!(
            "{{\"schema\": \"{FLIGHT_SCHEMA}\", \"t_us\": {}, \"thread\": {}, \
             \"seq\": {}, \"kind\": \"{}\", \"name\": \"{}\", \"trace_id\": {}, \
             \"value\": {}}}\n",
            e.t_us,
            e.thread,
            e.seq,
            e.kind.as_str(),
            name,
            if e.trace_id == 0 {
                "null".to_string()
            } else {
                format!("\"{}\"", id_hex(e.trace_id))
            },
            e.value,
        ));
    }
    out
}

/// Writes [`flight_dump`] to `path` (parent directories created).
///
/// # Errors
/// Filesystem errors.
pub fn flight_dump_to(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(flight_dump().as_bytes())?;
    file.flush()
}

/// Installs a panic hook that writes the flight dump to `path` before
/// delegating to the previous hook. Install once per process.
pub fn install_flight_panic_hook(path: std::path::PathBuf) {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let _ = flight_dump_to(&path);
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{with_trace, TraceContext};

    /// Flight state is process-global; tests serialize on the same lock
    /// the registry tests use (flight events also come from spans).
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        crate::registry::test_lock()
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _guard = lock();
        flight_disable();
        flight_reset();
        flight_note(FlightKind::Mark, "never", 1);
        assert_eq!(flight_dump(), "");
    }

    #[test]
    fn events_round_trip_with_trace_ids() {
        let _guard = lock();
        flight_enable(16);
        flight_reset();
        let ctx = TraceContext::new_root();
        {
            let _g = with_trace(ctx);
            flight_note(FlightKind::Shed, "net.shed", 0);
        }
        flight_note(FlightKind::Mark, "untraced", 7);
        flight_disable();
        let dump = flight_dump();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2, "{dump}");
        assert!(lines[0].contains("\"kind\": \"shed\""));
        assert!(lines[0].contains(&format!("\"trace_id\": \"{}\"", ctx.trace_id_hex())));
        assert!(lines[1].contains("\"trace_id\": null"));
        assert!(lines[1].contains("\"value\": 7"));
        flight_reset();
    }

    #[test]
    fn ring_keeps_only_the_most_recent_events() {
        let _guard = lock();
        flight_enable(0);
        flight_reset();
        // One small private ring, driven directly.
        let ring = ThreadRing::new(99, 4);
        for i in 0..10u64 {
            ring.push(FlightKind::Mark, 0, 0, i);
        }
        let mut events = Vec::new();
        ring.read(&mut events);
        flight_disable();
        assert_eq!(events.len(), 4);
        let values: Vec<u64> = events.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![6, 7, 8, 9], "oldest evicted first");
    }

    #[test]
    fn dump_lines_stay_single_line_json_even_with_hostile_names() {
        let _guard = lock();
        flight_enable(16);
        flight_reset();
        flight_event(FlightKind::Error, "weird \"name\"\nwith breaks", 42, 3);
        flight_disable();
        let dump = flight_dump();
        // Hostile characters in names are neutralized, so every line is
        // one self-contained JSON object (the root test suite and CI
        // parse dumps with a real JSON parser).
        assert_eq!(dump.lines().count(), 1, "{dump}");
        let line = dump.lines().next().unwrap();
        assert!(line.starts_with(&format!("{{\"schema\": \"{FLIGHT_SCHEMA}\"")));
        assert!(line.ends_with('}'));
        assert!(line.contains("\"kind\": \"error\""));
        assert!(!line.contains("weird \""), "quotes must be neutralized");
        flight_reset();
    }
}
