//! # ceps-obs — observability core for the CePS workspace
//!
//! A zero-dependency instrumentation layer shared by every crate in the
//! workspace. It provides four primitives plus a leveled logger:
//!
//! * **Spans** — hierarchical timed regions. [`span`] returns an RAII guard
//!   that pushes a frame onto a thread-local stack; on drop the elapsed time
//!   is aggregated into a lock-sharded global registry keyed by the full
//!   span path (e.g. `"query/stage.combine"`). Each path accumulates call
//!   count, total time, and *self* time (total minus time spent in child
//!   spans).
//! * **Counters** — monotonic `u64` accumulators ([`counter`]).
//! * **Gauges** — point-in-time `i64` levels ([`gauge_set`]/[`gauge_add`]),
//!   e.g. queue depth or in-flight requests; exported to Prometheus as
//!   `# TYPE gauge`.
//! * **Histograms** — fixed-bucket log₂-scale distributions over `f64`
//!   values ([`record`]); 64 buckets spanning `[2⁻³², 2³²)` with under- and
//!   overflow clamped to the edge buckets.
//!
//! All four are **compiled-in no-ops until a recorder is installed**: the
//! hot path pays exactly one relaxed atomic load and a branch when
//! observability is off (see `benches/obs_overhead.rs` in `ceps-bench` for
//! the pinned cost). Call [`install_recorder`] to start collecting,
//! [`snapshot`] to drain an aggregated [`MetricsSnapshot`], and [`reset`]
//! to clear between runs. Instrumentation never alters computation:
//! pipeline output is bitwise-identical with the recorder on or off.
//!
//! Two cross-cutting facilities ride on the same primitives:
//!
//! * **Trace contexts** ([`TraceContext`], [`with_trace`]) — a thread-local
//!   request identity (splitmix64 `trace_id`, parent span id, sampled flag)
//!   that spans, histograms (as bucket exemplars), trace lines, and flight
//!   events pick up automatically; it crosses the wire via `ceps-wire/v1`.
//! * **Flight recorder** ([`flight_enable`], [`flight_dump`]) — a lock-free
//!   per-thread ring of recent events (span enter/exit, errors, sheds, slow
//!   requests) dumpable as `ceps-flight/v1` JSONL on demand, on panic, or
//!   on overload. Disabled it costs one relaxed load and a branch.
//!
//! The logger ([`error!`]/[`warn!`]/[`info!`]/[`debug!`]) writes to stderr
//! so stdout stays reserved for command output; verbosity comes from the
//! `CEPS_LOG` environment variable (`warn` by default).
//!
//! Like the `shims/` crates, this is implemented in-repo with no external
//! dependencies so the workspace stays hermetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
pub mod flight;
mod logger;
mod meta;
mod registry;
mod snapshot;
mod window;

pub use context::{
    current_trace, fresh_id, id_hex, parse_id_hex, set_current_trace, with_trace, TraceContext,
    TraceGuard,
};
pub use flight::{
    flight_disable, flight_dump, flight_dump_to, flight_enable, flight_enabled, flight_event,
    flight_note, flight_reset, install_flight_panic_hook, FlightKind, DEFAULT_FLIGHT_CAPACITY,
    FLIGHT_SCHEMA,
};
pub use logger::{init_log_default, log, log_enabled, set_log_level, set_log_off, Level};
pub use meta::{git_sha, now_iso8601, RunMeta};
pub use registry::{
    counter, enabled, gauge_add, gauge_set, install_recorder, record, reset, snapshot, span, timed,
    uninstall_recorder, Span,
};
pub use snapshot::{BucketExemplar, HistogramStat, MetricsSnapshot, SpanStat};
pub use window::{
    metrics_event_json, to_prometheus, CounterRate, ExporterConfig, Histogram, HistogramWindow,
    MetricsExporter, WindowDelta, WindowedMetrics,
};
