//! Leveled stderr logger controlled by the `CEPS_LOG` environment variable.
//!
//! Binaries log through [`error!`](crate::error!) / [`warn!`](crate::warn!)
//! / [`info!`](crate::info!) / [`debug!`](crate::debug!) instead of raw
//! `eprintln!` so stdout stays reserved for command output and verbosity is
//! uniform across the workspace. Errors print by default; the default
//! threshold is `warn` unless a binary opts into a chattier default with
//! [`init_log_default`]. `CEPS_LOG=error|warn|info|debug` (numeric `0..=3`
//! in the same order) overrides either default, and `CEPS_LOG=off` (or
//! `none`) silences everything *including errors* — useful when stderr
//! carries machine-read output such as JSONL telemetry.
//!
//! Every line carries an ISO-8601 timestamp, and — when the logging thread
//! has an active [`TraceContext`](crate::TraceContext) — the current
//! `trace_id`, so stderr can be joined against the `ceps-trace/v1` /
//! `ceps-flight/v1` streams. `CEPS_LOG_FORMAT=json` switches from the
//! human `[ceps level ts trace=id] msg` prefix to one JSON object per
//! line: `{"ts": "...", "level": "warn", "trace_id": "...", "msg": "..."}`
//! (`trace_id` is `null` outside a traced scope).

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered from always-on to most verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or user-facing failures. Always printed.
    Error = 0,
    /// Suspicious conditions worth surfacing by default.
    Warn = 1,
    /// Progress notes (files written, phase timings).
    Info = 2,
    /// High-volume diagnostics (per-level partitioner stats, solver steps).
    Debug = 3,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

const UNSET: u8 = u8::MAX;
/// Threshold sentinel above every [`Level`]: nothing prints, not even
/// errors (`CEPS_LOG=off|none`).
const OFF: u8 = 4;
static THRESHOLD: AtomicU8 = AtomicU8::new(UNSET);

/// Parses a `CEPS_LOG` value into a threshold: a level name, its numeric
/// rank `0..=3`, or the `off`/`none` sentinel.
fn parse(s: &str) -> Option<u8> {
    match s.trim().to_ascii_lowercase().as_str() {
        "off" | "none" => Some(OFF),
        "error" | "0" => Some(Level::Error as u8),
        "warn" | "warning" | "1" => Some(Level::Warn as u8),
        "info" | "2" => Some(Level::Info as u8),
        "debug" | "trace" | "3" => Some(Level::Debug as u8),
        _ => None,
    }
}

fn env_threshold(default: u8) -> u8 {
    std::env::var("CEPS_LOG")
        .ok()
        .and_then(|s| parse(&s))
        .unwrap_or(default)
}

fn threshold() -> u8 {
    match THRESHOLD.load(Ordering::Relaxed) {
        UNSET => {
            let t = env_threshold(Level::Warn as u8);
            THRESHOLD.store(t, Ordering::Relaxed);
            t
        }
        v => v,
    }
}

/// Output shape for stderr log lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LogFormat {
    /// Human-readable `[ceps level ts trace=id] msg` prefix (default).
    Text,
    /// One JSON object per line for machine-read stderr.
    Json,
}

const FORMAT_UNSET: u8 = u8::MAX;
static FORMAT: AtomicU8 = AtomicU8::new(FORMAT_UNSET);

fn log_format() -> LogFormat {
    match FORMAT.load(Ordering::Relaxed) {
        FORMAT_UNSET => {
            let fmt = match std::env::var("CEPS_LOG_FORMAT") {
                Ok(v) if v.trim().eq_ignore_ascii_case("json") => LogFormat::Json,
                _ => LogFormat::Text,
            };
            FORMAT.store(fmt as u8, Ordering::Relaxed);
            fmt
        }
        v if v == LogFormat::Json as u8 => LogFormat::Json,
        _ => LogFormat::Text,
    }
}

/// Renders one log line (no trailing newline) in the given format. Pure so
/// tests can pin both shapes without capturing stderr.
fn format_line(
    fmt: LogFormat,
    level: Level,
    ts: &str,
    trace_id: Option<u64>,
    args: std::fmt::Arguments<'_>,
) -> String {
    match fmt {
        LogFormat::Text => match trace_id {
            Some(id) => format!(
                "[ceps {:<5} {ts} trace={}] {args}",
                level.as_str(),
                crate::context::id_hex(id)
            ),
            None => format!("[ceps {:<5} {ts}] {args}", level.as_str()),
        },
        LogFormat::Json => {
            let trace = match trace_id {
                Some(id) => crate::snapshot::json_str(&crate::context::id_hex(id)),
                None => "null".to_string(),
            };
            format!(
                "{{\"ts\": {}, \"level\": \"{}\", \"trace_id\": {trace}, \"msg\": {}}}",
                crate::snapshot::json_str(ts),
                level.as_str(),
                crate::snapshot::json_str(&args.to_string()),
            )
        }
    }
}

/// Initializes the threshold from `CEPS_LOG`, falling back to `default`
/// when the variable is unset or unparsable. Binaries that want chatty
/// progress by default (e.g. `experiments`) call this with
/// [`Level::Info`]; everything else inherits the `warn` default lazily.
pub fn init_log_default(default: Level) {
    THRESHOLD.store(env_threshold(default as u8), Ordering::Relaxed);
}

/// Overrides the threshold directly, ignoring `CEPS_LOG`. Meant for tests.
pub fn set_log_level(level: Level) {
    THRESHOLD.store(level as u8, Ordering::Relaxed);
}

/// Silences all logging, including errors — the programmatic equivalent of
/// `CEPS_LOG=off`. Undo with [`set_log_level`] or [`init_log_default`].
pub fn set_log_off() {
    THRESHOLD.store(OFF, Ordering::Relaxed);
}

/// Returns whether a message at `level` would currently be printed.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    let t = threshold();
    t != OFF && level as u8 <= t
}

/// Prints one message to stderr if `level` passes the threshold. Prefer
/// the [`error!`](crate::error!)-family macros over calling this directly.
pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
    if log_enabled(level) {
        let ts = crate::meta::now_iso8601();
        let trace_id = crate::context::current_trace().map(|c| c.trace_id);
        eprintln!("{}", format_line(log_format(), level, &ts, trace_id, args));
    }
}

/// Logs at [`Level::Error`] with `format!` syntax. Always printed.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log($crate::Level::Error, ::core::format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`] with `format!` syntax.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log($crate::Level::Warn, ::core::format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`] with `format!` syntax.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log($crate::Level::Info, ::core::format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`] with `format!` syntax.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log($crate::Level::Debug, ::core::format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that mutate the global `THRESHOLD`.
    fn test_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn levels_order_and_gate() {
        let _guard = test_lock();
        set_log_level(Level::Warn);
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));
        set_log_level(Level::Debug);
        assert!(log_enabled(Level::Debug));
        set_log_level(Level::Error);
        assert!(log_enabled(Level::Error));
        assert!(!log_enabled(Level::Warn));
        // Restore the lazy default for other tests in this binary.
        set_log_level(Level::Warn);
    }

    #[test]
    fn parse_accepts_known_names_only() {
        assert_eq!(parse("info"), Some(Level::Info as u8));
        assert_eq!(parse(" DEBUG "), Some(Level::Debug as u8));
        assert_eq!(parse("warning"), Some(Level::Warn as u8));
        assert_eq!(parse("quiet"), None);
        assert_eq!(parse(""), None);
    }

    #[test]
    fn parse_accepts_off_none_and_numeric_levels() {
        assert_eq!(parse("off"), Some(OFF));
        assert_eq!(parse(" NONE "), Some(OFF));
        assert_eq!(parse("0"), Some(Level::Error as u8));
        assert_eq!(parse("1"), Some(Level::Warn as u8));
        assert_eq!(parse("2"), Some(Level::Info as u8));
        assert_eq!(parse("3"), Some(Level::Debug as u8));
        assert_eq!(parse("4"), None, "out-of-range numerics rejected");
        assert_eq!(parse("-1"), None);
        assert_eq!(parse("00"), None);
    }

    #[test]
    fn off_silences_even_errors() {
        let _guard = test_lock();
        set_log_off();
        assert!(!log_enabled(Level::Error));
        assert!(!log_enabled(Level::Debug));
        // Safe to call while off: must not print (nothing to assert on
        // stderr, but this exercises the gate in `log`).
        crate::error!("suppressed");
        set_log_level(Level::Warn);
        assert!(log_enabled(Level::Error));
    }

    #[test]
    fn text_lines_carry_timestamp_and_optional_trace() {
        let plain = format_line(
            LogFormat::Text,
            Level::Warn,
            "2026-08-09T00:00:00Z",
            None,
            format_args!("hello {}", 1),
        );
        assert_eq!(plain, "[ceps warn  2026-08-09T00:00:00Z] hello 1");
        let traced = format_line(
            LogFormat::Text,
            Level::Error,
            "2026-08-09T00:00:00Z",
            Some(0xabc),
            format_args!("boom"),
        );
        assert_eq!(
            traced,
            "[ceps error 2026-08-09T00:00:00Z trace=0000000000000abc] boom"
        );
    }

    #[test]
    fn json_lines_are_single_escaped_objects() {
        let line = format_line(
            LogFormat::Json,
            Level::Info,
            "2026-08-09T00:00:00Z",
            Some(0xabc),
            format_args!("with \"quotes\"\nand newline"),
        );
        assert_eq!(
            line,
            "{\"ts\": \"2026-08-09T00:00:00Z\", \"level\": \"info\", \
             \"trace_id\": \"0000000000000abc\", \"msg\": \"with \\\"quotes\\\"\\nand newline\"}"
        );
        assert!(!line.contains('\n'), "must stay one line");
        let untraced = format_line(LogFormat::Json, Level::Debug, "t", None, format_args!("m"));
        assert!(untraced.contains("\"trace_id\": null"));
    }

    #[test]
    fn macros_compile_at_every_level() {
        let _guard = test_lock();
        set_log_level(Level::Error);
        crate::error!("e {}", 1);
        crate::warn!("w {}", 2);
        crate::info!("i {}", 3);
        crate::debug!("d {}", 4);
        set_log_level(Level::Warn);
    }
}
