//! Leveled stderr logger controlled by the `CEPS_LOG` environment variable.
//!
//! Binaries log through [`error!`](crate::error!) / [`warn!`](crate::warn!)
//! / [`info!`](crate::info!) / [`debug!`](crate::debug!) instead of raw
//! `eprintln!` so stdout stays reserved for command output and verbosity is
//! uniform across the workspace. Errors always print; the default threshold
//! is `warn` unless a binary opts into a chattier default with
//! [`init_log_default`]. `CEPS_LOG=warn|info|debug` (or `error`) overrides
//! either default.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered from always-on to most verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or user-facing failures. Always printed.
    Error = 0,
    /// Suspicious conditions worth surfacing by default.
    Warn = 1,
    /// Progress notes (files written, phase timings).
    Info = 2,
    /// High-volume diagnostics (per-level partitioner stats, solver steps).
    Debug = 3,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }
}

const UNSET: u8 = u8::MAX;
static THRESHOLD: AtomicU8 = AtomicU8::new(UNSET);

fn parse(s: &str) -> Option<Level> {
    match s.trim().to_ascii_lowercase().as_str() {
        "error" => Some(Level::Error),
        "warn" | "warning" => Some(Level::Warn),
        "info" => Some(Level::Info),
        "debug" | "trace" => Some(Level::Debug),
        _ => None,
    }
}

fn env_level(default: Level) -> Level {
    std::env::var("CEPS_LOG")
        .ok()
        .and_then(|s| parse(&s))
        .unwrap_or(default)
}

fn threshold() -> Level {
    match THRESHOLD.load(Ordering::Relaxed) {
        UNSET => {
            let level = env_level(Level::Warn);
            THRESHOLD.store(level as u8, Ordering::Relaxed);
            level
        }
        v => Level::from_u8(v),
    }
}

/// Initializes the threshold from `CEPS_LOG`, falling back to `default`
/// when the variable is unset or unparsable. Binaries that want chatty
/// progress by default (e.g. `experiments`) call this with
/// [`Level::Info`]; everything else inherits the `warn` default lazily.
pub fn init_log_default(default: Level) {
    THRESHOLD.store(env_level(default) as u8, Ordering::Relaxed);
}

/// Overrides the threshold directly, ignoring `CEPS_LOG`. Meant for tests.
pub fn set_log_level(level: Level) {
    THRESHOLD.store(level as u8, Ordering::Relaxed);
}

/// Returns whether a message at `level` would currently be printed.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    level as u8 <= threshold() as u8
}

/// Prints one message to stderr if `level` passes the threshold. Prefer
/// the [`error!`](crate::error!)-family macros over calling this directly.
pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
    if log_enabled(level) {
        eprintln!("[ceps {:<5}] {}", level.as_str(), args);
    }
}

/// Logs at [`Level::Error`] with `format!` syntax. Always printed.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log($crate::Level::Error, ::core::format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`] with `format!` syntax.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log($crate::Level::Warn, ::core::format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`] with `format!` syntax.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log($crate::Level::Info, ::core::format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`] with `format!` syntax.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log($crate::Level::Debug, ::core::format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_gate() {
        set_log_level(Level::Warn);
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));
        set_log_level(Level::Debug);
        assert!(log_enabled(Level::Debug));
        set_log_level(Level::Error);
        assert!(log_enabled(Level::Error));
        assert!(!log_enabled(Level::Warn));
        // Restore the lazy default for other tests in this binary.
        set_log_level(Level::Warn);
    }

    #[test]
    fn parse_accepts_known_names_only() {
        assert_eq!(parse("info"), Some(Level::Info));
        assert_eq!(parse(" DEBUG "), Some(Level::Debug));
        assert_eq!(parse("warning"), Some(Level::Warn));
        assert_eq!(parse("quiet"), None);
        assert_eq!(parse(""), None);
    }

    #[test]
    fn macros_compile_at_every_level() {
        set_log_level(Level::Error);
        crate::error!("e {}", 1);
        crate::warn!("w {}", 2);
        crate::info!("i {}", 3);
        crate::debug!("d {}", 4);
        set_log_level(Level::Warn);
    }
}
