//! Run metadata attached to every emitted `OBS_*.json` / `BENCH_*.json`
//! artifact so trajectories stay attributable across PRs: git SHA, thread
//! count, preset name and an ISO-8601 timestamp — collected without any
//! external dependency.

use std::time::{SystemTime, UNIX_EPOCH};

/// Identifying metadata for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Short commit SHA of the working tree (or `"unknown"`).
    pub git_sha: String,
    /// Worker threads available to the run.
    pub threads: usize,
    /// Workload preset name (`tiny`/`small`/`medium`/...), or a free-form
    /// tag when no preset applies.
    pub preset: String,
    /// UTC timestamp in ISO-8601 (`YYYY-MM-DDTHH:MM:SSZ`).
    pub timestamp: String,
    /// What produced the snapshot (`"query"`, `"serve"`, `"experiments"`).
    pub label: String,
}

impl RunMeta {
    /// Collects metadata for the current process: git SHA via
    /// `git rev-parse` (falling back to `GITHUB_SHA`, then `"unknown"`),
    /// available parallelism, and the wall clock.
    pub fn collect(preset: &str, label: &str) -> RunMeta {
        RunMeta {
            git_sha: git_sha(),
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            preset: preset.to_string(),
            timestamp: now_iso8601(),
            label: label.to_string(),
        }
    }
}

/// Best-effort short commit SHA: `git rev-parse --short=12 HEAD`, then the
/// `GITHUB_SHA` environment variable (truncated), then `"unknown"`.
pub fn git_sha() -> String {
    let from_git = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());
    if let Some(sha) = from_git {
        return sha;
    }
    match std::env::var("GITHUB_SHA") {
        Ok(sha) if !sha.trim().is_empty() => sha.trim().chars().take(12).collect(),
        _ => "unknown".to_string(),
    }
}

/// Current UTC wall clock as `YYYY-MM-DDTHH:MM:SSZ`, derived from
/// [`SystemTime`] with the standard civil-from-days calendar conversion.
pub fn now_iso8601() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let (year, month, day) = civil_from_days((secs / 86_400) as i64);
    let rem = secs % 86_400;
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}Z",
        rem / 3600,
        (rem % 3600) / 60,
        rem % 60
    )
}

/// Proleptic-Gregorian date for a day count since 1970-01-01 (Howard
/// Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097) as u64;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let month = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let year = yoe as i64 + era * 400 + i64::from(month <= 2);
    (year, month, day)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_from_days_matches_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year start
        assert_eq!(civil_from_days(19_782), (2024, 2, 29)); // leap day
        assert_eq!(civil_from_days(11_016), (2000, 2, 29));
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
    }

    #[test]
    fn timestamp_shape_is_iso8601() {
        let ts = now_iso8601();
        assert_eq!(ts.len(), 20, "unexpected shape: {ts}");
        assert_eq!(&ts[4..5], "-");
        assert_eq!(&ts[10..11], "T");
        assert!(ts.ends_with('Z'));
    }

    #[test]
    fn collect_populates_every_field() {
        let meta = RunMeta::collect("tiny", "test");
        assert!(!meta.git_sha.is_empty());
        assert!(meta.threads >= 1);
        assert_eq!(meta.preset, "tiny");
        assert_eq!(meta.label, "test");
        assert!(meta.timestamp.ends_with('Z'));
    }
}
