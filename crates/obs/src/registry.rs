//! Span stack, lock-sharded aggregation registry, counters and histograms.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use crate::context::current_trace;
use crate::flight::{flight_event, FlightKind};
use crate::snapshot::{BucketExemplar, HistogramStat, MetricsSnapshot, SpanStat};

/// Global on/off gate. The only cost instrumented code pays when
/// observability is off is one relaxed load of this flag plus a branch.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Returns `true` once a recorder is installed. Use this to gate telemetry
/// whose *computation* is non-trivial (e.g. popcounts over DP occupancy
/// masks) so the disabled path stays a single branch.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts collecting spans, counters and histograms into the global
/// registry. Previously accumulated data is kept; call [`reset`] to clear.
pub fn install_recorder() {
    registry();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stops collecting. Already-open spans still close cleanly (the
/// thread-local stack stays balanced) and their timings are recorded.
pub fn uninstall_recorder() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clears all aggregated spans, counters and histograms.
pub fn reset() {
    registry().clear();
}

/// Drains a consistent copy of everything aggregated so far.
pub fn snapshot() -> MetricsSnapshot {
    registry().snapshot()
}

const SHARDS: usize = 8;
pub(crate) const HIST_BUCKETS: usize = 64;

/// FNV-1a over the key bytes, used only to pick a shard.
fn shard_of(key: &[u8]) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h as usize) % SHARDS
}

#[derive(Debug, Clone)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    self_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for SpanAgg {
    fn default() -> Self {
        SpanAgg {
            count: 0,
            total_ns: 0,
            self_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: Vec<u64>,
    /// Last contributing `(trace_id, value)` per bucket; `trace_id` 0
    /// means the bucket never saw a traced observation. A p99 spike in
    /// a high bucket thus names a concrete, dumpable request.
    exemplars: Vec<(u64, f64)>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; HIST_BUCKETS],
            exemplars: vec![(0, 0.0); HIST_BUCKETS],
        }
    }
}

/// Bucket `i` covers `[2^(i-32), 2^(i-31))`; non-positive and subnormal
/// values fall into bucket 0, huge values clamp into the last bucket.
pub(crate) fn bucket_index(v: f64) -> usize {
    if !v.is_finite() || v <= 0.0 {
        return 0;
    }
    let e = v.log2().floor() as i64;
    (e + 32).clamp(0, HIST_BUCKETS as i64 - 1) as usize
}

/// Exclusive upper bound of bucket `i`.
pub(crate) fn bucket_upper(i: usize) -> f64 {
    2f64.powi(i as i32 - 31)
}

#[derive(Default)]
struct Shard {
    spans: HashMap<String, SpanAgg>,
    counters: HashMap<&'static str, u64>,
    gauges: HashMap<&'static str, i64>,
    histograms: HashMap<&'static str, Histogram>,
}

struct Registry {
    shards: [Mutex<Shard>; SHARDS],
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
    })
}

impl Registry {
    fn shard(&self, key: &[u8]) -> std::sync::MutexGuard<'_, Shard> {
        self.shards[shard_of(key)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn record_span(&self, path: String, total_ns: u64, self_ns: u64) {
        let mut shard = self.shard(path.as_bytes());
        let agg = shard.spans.entry(path).or_default();
        agg.count += 1;
        agg.total_ns += total_ns;
        agg.self_ns += self_ns;
        agg.min_ns = agg.min_ns.min(total_ns);
        agg.max_ns = agg.max_ns.max(total_ns);
    }

    fn add_counter(&self, name: &'static str, delta: u64) {
        let mut shard = self.shard(name.as_bytes());
        *shard.counters.entry(name).or_insert(0) += delta;
    }

    fn set_gauge(&self, name: &'static str, value: i64) {
        let mut shard = self.shard(name.as_bytes());
        shard.gauges.insert(name, value);
    }

    fn add_gauge(&self, name: &'static str, delta: i64) {
        let mut shard = self.shard(name.as_bytes());
        *shard.gauges.entry(name).or_insert(0) += delta;
    }

    fn record_value(&self, name: &'static str, value: f64) {
        // The trace context is thread-local: read it before taking the
        // shard lock.
        let trace_id = current_trace()
            .filter(|c| c.sampled)
            .map_or(0, |c| c.trace_id);
        let mut shard = self.shard(name.as_bytes());
        let hist = shard.histograms.entry(name).or_default();
        hist.count += 1;
        if value.is_finite() {
            hist.sum += value;
            hist.min = hist.min.min(value);
            hist.max = hist.max.max(value);
        }
        let bucket = bucket_index(value);
        hist.buckets[bucket] += 1;
        if trace_id != 0 {
            hist.exemplars[bucket] = (trace_id, value);
        }
    }

    fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            shard.spans.clear();
            shard.counters.clear();
            shard.gauges.clear();
            shard.histograms.clear();
        }
    }

    fn snapshot(&self) -> MetricsSnapshot {
        let mut spans = Vec::new();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for (path, agg) in &shard.spans {
                spans.push(SpanStat {
                    path: path.clone(),
                    count: agg.count,
                    total_ns: agg.total_ns,
                    self_ns: agg.self_ns,
                    min_ns: if agg.count == 0 { 0 } else { agg.min_ns },
                    max_ns: agg.max_ns,
                });
            }
            for (&name, &value) in &shard.counters {
                counters.push((name.to_string(), value));
            }
            for (&name, &value) in &shard.gauges {
                gauges.push((name.to_string(), value));
            }
            for (&name, hist) in &shard.histograms {
                let buckets = hist
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(i, &c)| (bucket_upper(i), c))
                    .collect();
                let exemplars = hist
                    .exemplars
                    .iter()
                    .enumerate()
                    .filter(|&(_, &(id, _))| id != 0)
                    .map(|(i, &(trace_id, value))| BucketExemplar {
                        le: bucket_upper(i),
                        trace_id,
                        value,
                    })
                    .collect();
                histograms.push(HistogramStat {
                    name: name.to_string(),
                    count: hist.count,
                    sum: hist.sum,
                    min: if hist.min.is_finite() { hist.min } else { 0.0 },
                    max: if hist.max.is_finite() { hist.max } else { 0.0 },
                    buckets,
                    exemplars,
                });
            }
        }
        spans.sort_by(|a, b| a.path.cmp(&b.path));
        counters.sort();
        gauges.sort();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            spans,
            counters,
            gauges,
            histograms,
        }
    }
}

struct Frame {
    path: String,
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for a timed region. Created by [`span`]; records on drop.
#[must_use = "a span measures the region it is alive for — bind it to a guard variable"]
pub struct Span {
    start: Option<Instant>,
}

/// Opens a span named `name`, nested under the innermost span already open
/// on this thread (paths join with `/`). No-op unless a recorder is
/// installed.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { start: None };
    }
    span_slow(name)
}

#[cold]
fn span_slow(name: &'static str) -> Span {
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{}/{}", parent.path, name),
            None => name.to_string(),
        };
        if crate::flight::flight_enabled() {
            let trace_id = current_trace().map_or(0, |c| c.trace_id);
            flight_event(FlightKind::SpanEnter, &path, trace_id, 0);
        }
        stack.push(Frame { path, child_ns: 0 });
    });
    Span {
        start: Some(Instant::now()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let total_ns = start.elapsed().as_nanos() as u64;
        let frame = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let frame = stack.pop();
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += total_ns;
            }
            frame
        });
        if let Some(frame) = frame {
            if crate::flight::flight_enabled() {
                let trace_id = current_trace().map_or(0, |c| c.trace_id);
                flight_event(FlightKind::SpanExit, &frame.path, trace_id, total_ns);
            }
            registry().record_span(
                frame.path,
                total_ns,
                total_ns.saturating_sub(frame.child_ns),
            );
        }
    }
}

/// Adds `delta` to the monotonic counter `name`. No-op when disabled.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    registry().add_counter(name, delta);
}

/// Records one observation of `value` into the histogram `name`. No-op when
/// disabled. Non-finite values count toward `count` but are excluded from
/// `sum`/`min`/`max` and land in the underflow bucket.
#[inline]
pub fn record(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    registry().record_value(name, value);
}

/// Sets the gauge `name` to `value` (last write wins). Gauges are
/// point-in-time levels — queue depth, in-flight requests — unlike the
/// monotonic [`counter`]. No-op when disabled.
#[inline]
pub fn gauge_set(name: &'static str, value: i64) {
    if !enabled() {
        return;
    }
    registry().set_gauge(name, value);
}

/// Adds `delta` (possibly negative) to the gauge `name`, creating it at 0
/// first. No-op when disabled.
#[inline]
pub fn gauge_add(name: &'static str, delta: i64) {
    if !enabled() {
        return;
    }
    registry().add_gauge(name, delta);
}

/// Runs `f` under a span named `name` and returns its result together with
/// the measured wall time. The duration is measured even when the recorder
/// is off, so callers can use it for always-on reporting (e.g. stage
/// latency breakdowns) without double-timing.
#[inline]
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = {
        let _guard = span(name);
        f()
    };
    (out, start.elapsed())
}

/// The registry, enabled flags and flight rings are process-global;
/// tests that touch them serialize on this lock.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_primitives_record_nothing() {
        let _guard = test_lock();
        uninstall_recorder();
        reset();
        {
            let _s = span("never");
            counter("never.count", 3);
            record("never.hist", 1.0);
        }
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn gauges_set_add_and_snapshot_sorted() {
        let _guard = test_lock();
        install_recorder();
        reset();
        gauge_set("g.depth", 4);
        gauge_set("g.depth", 7);
        gauge_add("g.in_flight", 3);
        gauge_add("g.in_flight", -1);
        gauge_add("g.a", -2);
        uninstall_recorder();
        let snap = snapshot();
        assert_eq!(
            snap.gauges,
            vec![
                ("g.a".to_string(), -2),
                ("g.depth".to_string(), 7),
                ("g.in_flight".to_string(), 2),
            ]
        );
        assert_eq!(snap.gauge("g.depth"), Some(7));
        assert_eq!(snap.gauge("missing"), None);
        // Disabled gauges record nothing.
        gauge_set("g.off", 1);
        assert_eq!(snapshot().gauge("g.off"), None);
    }

    #[test]
    fn nested_spans_build_paths_and_split_self_time() {
        let _guard = test_lock();
        install_recorder();
        reset();
        {
            let _outer = span("outer");
            std::hint::black_box(busy(200));
            {
                let _inner = span("inner");
                std::hint::black_box(busy(200));
            }
        }
        uninstall_recorder();
        let snap = snapshot();
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["outer", "outer/inner"]);
        let outer = &snap.spans[0];
        let inner = &snap.spans[1];
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.total_ns >= inner.total_ns, "parent covers child");
        assert!(
            outer.self_ns <= outer.total_ns,
            "self time excludes child time"
        );
        assert!(outer.min_ns <= outer.max_ns);
    }

    #[test]
    fn counters_accumulate_and_histograms_bucket() {
        let _guard = test_lock();
        install_recorder();
        reset();
        counter("c.a", 2);
        counter("c.a", 3);
        counter("c.b", 1);
        record("h", 0.5);
        record("h", 4.0);
        record("h", 4.5);
        record("h", f64::NAN);
        uninstall_recorder();
        let snap = snapshot();
        assert_eq!(
            snap.counters,
            vec![("c.a".to_string(), 5), ("c.b".to_string(), 1)]
        );
        assert_eq!(snap.histograms.len(), 1);
        let h = &snap.histograms[0];
        assert_eq!(h.count, 4);
        assert!((h.sum - 9.0).abs() < 1e-12);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 4.5);
        // 0.5 and NaN share the low buckets; 4.0 and 4.5 share one bucket.
        let total: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 4);
        assert!(h.buckets.iter().any(|&(ub, c)| c == 2 && ub == 8.0));
    }

    #[test]
    fn timed_returns_duration_even_when_disabled() {
        let _guard = test_lock();
        uninstall_recorder();
        let (out, dur) = timed("t", || busy(100));
        assert!(out > 0);
        assert!(dur.as_nanos() > 0 || dur.is_zero()); // just types/flow; no panic
        assert!(snapshot().spans.iter().all(|s| s.path != "t"));
    }

    #[test]
    fn bucket_index_is_monotone_and_clamped() {
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(f64::INFINITY), 0);
        let mut prev = 0;
        for e in -40..40 {
            let idx = bucket_index(2f64.powi(e) * 1.5);
            assert!(idx >= prev, "bucket index must be monotone in the value");
            assert!(idx < HIST_BUCKETS);
            prev = idx;
        }
        // A value sits strictly below its bucket's upper bound.
        let v = 100.0;
        assert!(v < bucket_upper(bucket_index(v)));
    }

    fn busy(n: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..n {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        acc | 1
    }
}
