//! Aggregated metrics: snapshot structs, the `--profile` tree renderer and
//! the hand-rolled JSON emitter (schema `ceps-obs/v1`).
//!
//! # JSON schema (`ceps-obs/v1`)
//!
//! ```json
//! {
//!   "schema": "ceps-obs/v1",
//!   "meta": {
//!     "git_sha": "abc123def456",
//!     "threads": 8,
//!     "preset": "medium",
//!     "timestamp": "2026-01-01T00:00:00Z",
//!     "label": "query"
//!   },
//!   "spans": [
//!     {"path": "query/stage.combine", "count": 1, "total_ms": 1.5,
//!      "self_ms": 1.5, "min_ms": 1.5, "max_ms": 1.5}
//!   ],
//!   "counters": {"rwr.solves": 1},
//!   "gauges": {"net.in_flight": 2},
//!   "histograms": [
//!     {"name": "rwr.iterations", "count": 3, "sum": 150.0, "min": 50.0,
//!      "max": 50.0, "buckets": [{"le": 64.0, "count": 3}],
//!      "exemplars": [{"le": 64.0, "trace_id": "00f1e2d3c4b5a697", "value": 50.0}]}
//!   ]
//! }
//! ```
//!
//! `spans` is sorted by path, `counters` and `gauges` by name (`gauges`
//! are point-in-time levels such as queue depth, not monotonic totals);
//! `buckets` lists only
//! non-empty log₂ buckets with their exclusive upper bound `le`. The file
//! is written next to `BENCH_*.json` under `results/` so per-stage cost
//! trajectories stay diffable across PRs. `exemplars` lists, per bucket
//! that ever saw a traced observation, the last contributing `trace_id`
//! (16-char hex — JSON numbers are f64 and cannot carry a full `u64`)
//! and the recorded value; it is empty unless requests ran with a
//! sampled [`TraceContext`](crate::TraceContext) active.
//!
//! # JSONL schema (`ceps-metrics/v1`)
//!
//! One object per line, appended by
//! [`MetricsExporter`](crate::MetricsExporter) on every flush:
//!
//! ```json
//! {"schema": "ceps-metrics/v1", "seq": 3, "unix_ms": 1767225600000,
//!  "interval_ms": 250, "window_s": 2.0,
//!  "counters": {"serve.requests": 128},
//!  "gauges": {"net.in_flight": 2},
//!  "rates": {"serve.requests": 64.0},
//!  "histograms": [
//!    {"name": "serve.latency_ms", "total_count": 128, "count": 16,
//!     "per_s": 8.0, "mean": 1.9, "p50": 1.7, "p90": 2.9, "p99": 3.6,
//!     "exemplars": [{"le": 4.0, "trace_id": "00f1e2d3c4b5a697",
//!                    "value": 3.6}]}
//!  ],
//!  "spans": [{"path": "serve.request", "count": 128, "total_ms": 240.0}]}
//! ```
//!
//! `counters` and `total_count` are cumulative since recorder install;
//! `rates`, `count`, `per_s` and the percentiles cover only the exporter's
//! snapshot window (`window_s` seconds). Until two snapshots exist,
//! `rates` is empty and histogram stats fall back to cumulative values.
//!
//! # JSONL schema (`ceps-trace/v1`)
//!
//! One object per sampled `serve_stream` request, appended by
//! `ceps_core::RequestTracer` (`ceps serve --trace-out`):
//!
//! ```json
//! {"schema": "ceps-trace/v1", "request_id": 42, "worker": 1,
//!  "queries": 3, "latency_ms": 2.4, "queue_ms": 0.1,
//!  "scores_ms": 1.5, "combine_ms": 0.2,
//!  "extract_ms": 0.6, "cache_hits": 2, "cache_misses": 1, "budget": 20,
//!  "paths": 17, "sampled": "head", "outcome": "ok"}
//! ```
//!
//! `sampled` is `"head"` (request id hashed under the `--trace-sample`
//! rate) or `"tail"` (latency above the tracer's windowed p99 estimate —
//! slow requests are always kept). `outcome` is `"ok"` or `"error"`.
//! `queue_ms` is the gap between frame decode and execution start
//! (admission/queue wait, charged to the server), `latency_ms` the
//! service time proper; 0 for in-process serving with no wire.
//! When a [`TraceContext`](crate::TraceContext) is active for the request
//! the line additionally carries `"trace_id": "<16-char hex>"`, letting
//! client- and server-side trace streams be joined on one id.
//!
//! # JSONL schema (`ceps-flight/v1`)
//!
//! One object per flight-recorder event, produced by
//! [`flight_dump`](crate::flight_dump) (`ceps serve --flight-out`, the
//! `DumpFlight` wire request, or the installed panic hook) — see
//! [`crate::flight`] for the ring-buffer semantics:
//!
//! ```json
//! {"schema": "ceps-flight/v1", "t_us": 12345, "thread": 1, "seq": 7,
//!  "kind": "span_exit", "name": "serve.request",
//!  "trace_id": "00f1e2d3c4b5a697", "value": 2400000}
//! ```

use std::fmt::Write as _;

use crate::meta::RunMeta;

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Full `/`-joined path, e.g. `"query/stage.extract"`.
    pub path: String,
    /// Number of times the span closed.
    pub count: u64,
    /// Total wall time across all closures, in nanoseconds.
    pub total_ns: u64,
    /// Total time minus time spent in child spans, in nanoseconds.
    pub self_ns: u64,
    /// Fastest single closure, in nanoseconds.
    pub min_ns: u64,
    /// Slowest single closure, in nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    /// Total time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }

    /// Self time in milliseconds.
    pub fn self_ms(&self) -> f64 {
        self.self_ns as f64 / 1e6
    }
}

/// The last traced observation that landed in one histogram bucket: a
/// concrete `trace_id` to chase when that bucket's count looks wrong.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketExemplar {
    /// Exclusive upper bound of the bucket the observation fell into.
    pub le: f64,
    /// `trace_id` of the request that recorded the observation (never 0).
    pub trace_id: u64,
    /// The recorded value itself.
    pub value: f64,
}

/// Aggregated statistics for one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramStat {
    /// Histogram name.
    pub name: String,
    /// Number of recorded observations (including non-finite ones).
    pub count: u64,
    /// Sum of all finite observations.
    pub sum: f64,
    /// Smallest finite observation (0 if none).
    pub min: f64,
    /// Largest finite observation (0 if none).
    pub max: f64,
    /// Non-empty log₂ buckets as `(exclusive upper bound, count)`.
    pub buckets: Vec<(f64, u64)>,
    /// Last traced observation per bucket, for buckets that saw one.
    /// Empty unless observations were recorded under a sampled
    /// [`TraceContext`](crate::TraceContext).
    pub exemplars: Vec<BucketExemplar>,
}

impl HistogramStat {
    /// Mean of the finite observations (0 if the histogram is empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `p`-th percentile from the log₂ bucket counts, using
    /// the same estimator as [`Histogram`](crate::Histogram): nearest-rank
    /// bucket selection, linear interpolation inside the bucket, clamped
    /// to the observed `[min, max]`. Returns 0 when empty.
    pub fn percentile_from_buckets(&self, p: f64) -> f64 {
        crate::window::estimate_percentile(&self.buckets, self.count, self.min, self.max, p)
    }

    /// The exemplar recorded for the bucket with upper bound `le`, if any.
    pub fn exemplar_for(&self, le: f64) -> Option<&BucketExemplar> {
        self.exemplars.iter().find(|e| e.le == le)
    }
}

/// A consistent copy of everything the registry has aggregated.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Span statistics, sorted by path.
    pub spans: Vec<SpanStat>,
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges (point-in-time levels), sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram statistics, sorted by name.
    pub histograms: Vec<HistogramStat>,
}

impl MetricsSnapshot {
    /// Looks up a span stat by exact path.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Renders the human-readable profile: an indented span tree with
    /// total/self times and call counts, followed by counters and
    /// histograms. This is what `--profile` prints.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>7} {:>11} {:>11}",
            "span", "count", "total ms", "self ms"
        );
        // Children attach to the longest strict prefix (up to the last '/')
        // that exists as a recorded span; everything else is a root.
        let mut order: Vec<usize> = Vec::with_capacity(self.spans.len());
        let mut depth: Vec<usize> = Vec::with_capacity(self.spans.len());
        let parent_of = |path: &str| -> Option<usize> {
            let cut = path.rfind('/')?;
            self.spans.iter().position(|s| s.path == path[..cut])
        };
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in self.spans.iter().enumerate() {
            match parent_of(&s.path) {
                Some(p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        let by_time = |ids: &mut Vec<usize>| {
            ids.sort_by(|&a, &b| self.spans[b].total_ns.cmp(&self.spans[a].total_ns))
        };
        by_time(&mut roots);
        let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
        while let Some((i, d)) = stack.pop() {
            order.push(i);
            depth.push(d);
            let mut kids = children[i].clone();
            by_time(&mut kids);
            for &k in kids.iter().rev() {
                stack.push((k, d + 1));
            }
        }
        for (&i, &d) in order.iter().zip(&depth) {
            let s = &self.spans[i];
            let name = if d == 0 {
                s.path.clone()
            } else {
                s.path.rsplit('/').next().unwrap_or(&s.path).to_string()
            };
            let _ = writeln!(
                out,
                "{:<44} {:>7} {:>11.3} {:>11.3}",
                format!("{}{}", "  ".repeat(d), name),
                s.count,
                s.total_ms(),
                s.self_ms(),
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {:<42} {:>20}", name, value);
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {:<42} {:>20}", name, value);
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<44} {:>7} {:>11} {:>11}",
                "histograms", "count", "mean", "max"
            );
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<42} {:>7} {:>11.3} {:>11.3}",
                    h.name,
                    h.count,
                    h.mean(),
                    h.max,
                );
            }
        }
        out
    }

    /// Serializes the snapshot with its run metadata to the `ceps-obs/v1`
    /// JSON document described in the module docs.
    pub fn to_json(&self, meta: &RunMeta) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"ceps-obs/v1\",\n  \"meta\": {");
        let _ = write!(
            out,
            "\"git_sha\": {}, \"threads\": {}, \"preset\": {}, \"timestamp\": {}, \"label\": {}}},\n",
            json_str(&meta.git_sha),
            meta.threads,
            json_str(&meta.preset),
            json_str(&meta.timestamp),
            json_str(&meta.label),
        );
        out.push_str("  \"spans\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"path\": {}, \"count\": {}, \"total_ms\": {}, \"self_ms\": {}, \"min_ms\": {}, \"max_ms\": {}}}",
                json_str(&s.path),
                s.count,
                json_f64(s.total_ms()),
                json_f64(s.self_ms()),
                json_f64(s.min_ns as f64 / 1e6),
                json_f64(s.max_ns as f64 / 1e6),
            );
            out.push_str(if i + 1 < self.spans.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {}", json_str(name), value);
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {}", json_str(name), value);
        }
        out.push_str("},\n  \"histograms\": [\n");
        for (i, h) in self.histograms.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": {}, \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                json_str(&h.name),
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max),
            );
            for (j, &(le, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{{\"le\": {}, \"count\": {}}}", json_f64(le), c);
            }
            out.push_str("], \"exemplars\": [");
            for (j, e) in h.exemplars.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"le\": {}, \"trace_id\": {}, \"value\": {}}}",
                    json_f64(e.le),
                    json_str(&crate::context::id_hex(e.trace_id)),
                    json_f64(e.value),
                );
            }
            out.push_str("]}");
            out.push_str(if i + 1 < self.histograms.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal (quotes included).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` so it is always a valid JSON number (non-finite values
/// collapse to 0).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            spans: vec![
                SpanStat {
                    path: "query".into(),
                    count: 1,
                    total_ns: 3_000_000,
                    self_ns: 500_000,
                    min_ns: 3_000_000,
                    max_ns: 3_000_000,
                },
                SpanStat {
                    path: "query/stage.combine".into(),
                    count: 1,
                    total_ns: 2_500_000,
                    self_ns: 2_500_000,
                    min_ns: 2_500_000,
                    max_ns: 2_500_000,
                },
            ],
            counters: vec![("rwr.solves".into(), 2)],
            gauges: vec![("net.in_flight".into(), 3)],
            histograms: vec![HistogramStat {
                name: "rwr.iterations".into(),
                count: 2,
                sum: 100.0,
                min: 50.0,
                max: 50.0,
                buckets: vec![(64.0, 2)],
                exemplars: vec![BucketExemplar {
                    le: 64.0,
                    trace_id: 0xdead_beef,
                    value: 50.0,
                }],
            }],
        }
    }

    #[test]
    fn tree_indents_children_under_parents() {
        let text = sample().render_tree();
        assert!(text.contains("query"));
        assert!(
            text.contains("\n  stage.combine"),
            "child indented by two spaces:\n{text}"
        );
        assert!(text.contains("rwr.solves"));
        assert!(text.contains("net.in_flight"));
        assert!(text.contains("rwr.iterations"));
    }

    #[test]
    fn json_has_schema_meta_and_balanced_braces() {
        let meta = RunMeta {
            git_sha: "deadbeef".into(),
            threads: 4,
            preset: "tiny".into(),
            timestamp: "2026-01-01T00:00:00Z".into(),
            label: "test \"quoted\"".into(),
        };
        let json = sample().to_json(&meta);
        assert!(json.contains("\"schema\": \"ceps-obs/v1\""));
        assert!(json.contains("\"git_sha\": \"deadbeef\""));
        assert!(json.contains("\"gauges\": {\"net.in_flight\": 3}"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(
            json.contains("\"trace_id\": \"00000000deadbeef\""),
            "exemplar trace id rendered as fixed-width hex:\n{json}"
        );
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "balanced brackets:\n{json}");
    }

    #[test]
    fn accessors_find_by_name() {
        let snap = sample();
        assert_eq!(snap.counter("rwr.solves"), Some(2));
        assert!(snap.span("query/stage.combine").is_some());
        assert!(snap.span("missing").is_none());
        assert_eq!(snap.histograms[0].mean(), 50.0);
        let ex = snap.histograms[0].exemplar_for(64.0).expect("exemplar");
        assert_eq!(ex.trace_id, 0xdead_beef);
        assert!(snap.histograms[0].exemplar_for(128.0).is_none());
    }
}
