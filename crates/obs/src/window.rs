//! Windowed metrics and the continuous exporter.
//!
//! [`MetricsSnapshot`](crate::MetricsSnapshot) is a *cumulative* view: every
//! counter and histogram has grown since the recorder was installed. A live
//! serving process needs the other view — "what happened in the last few
//! seconds" — so this module adds:
//!
//! * [`Histogram`] — a standalone 64-bucket log₂ histogram with
//!   [`Histogram::percentile_from_buckets`], the estimator the tail-sampler
//!   and the windowed rates share (the registry's internal histograms use
//!   the identical bucket layout).
//! * [`WindowedMetrics`] — a bounded ring of timestamped registry
//!   snapshots with [`WindowedMetrics::delta`] computing counter deltas,
//!   per-second rates, and percentiles over only the observations that
//!   arrived inside the window.
//! * [`MetricsExporter`] — a background thread that snapshots the registry
//!   every N ms and flushes to two sinks: a Prometheus text-exposition file
//!   ([`to_prometheus`]) rewritten on every flush, and an append-only JSONL
//!   event stream ([`metrics_event_json`], schema `ceps-metrics/v1` — see
//!   [`crate::snapshot`] for the schema catalogue). Dropping the exporter
//!   performs one final flush, so the `.prom` file always matches the final
//!   registry state. The window is seeded with a baseline snapshot when the
//!   exporter starts, so even a process that exits inside its first flush
//!   interval reports rates for the work it did — the final window delta is
//!   never lost.
//!
//! Histogram buckets that saw an observation under a sampled
//! [`TraceContext`](crate::TraceContext) carry *exemplars* — the last
//! contributing `trace_id` — exported in OpenMetrics exemplar syntax on
//! `_bucket` lines (`... # {trace_id="<hex>"} <value>`) and as an
//! `exemplars` array per histogram in the JSONL events, so a p99 spike
//! names a concrete trace to chase in the `ceps-trace/v1` /
//! `ceps-flight/v1` streams.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::context::id_hex;
use crate::registry::{bucket_index, bucket_upper, HIST_BUCKETS};
use crate::snapshot::{json_f64, json_str, BucketExemplar, MetricsSnapshot};

/// A standalone fixed-bucket log₂ histogram over positive `f64` values,
/// bucket-compatible with the registry's internal histograms (64 buckets
/// spanning `[2⁻³², 2³²)`, under-/overflow clamped to the edge buckets).
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation. Non-finite values count toward `count` but
    /// are excluded from `sum`/`min`/`max` and land in the underflow bucket.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.buckets[bucket_index(value)] += 1;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the finite observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `p`-th percentile from the bucket counts.
    ///
    /// Nearest-rank into the bucketed CDF with linear interpolation inside
    /// the selected bucket, clamped to the observed `[min, max]` range —
    /// the estimate always lands within the selected bucket's bounds.
    /// Returns 0 when empty; `p <= 0` returns the minimum, `p >= 100` (and
    /// non-finite `p`) the maximum.
    pub fn percentile_from_buckets(&self, p: f64) -> f64 {
        let sparse: Vec<(f64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect();
        estimate_percentile(&sparse, self.count, self.min, self.max, p)
    }
}

/// Percentile estimation over sparse `(exclusive upper bound, count)` log₂
/// buckets: nearest-rank selection of the bucket, linear interpolation
/// within it, clamped to `[min, max]` when those are finite.
///
/// This is the single estimator shared by [`Histogram`],
/// [`crate::HistogramStat::percentile_from_buckets`] and the windowed
/// deltas, so p99s agree no matter which surface computed them.
pub(crate) fn estimate_percentile(
    buckets: &[(f64, u64)],
    total: u64,
    min: f64,
    max: f64,
    p: f64,
) -> f64 {
    if total == 0 || buckets.is_empty() {
        return 0.0;
    }
    let lo = if min.is_finite() { min } else { 0.0 };
    let hi = if max.is_finite() {
        max
    } else {
        buckets.last().map_or(0.0, |&(ub, _)| ub)
    };
    if !p.is_finite() || p >= 100.0 {
        return hi;
    }
    if p <= 0.0 {
        return lo;
    }
    let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for &(ub, c) in buckets {
        if cum + c >= rank {
            // Log₂ bucket i spans [ub/2, ub); interpolate by rank position.
            let lb = ub / 2.0;
            let frac = (rank - cum) as f64 / c as f64;
            let est = lb + (ub - lb) * frac;
            return est.clamp(lo.min(ub), hi.min(ub)).max(lb.min(hi));
        }
        cum += c;
    }
    hi
}

/// One timestamped snapshot inside a [`WindowedMetrics`] ring.
#[derive(Debug, Clone)]
struct WindowEntry {
    /// Monotonic seconds since the window was created.
    t_s: f64,
    snap: MetricsSnapshot,
}

/// A bounded ring of timestamped registry snapshots with delta/rate
/// computation between the oldest and newest retained snapshot.
#[derive(Debug)]
pub struct WindowedMetrics {
    capacity: usize,
    epoch: Instant,
    ring: VecDeque<WindowEntry>,
}

impl WindowedMetrics {
    /// A window retaining the last `capacity` snapshots (clamped to ≥ 2 so
    /// a delta is eventually computable).
    pub fn new(capacity: usize) -> Self {
        WindowedMetrics {
            capacity: capacity.max(2),
            epoch: Instant::now(),
            ring: VecDeque::new(),
        }
    }

    /// Pushes a snapshot stamped with the current monotonic clock.
    pub fn push(&mut self, snap: MetricsSnapshot) {
        let t_s = self.epoch.elapsed().as_secs_f64();
        self.push_at(t_s, snap);
    }

    /// Pushes a snapshot with an explicit timestamp (seconds on any
    /// monotone clock). Exposed so tests can pin window durations.
    pub fn push_at(&mut self, t_s: f64, snap: MetricsSnapshot) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(WindowEntry { t_s, snap });
    }

    /// Snapshots currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no snapshot has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The most recently pushed snapshot.
    pub fn latest(&self) -> Option<&MetricsSnapshot> {
        self.ring.back().map(|e| &e.snap)
    }

    /// Deltas and rates between the oldest and newest retained snapshots,
    /// or `None` until two snapshots exist.
    pub fn delta(&self) -> Option<WindowDelta> {
        let (old, new) = match (self.ring.front(), self.ring.back()) {
            (Some(a), Some(b)) if self.ring.len() >= 2 => (a, b),
            _ => return None,
        };
        let span_s = (new.t_s - old.t_s).max(0.0);
        let rate = |delta: u64| {
            if span_s > 0.0 {
                delta as f64 / span_s
            } else {
                0.0
            }
        };

        let counters = new
            .snap
            .counters
            .iter()
            .map(|(name, value)| {
                let base = old.snap.counter(name).unwrap_or(0);
                let delta = value.saturating_sub(base);
                CounterRate {
                    name: name.clone(),
                    delta,
                    per_s: rate(delta),
                }
            })
            .collect();

        let histograms = new
            .snap
            .histograms
            .iter()
            .map(|h| {
                let base = old.snap.histograms.iter().find(|o| o.name == h.name);
                let base_count = base.map_or(0, |o| o.count);
                let base_sum = base.map_or(0.0, |o| o.sum);
                let count = h.count.saturating_sub(base_count);
                // Per-bucket deltas over the window; bounds come from the
                // cumulative snapshot (the window does not retrack min/max,
                // so percentile clamping is slightly loose, never wrong-
                // bucket).
                let buckets: Vec<(f64, u64)> = h
                    .buckets
                    .iter()
                    .map(|&(le, c)| {
                        let b = base
                            .and_then(|o| o.buckets.iter().find(|&&(l, _)| l == le))
                            .map_or(0, |&(_, c0)| c0);
                        (le, c.saturating_sub(b))
                    })
                    .filter(|&(_, c)| c > 0)
                    .collect();
                let pct = |p: f64| estimate_percentile(&buckets, count, h.min, h.max, p);
                // Tail exemplar: the highest bucket that grew inside the
                // window and remembers a trace — the request to chase when
                // the windowed p99 looks wrong. Falls back to the highest
                // cumulative exemplar so an id survives quiet windows.
                let exemplar = buckets
                    .iter()
                    .rev()
                    .find_map(|&(le, _)| h.exemplar_for(le).copied())
                    .or_else(|| h.exemplars.last().copied());
                HistogramWindow {
                    name: h.name.clone(),
                    count,
                    per_s: rate(count),
                    mean: if count == 0 {
                        0.0
                    } else {
                        (h.sum - base_sum) / count as f64
                    },
                    p50: pct(50.0),
                    p90: pct(90.0),
                    p99: pct(99.0),
                    exemplar,
                }
            })
            .collect();

        Some(WindowDelta {
            span_s,
            counters,
            histograms,
        })
    }
}

/// What changed between the two ends of a [`WindowedMetrics`] ring.
#[derive(Debug, Clone)]
pub struct WindowDelta {
    /// Window duration in seconds.
    pub span_s: f64,
    /// Per-counter delta and per-second rate over the window.
    pub counters: Vec<CounterRate>,
    /// Per-histogram windowed count, rate, mean and percentiles.
    pub histograms: Vec<HistogramWindow>,
}

impl WindowDelta {
    /// Looks up a counter's windowed rate by name.
    pub fn counter(&self, name: &str) -> Option<&CounterRate> {
        self.counters.iter().find(|c| c.name == name)
    }

    /// Looks up a histogram's windowed stats by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramWindow> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Windowed view of one counter.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterRate {
    /// Counter name.
    pub name: String,
    /// Increase over the window.
    pub delta: u64,
    /// Increase per second over the window.
    pub per_s: f64,
}

/// Windowed view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramWindow {
    /// Histogram name.
    pub name: String,
    /// Observations recorded inside the window.
    pub count: u64,
    /// Observations per second over the window.
    pub per_s: f64,
    /// Mean of the window's observations (0 when none).
    pub mean: f64,
    /// Estimated 50th percentile of the window's observations.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Exemplar from the highest bucket that grew inside the window (the
    /// tail request to chase), falling back to the highest cumulative
    /// exemplar; `None` when no traced observation was ever recorded.
    pub exemplar: Option<BucketExemplar>,
}

/// Sanitizes a metric name into the Prometheus charset with the `ceps_`
/// prefix: every character outside `[a-zA-Z0-9_]` becomes `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("ceps_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' {
            c
        } else {
            '_'
        });
    }
    out
}

/// Escapes a Prometheus label value (`\` → `\\`, `"` → `\"`, newline →
/// `\n`).
fn prom_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` for a Prometheus sample value (non-finite collapses to
/// 0, mirroring the JSON emitters).
fn prom_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Renders a snapshot in Prometheus text-exposition format.
///
/// Counters export as `counter`, gauges as `gauge`, histograms as cumulative-bucket
/// `histogram` (`_bucket{le=...}` / `_sum` / `_count`), and span
/// aggregates as two labelled counters, `ceps_span_calls{path=...}` and
/// `ceps_span_seconds{path=...}`. All metric names carry the `ceps_`
/// prefix and are sanitized to the Prometheus charset. Buckets with a
/// recorded exemplar append it in OpenMetrics syntax:
/// `..._bucket{le="8"} 3 # {trace_id="00f1e2d3c4b5a697"} 5.2`.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(2048);
    for (name, value) in &snap.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snap.gauges {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {value}");
    }
    for h in &snap.histograms {
        let n = prom_name(&h.name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for &(le, c) in &h.buckets {
            cum += c;
            let _ = write!(out, "{n}_bucket{{le=\"{}\"}} {cum}", prom_f64(le));
            if let Some(e) = h.exemplar_for(le) {
                let _ = write!(
                    out,
                    " # {{trace_id=\"{}\"}} {}",
                    id_hex(e.trace_id),
                    prom_f64(e.value)
                );
            }
            out.push('\n');
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", prom_f64(h.sum));
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    if !snap.spans.is_empty() {
        out.push_str("# TYPE ceps_span_calls counter\n");
        for s in &snap.spans {
            let _ = writeln!(
                out,
                "ceps_span_calls{{path=\"{}\"}} {}",
                prom_label(&s.path),
                s.count
            );
        }
        out.push_str("# TYPE ceps_span_seconds counter\n");
        for s in &snap.spans {
            let _ = writeln!(
                out,
                "ceps_span_seconds{{path=\"{}\"}} {}",
                prom_label(&s.path),
                prom_f64(s.total_ns as f64 / 1e9)
            );
        }
    }
    out
}

/// Serializes one exporter flush as a single-line `ceps-metrics/v1` JSON
/// event (see [`crate::snapshot`] for the schema catalogue).
///
/// `counters` carries the cumulative values from `snap`; `rates` and the
/// histogram percentiles come from `delta` when a window is available
/// (before two snapshots exist, `rates` is empty and histograms fall back
/// to cumulative percentiles).
pub fn metrics_event_json(
    snap: &MetricsSnapshot,
    delta: Option<&WindowDelta>,
    seq: u64,
    unix_ms: u64,
    interval_ms: u64,
) -> String {
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"schema\": \"ceps-metrics/v1\", \"seq\": {seq}, \"unix_ms\": {unix_ms}, \
         \"interval_ms\": {interval_ms}, \"window_s\": {}, \"counters\": {{",
        json_f64(delta.map_or(0.0, |d| d.span_s)),
    );
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", json_str(name), value);
    }
    out.push_str("}, \"gauges\": {");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", json_str(name), value);
    }
    out.push_str("}, \"rates\": {");
    if let Some(delta) = delta {
        for (i, c) in delta.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {}", json_str(&c.name), json_f64(c.per_s));
        }
    }
    out.push_str("}, \"histograms\": [");
    for (i, h) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let windowed = delta.and_then(|d| d.histogram(&h.name));
        let (count, per_s, mean, p50, p90, p99) = match windowed {
            Some(w) => (w.count, w.per_s, w.mean, w.p50, w.p90, w.p99),
            None => (
                h.count,
                0.0,
                h.mean(),
                h.percentile_from_buckets(50.0),
                h.percentile_from_buckets(90.0),
                h.percentile_from_buckets(99.0),
            ),
        };
        let _ = write!(
            out,
            "{{\"name\": {}, \"total_count\": {}, \"count\": {count}, \"per_s\": {}, \
             \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"exemplars\": [",
            json_str(&h.name),
            h.count,
            json_f64(per_s),
            json_f64(mean),
            json_f64(p50),
            json_f64(p90),
            json_f64(p99),
        );
        for (j, e) in h.exemplars.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"le\": {}, \"trace_id\": {}, \"value\": {}}}",
                json_f64(e.le),
                json_str(&id_hex(e.trace_id)),
                json_f64(e.value),
            );
        }
        out.push_str("]}");
    }
    out.push_str("], \"spans\": [");
    for (i, s) in snap.spans.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"path\": {}, \"count\": {}, \"total_ms\": {}}}",
            json_str(&s.path),
            s.count,
            json_f64(s.total_ms()),
        );
    }
    out.push_str("]}");
    out
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// Configuration for a [`MetricsExporter`].
#[derive(Debug, Clone)]
pub struct ExporterConfig {
    /// Flush period.
    pub interval: Duration,
    /// Prometheus text-exposition file, rewritten atomically-enough (full
    /// truncate + write) on every flush. `None` disables the sink.
    pub prom_path: Option<PathBuf>,
    /// Append-only `ceps-metrics/v1` JSONL event stream. `None` disables
    /// the sink.
    pub events_path: Option<PathBuf>,
    /// Snapshots retained for windowed rates (default 8 → the window spans
    /// roughly `8 × interval`).
    pub window: usize,
}

impl ExporterConfig {
    /// A config flushing every `interval_ms` milliseconds with no sinks
    /// yet; add them with [`ExporterConfig::prom`] /
    /// [`ExporterConfig::events`].
    pub fn new(interval_ms: u64) -> Self {
        ExporterConfig {
            interval: Duration::from_millis(interval_ms.max(1)),
            prom_path: None,
            events_path: None,
            window: 8,
        }
    }

    /// Sets the Prometheus sink.
    #[must_use]
    pub fn prom(mut self, path: impl Into<PathBuf>) -> Self {
        self.prom_path = Some(path.into());
        self
    }

    /// Sets the JSONL event-stream sink.
    #[must_use]
    pub fn events(mut self, path: impl Into<PathBuf>) -> Self {
        self.events_path = Some(path.into());
        self
    }
}

/// Background thread flushing periodic registry snapshots to the
/// configured sinks. Stops — after one final flush — when dropped, so the
/// sinks always reflect the final registry state.
///
/// The exporter only *reads* the global registry; install the recorder
/// ([`crate::install_recorder`]) before starting it or every flush will be
/// empty. No thread exists unless one of these is constructed.
#[derive(Debug)]
pub struct MetricsExporter {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl MetricsExporter {
    /// Creates the sink files (truncating an existing `.prom`, creating an
    /// empty event stream) and starts the flush thread.
    ///
    /// # Errors
    /// I/O errors creating parent directories or opening either sink.
    pub fn start(config: ExporterConfig) -> io::Result<MetricsExporter> {
        for path in [&config.prom_path, &config.events_path]
            .into_iter()
            .flatten()
        {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    fs::create_dir_all(parent)?;
                }
            }
        }
        if let Some(p) = &config.prom_path {
            fs::write(p, "")?;
        }
        let events = config
            .events_path
            .as_deref()
            .map(|p: &Path| fs::OpenOptions::new().create(true).append(true).open(p))
            .transpose()?;

        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("ceps-metrics-exporter".into())
            .spawn(move || run_exporter(&config, events, &thread_stop))?;
        Ok(MetricsExporter {
            stop,
            handle: Some(handle),
        })
    }

    /// Stops the flush thread after one final flush (same as dropping).
    pub fn stop(self) {}
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The exporter thread body: flush every `config.interval`, polling the
/// stop flag at fine granularity so shutdown is prompt, then flush once
/// more on the way out.
///
/// The window is seeded with a baseline snapshot *before* the first wait,
/// not at the end of the first interval. Without the seed, a server that
/// receives `Shutdown` inside its first interval would reach the final
/// flush with a single-snapshot window — no delta, so the JSONL event for
/// the whole (short) life of the process would report empty `rates` and
/// cumulative-only percentiles. Seeding makes the final window delta span
/// start→exit in the worst case instead of vanishing.
fn run_exporter(config: &ExporterConfig, mut events: Option<fs::File>, stop: &AtomicBool) {
    let mut window = WindowedMetrics::new(config.window);
    window.push(crate::snapshot());
    let mut seq = 0u64;
    let poll = Duration::from_millis(10).min(config.interval);
    loop {
        let mut waited = Duration::ZERO;
        while waited < config.interval && !stop.load(Ordering::Relaxed) {
            thread::sleep(poll);
            waited += poll;
        }
        let stopping = stop.load(Ordering::Relaxed);
        flush_once(config, &mut events, &mut window, seq);
        seq += 1;
        if stopping {
            return;
        }
    }
}

/// One flush: snapshot the registry, update the window, rewrite the
/// Prometheus file and append one JSONL event. Sink I/O errors are logged
/// (once per flush) rather than crashing the serving process.
fn flush_once(
    config: &ExporterConfig,
    events: &mut Option<fs::File>,
    window: &mut WindowedMetrics,
    seq: u64,
) {
    let snap = crate::snapshot();
    window.push(snap.clone());
    let delta = window.delta();
    if let Some(path) = &config.prom_path {
        if let Err(e) = fs::write(path, to_prometheus(&snap)) {
            crate::warn!("metrics exporter: cannot write {}: {e}", path.display());
        }
    }
    if let Some(file) = events {
        let line = metrics_event_json(
            &snap,
            delta.as_ref(),
            seq,
            unix_ms_now(),
            config.interval.as_millis() as u64,
        );
        if let Err(e) = writeln!(file, "{line}").and_then(|()| file.flush()) {
            crate::warn!("metrics exporter: cannot append event: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{HistogramStat, SpanStat};

    fn uniform_hist(values: impl IntoIterator<Item = f64>) -> Histogram {
        let mut h = Histogram::new();
        for v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn percentiles_on_uniform_distribution_land_in_bucket_bounds() {
        // 1..=1024 uniformly: exact percentiles are p/100 * 1024.
        let h = uniform_hist((1..=1024).map(f64::from));
        for p in [10.0f64, 25.0, 50.0, 75.0, 90.0, 99.0] {
            let exact = (p / 100.0 * 1024.0).ceil();
            let est = h.percentile_from_buckets(p);
            // The estimate must land inside the log₂ bucket holding the
            // exact nearest-rank value: [2^floor(log2 v), 2^(floor+1)).
            let lb = 2f64.powi(exact.log2().floor() as i32);
            assert!(
                est >= lb && est <= lb * 2.0,
                "p{p}: estimate {est} outside bucket [{lb}, {}] of exact {exact}",
                lb * 2.0
            );
        }
        assert_eq!(h.percentile_from_buckets(0.0), 1.0, "p0 is the minimum");
        assert_eq!(h.percentile_from_buckets(-3.0), 1.0);
        assert_eq!(h.percentile_from_buckets(100.0), 1024.0, "p100 is the max");
        assert_eq!(h.percentile_from_buckets(f64::NAN), 1024.0);
    }

    #[test]
    fn percentiles_on_bimodal_distribution_pick_the_right_mode() {
        // 90 observations near 1.5, 10 near 1000: p50 must sit in the low
        // mode's bucket, p99 in the high mode's.
        let h = uniform_hist(
            std::iter::repeat(1.5)
                .take(90)
                .chain(std::iter::repeat(1000.0).take(10)),
        );
        let p50 = h.percentile_from_buckets(50.0);
        assert!((1.0..2.0).contains(&p50), "p50 {p50} not in low bucket");
        let p99 = h.percentile_from_buckets(99.0);
        assert!(
            (512.0..1024.0).contains(&p99),
            "p99 {p99} not in high bucket"
        );
        // The crossover boundary: p90's rank is the low mode's last
        // observation, so interpolation tops out at the bucket edge.
        assert!(h.percentile_from_buckets(90.0) <= 2.0);
        assert!(h.percentile_from_buckets(91.0) > 512.0);
    }

    #[test]
    fn percentiles_on_single_bucket_stay_within_observed_range() {
        let h = uniform_hist([4.0, 4.5, 5.0, 7.9]);
        for p in [1.0, 50.0, 99.0] {
            let est = h.percentile_from_buckets(p);
            assert!(
                (4.0..=7.9).contains(&est),
                "p{p}: {est} outside observed [4, 7.9]"
            );
        }
        assert_eq!(h.percentile_from_buckets(0.0), 4.0);
        assert_eq!(h.percentile_from_buckets(100.0), 7.9);
    }

    #[test]
    fn empty_histogram_is_zero_everywhere() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        for p in [0.0, 50.0, 100.0, f64::NAN] {
            assert_eq!(h.percentile_from_buckets(p), 0.0);
        }
    }

    fn snap(counter: u64, hist_values: &[f64]) -> MetricsSnapshot {
        let mut h = Histogram::new();
        for &v in hist_values {
            h.record(v);
        }
        let buckets = h
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect();
        MetricsSnapshot {
            spans: vec![SpanStat {
                path: "serve.request".into(),
                count: counter,
                total_ns: counter * 1_000_000,
                self_ns: counter * 1_000_000,
                min_ns: 1_000_000,
                max_ns: 1_000_000,
            }],
            counters: vec![("serve.requests".into(), counter)],
            gauges: Vec::new(),
            histograms: vec![HistogramStat {
                name: "serve.latency_ms".into(),
                count: h.count,
                sum: h.sum,
                min: if h.min.is_finite() { h.min } else { 0.0 },
                max: if h.max.is_finite() { h.max } else { 0.0 },
                buckets,
                exemplars: Vec::new(),
            }],
        }
    }

    #[test]
    fn window_deltas_compute_rates_and_windowed_percentiles() {
        let mut w = WindowedMetrics::new(4);
        assert!(w.delta().is_none(), "no delta before two snapshots");
        w.push_at(0.0, snap(10, &[1.0, 1.0, 1.0]));
        assert!(w.delta().is_none());
        w.push_at(2.0, snap(30, &[1.0, 1.0, 1.0, 64.0, 64.0, 80.0]));
        let d = w.delta().expect("two snapshots give a delta");
        assert_eq!(d.span_s, 2.0);
        let c = d.counter("serve.requests").unwrap();
        assert_eq!(c.delta, 20);
        assert_eq!(c.per_s, 10.0);
        let h = d.histogram("serve.latency_ms").unwrap();
        assert_eq!(h.count, 3, "only the window's observations count");
        assert_eq!(h.per_s, 1.5);
        // All three windowed observations sit in the [64, 128) bucket, so
        // every percentile must land there — the cumulative p50 would not.
        for p in [h.p50, h.p90, h.p99] {
            assert!((64.0..=128.0).contains(&p), "windowed percentile {p}");
        }
        assert!((h.mean - (64.0 + 64.0 + 80.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn window_ring_is_bounded_and_drops_the_oldest() {
        let mut w = WindowedMetrics::new(2);
        for i in 0..5u64 {
            w.push_at(i as f64, snap(i * 10, &[]));
        }
        assert_eq!(w.len(), 2);
        let d = w.delta().unwrap();
        assert_eq!(d.span_s, 1.0, "window spans only the retained pair");
        assert_eq!(d.counter("serve.requests").unwrap().delta, 10);
        assert_eq!(w.latest().unwrap().counter("serve.requests"), Some(40));
    }

    #[test]
    fn prometheus_rendering_has_types_escapes_and_cumulative_buckets() {
        let mut s = snap(3, &[1.0, 1.0, 70.0]);
        s.spans[0].path = "a\"b\\c\nd".into();
        let text = to_prometheus(&s);
        assert!(text.contains("# TYPE ceps_serve_requests counter"));
        assert!(text.contains("ceps_serve_requests 3"));
        assert!(text.contains("# TYPE ceps_serve_latency_ms histogram"));
        assert!(text.contains("ceps_serve_latency_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("ceps_serve_latency_ms_count 3"));
        assert!(text.contains("ceps_serve_latency_ms_sum 72"));
        assert!(
            text.contains("{path=\"a\\\"b\\\\c\\nd\"}"),
            "label escaping:\n{text}"
        );
        // Buckets are cumulative: the last `le` bound carries the total.
        let cum: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("_bucket{le=") && !l.contains("+Inf"))
            .collect();
        assert_eq!(cum.len(), 2);
        assert!(cum[0].ends_with(" 2") && cum[1].ends_with(" 3"), "{cum:?}");
    }

    #[test]
    fn prometheus_and_event_json_render_gauges() {
        let mut s = snap(1, &[]);
        s.gauges = vec![("net.in_flight".into(), 2), ("net.queue_depth".into(), 0)];
        let text = to_prometheus(&s);
        assert!(text.contains("# TYPE ceps_net_in_flight gauge"));
        assert!(text.contains("ceps_net_in_flight 2"));
        assert!(text.contains("ceps_net_queue_depth 0"));
        let line = metrics_event_json(&s, None, 0, 0, 250);
        assert!(
            line.contains("\"gauges\": {\"net.in_flight\": 2, \"net.queue_depth\": 0}"),
            "gauges in the metrics event:\n{line}"
        );
        let opens = line.matches(['{', '[']).count();
        let closes = line.matches(['}', ']']).count();
        assert_eq!(opens, closes, "balanced:\n{line}");
    }

    #[test]
    fn prometheus_bucket_lines_carry_exemplars() {
        let mut s = snap(3, &[1.0, 1.0, 70.0]);
        s.histograms[0].exemplars = vec![BucketExemplar {
            le: 128.0,
            trace_id: 0xabc,
            value: 70.0,
        }];
        let text = to_prometheus(&s);
        assert!(
            text.contains(
                "ceps_serve_latency_ms_bucket{le=\"128\"} 3 # {trace_id=\"0000000000000abc\"} 70"
            ),
            "exemplar on the tail bucket line:\n{text}"
        );
        // The low bucket has no exemplar — its line ends with the count.
        assert!(text.contains("ceps_serve_latency_ms_bucket{le=\"2\"} 2\n"));
        // +Inf never carries one.
        assert!(text.contains("_bucket{le=\"+Inf\"} 3\n"));
    }

    #[test]
    fn windowed_exemplar_points_at_tail_bucket_of_the_window() {
        let mut w = WindowedMetrics::new(4);
        let mut a = snap(10, &[1.0, 1.0]);
        a.histograms[0].exemplars = vec![BucketExemplar {
            le: 2.0,
            trace_id: 0x111,
            value: 1.0,
        }];
        w.push_at(0.0, a);
        let mut b = snap(30, &[1.0, 1.0, 70.0]);
        b.histograms[0].exemplars = vec![
            BucketExemplar {
                le: 2.0,
                trace_id: 0x111,
                value: 1.0,
            },
            BucketExemplar {
                le: 128.0,
                trace_id: 0x999,
                value: 70.0,
            },
        ];
        w.push_at(1.0, b);
        let d = w.delta().unwrap();
        let h = d.histogram("serve.latency_ms").unwrap();
        // Only the 70.0 observation arrived in the window; the windowed
        // exemplar must name its trace, not the stale low-bucket one.
        assert_eq!(h.count, 1);
        assert_eq!(h.exemplar.map(|e| e.trace_id), Some(0x999));
    }

    #[test]
    fn metrics_event_is_single_line_json_with_schema() {
        let mut w = WindowedMetrics::new(4);
        w.push_at(0.0, snap(0, &[]));
        w.push_at(1.0, snap(5, &[2.0]));
        let line = metrics_event_json(w.latest().unwrap(), w.delta().as_ref(), 7, 123, 250);
        assert!(!line.contains('\n'), "must be one JSONL line");
        assert!(line.starts_with("{\"schema\": \"ceps-metrics/v1\""));
        assert!(line.contains("\"seq\": 7"));
        assert!(line.contains("\"interval_ms\": 250"));
        assert!(line.contains("\"serve.requests\": 5"));
        let opens = line.matches(['{', '[']).count();
        let closes = line.matches(['}', ']']).count();
        assert_eq!(opens, closes, "balanced:\n{line}");
    }

    #[test]
    fn exporter_flushes_on_drop_and_appends_events() {
        let dir = std::env::temp_dir().join("ceps_obs_exporter_test");
        let _ = fs::remove_dir_all(&dir);
        let prom = dir.join("m.prom");
        let events = dir.join("m.jsonl");
        {
            let _exporter =
                MetricsExporter::start(ExporterConfig::new(5).prom(&prom).events(&events)).unwrap();
            thread::sleep(Duration::from_millis(30));
        } // drop → final flush
        let text = fs::read_to_string(&prom).unwrap();
        // Registry may be empty (no recorder in this test) — the file still
        // exists and is valid (possibly zero metrics).
        assert!(text.is_empty() || text.contains("# TYPE"));
        let events_text = fs::read_to_string(&events).unwrap();
        assert!(
            events_text.lines().count() >= 2,
            "periodic + final flush: {events_text:?}"
        );
        for line in events_text.lines() {
            assert!(line.starts_with("{\"schema\": \"ceps-metrics/v1\""));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_event_histograms_carry_exemplars() {
        let mut s = snap(3, &[1.0, 1.0, 70.0]);
        s.histograms[0].exemplars = vec![BucketExemplar {
            le: 128.0,
            trace_id: 0xfeed,
            value: 70.0,
        }];
        let line = metrics_event_json(&s, None, 0, 0, 250);
        assert!(
            line.contains(
                "\"exemplars\": [{\"le\": 128, \"trace_id\": \"000000000000feed\", \"value\": 70}]"
            ),
            "exemplar array in histogram event:\n{line}"
        );
        assert!(!line.contains('\n'));
        let opens = line.matches(['{', '[']).count();
        let closes = line.matches(['}', ']']).count();
        assert_eq!(opens, closes, "balanced:\n{line}");
    }

    #[test]
    fn final_flush_on_fast_shutdown_keeps_window_delta_and_matches_registry() {
        // A server that takes a `Shutdown` inside the exporter's first
        // interval must still report rates for the work it did: the window
        // is seeded at start, so the final delta spans start→exit instead
        // of not existing. Interval is set far beyond the test's lifetime
        // so the *only* sink writes are the final flush on drop.
        let _guard = crate::registry::test_lock();
        let dir = std::env::temp_dir().join("ceps_obs_fast_shutdown_test");
        let _ = fs::remove_dir_all(&dir);
        let prom = dir.join("m.prom");
        let events = dir.join("m.jsonl");
        crate::install_recorder();
        crate::reset();
        {
            let exporter =
                MetricsExporter::start(ExporterConfig::new(60_000).prom(&prom).events(&events))
                    .unwrap();
            // Work arrives after the exporter started (baseline seeded).
            crate::counter("serve.requests", 7);
            crate::record("serve.latency_ms", 3.5);
            drop(exporter); // "Shutdown" long before the first interval.
        }
        let final_prom = fs::read_to_string(&prom).unwrap();
        let registry_prom = to_prometheus(&crate::snapshot());
        crate::uninstall_recorder();
        assert_eq!(
            final_prom, registry_prom,
            "final .prom must match the registry snapshot exactly"
        );
        assert!(final_prom.contains("ceps_serve_requests 7"));
        let events_text = fs::read_to_string(&events).unwrap();
        let last = events_text.lines().last().expect("final event written");
        assert!(
            !last.contains("\"rates\": {}"),
            "final event must carry the last window delta:\n{last}"
        );
        assert!(last.contains("\"serve.requests\": 7"));
        let _ = fs::remove_dir_all(&dir);
    }
}
