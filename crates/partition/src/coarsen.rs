//! Graph contraction and the coarsening hierarchy.

use ceps_graph::{CsrGraph, GraphBuilder, NodeId};

use crate::matching::{heavy_edge_matching, Matching};

/// One level of the coarsening hierarchy.
#[derive(Debug, Clone)]
pub struct Level {
    /// The graph at this level.
    pub graph: CsrGraph,
    /// How many *original* nodes each node at this level represents.
    pub node_weight: Vec<f64>,
    /// Map from this level's nodes to the **coarser** level's nodes
    /// (`None` for the coarsest level).
    pub to_coarser: Option<Vec<u32>>,
}

/// The full hierarchy, finest level first.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Levels, `levels[0]` being the input graph.
    pub levels: Vec<Level>,
}

impl Hierarchy {
    /// The coarsest level.
    pub fn coarsest(&self) -> &Level {
        self.levels
            .last()
            .expect("hierarchy has at least one level")
    }
}

/// Contracts `graph` along `matching`, merging node weights and summing
/// parallel edge weights. Returns the coarse graph, its node weights, and
/// the fine→coarse map.
pub fn contract(
    graph: &CsrGraph,
    node_weight: &[f64],
    matching: &Matching,
) -> (CsrGraph, Vec<f64>, Vec<u32>) {
    let n = graph.node_count();
    let mut to_coarse = vec![u32::MAX; n];
    let mut coarse_weight = Vec::new();
    // Assign coarse ids: each matched pair (v < mate) and each single node
    // becomes one coarse node, in ascending order of the smaller endpoint.
    for v in 0..n {
        if to_coarse[v] != u32::MAX {
            continue;
        }
        let m = matching.mate[v] as usize;
        let id = coarse_weight.len() as u32;
        to_coarse[v] = id;
        let mut w = node_weight[v];
        if m != v {
            to_coarse[m] = id;
            w += node_weight[m];
        }
        coarse_weight.push(w);
    }

    let mut b = GraphBuilder::with_nodes(coarse_weight.len());
    for (a, c, w) in graph.edges() {
        let ca = to_coarse[a.index()];
        let cc = to_coarse[c.index()];
        if ca != cc {
            // GraphBuilder sums duplicate insertions, which merges the
            // parallel edges contraction creates.
            b.add_edge(NodeId(ca), NodeId(cc), w)
                .expect("valid contracted edge");
        }
    }
    let coarse = b.build().expect("contracted graph is non-empty");
    (coarse, coarse_weight, to_coarse)
}

/// Builds the full coarsening hierarchy.
///
/// Coarsening stops when the graph has at most `target_nodes` nodes or a
/// round shrinks the graph by less than ~10% (matching stalled — typical for
/// star-like graphs where one hub exhausts its neighbors).
pub fn coarsen(graph: &CsrGraph, target_nodes: usize, seed: u64) -> Hierarchy {
    let mut levels = vec![Level {
        graph: graph.clone(),
        node_weight: vec![1.0; graph.node_count()],
        to_coarser: None,
    }];

    let mut round = 0u64;
    loop {
        let current = levels.last().expect("non-empty");
        let n = current.graph.node_count();
        if n <= target_nodes {
            break;
        }
        let matching = heavy_edge_matching(&current.graph, seed.wrapping_add(round));
        let (coarse, weight, map) = contract(&current.graph, &current.node_weight, &matching);
        let shrunk = coarse.node_count();
        if shrunk as f64 > n as f64 * 0.95 {
            break; // stalled
        }
        levels.last_mut().expect("non-empty").to_coarser = Some(map);
        levels.push(Level {
            graph: coarse,
            node_weight: weight,
            to_coarser: None,
        });
        round += 1;
    }
    Hierarchy { levels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::GraphBuilder;

    fn grid(side: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        let id = |r: u32, c: u32| NodeId(r * side + c);
        for r in 0..side {
            for c in 0..side {
                if c + 1 < side {
                    b.add_edge(id(r, c), id(r, c + 1), 1.0).unwrap();
                }
                if r + 1 < side {
                    b.add_edge(id(r, c), id(r + 1, c), 1.0).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn contract_preserves_total_node_weight() {
        let g = grid(4);
        let w = vec![1.0; g.node_count()];
        let m = heavy_edge_matching(&g, 3);
        let (coarse, cw, map) = contract(&g, &w, &m);
        assert_eq!(cw.iter().sum::<f64>(), 16.0);
        assert!(coarse.node_count() < g.node_count());
        assert!(map.iter().all(|&c| (c as usize) < coarse.node_count()));
    }

    #[test]
    fn contract_preserves_cut_edge_weight() {
        // Total edge weight = intra-pair (removed) + inter-pair (kept, merged).
        let g = grid(3);
        let w = vec![1.0; g.node_count()];
        let m = heavy_edge_matching(&g, 11);
        let (coarse, _, map) = contract(&g, &w, &m);
        let kept: f64 = g
            .edges()
            .filter(|(a, b, _)| map[a.index()] != map[b.index()])
            .map(|(_, _, w)| w)
            .sum();
        assert!((coarse.total_weight() - kept).abs() < 1e-12);
    }

    #[test]
    fn hierarchy_reaches_target() {
        let g = grid(8); // 64 nodes
        let h = coarsen(&g, 10, 5);
        assert!(
            h.coarsest().graph.node_count() <= 16,
            "coarsest has {} nodes",
            h.coarsest().graph.node_count()
        );
        assert!(h.levels.len() >= 3);
        // Total node weight is invariant across levels.
        for level in &h.levels {
            assert_eq!(level.node_weight.iter().sum::<f64>(), 64.0);
        }
        // Every non-coarsest level has a projection map.
        for level in &h.levels[..h.levels.len() - 1] {
            assert!(level.to_coarser.is_some());
        }
        assert!(h.coarsest().to_coarser.is_none());
    }

    #[test]
    fn already_small_graph_is_single_level() {
        let g = grid(2);
        let h = coarsen(&g, 10, 0);
        assert_eq!(h.levels.len(), 1);
    }
}
