//! Typed errors for the partitioner.

use std::fmt;

/// Errors produced by `ceps-partition`.
#[derive(Debug)]
#[non_exhaustive]
pub enum PartitionError {
    /// Requested part count was 0 or exceeded the node count.
    BadPartCount {
        /// Requested `k`.
        k: usize,
        /// Nodes available.
        node_count: usize,
    },
    /// The balance tolerance was not a finite value `>= 0`.
    BadEpsilon {
        /// The rejected tolerance.
        epsilon: f64,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::BadPartCount { k, node_count } => {
                write!(
                    f,
                    "part count k = {k} must lie in 1..={node_count} (node count)"
                )
            }
            PartitionError::BadEpsilon { epsilon } => {
                write!(
                    f,
                    "balance tolerance epsilon = {epsilon} must be finite and >= 0"
                )
            }
        }
    }
}

impl std::error::Error for PartitionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = PartitionError::BadPartCount {
            k: 0,
            node_count: 5,
        };
        assert!(e.to_string().contains("1..=5"));
        let e = PartitionError::BadEpsilon { epsilon: f64::NAN };
        assert!(e.to_string().contains("epsilon"));
    }
}
