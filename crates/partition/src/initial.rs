//! Greedy region-growing initial partition of the coarsest graph.

use std::collections::BinaryHeap;

use ceps_graph::{CsrGraph, NodeId};
use rand::{seq::SliceRandom, Rng, SeedableRng};

/// Grows `k` regions from spread-out seeds until every node is assigned.
///
/// Seeds are picked by a farthest-first style sweep (first seed random, each
/// subsequent seed the unassigned node with the largest hop distance from the
/// chosen set, approximated via BFS from all current seeds). Regions then
/// grow by repeatedly claiming the unassigned boundary node with the
/// strongest connection to the region, subject to a soft capacity of
/// `(1 + epsilon) * total_weight / k`. Stranded nodes (different component,
/// or everything else full) fall back to the lightest part.
pub fn region_growing(
    graph: &CsrGraph,
    node_weight: &[f64],
    k: usize,
    epsilon: f64,
    seed: u64,
) -> Vec<u32> {
    let n = graph.node_count();
    debug_assert!(k >= 1 && k <= n);
    let total: f64 = node_weight.iter().sum();
    let capacity = (1.0 + epsilon) * total / k as f64;

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let seeds = pick_seeds(graph, k, &mut rng);

    let mut assignment = vec![u32::MAX; n];
    let mut part_weight = vec![0f64; k];

    // Max-heap of (connection strength, node, part) candidate claims.
    let mut heap: BinaryHeap<Claim> = BinaryHeap::new();
    for (p, &s) in seeds.iter().enumerate() {
        assignment[s.index()] = p as u32;
        part_weight[p] += node_weight[s.index()];
        for (u, w) in graph.neighbors(s) {
            heap.push(Claim {
                strength: w,
                node: u.0,
                part: p as u32,
            });
        }
    }

    while let Some(Claim { node, part, .. }) = heap.pop() {
        let v = node as usize;
        if assignment[v] != u32::MAX {
            continue;
        }
        if part_weight[part as usize] + node_weight[v] > capacity {
            // This part is full for this node; some other queued claim may
            // still take it. If none does, the fallback sweep below will.
            continue;
        }
        assignment[v] = part;
        part_weight[part as usize] += node_weight[v];
        for (u, w) in graph.neighbors(NodeId(node)) {
            if assignment[u.index()] == u32::MAX {
                heap.push(Claim {
                    strength: w,
                    node: u.0,
                    part,
                });
            }
        }
    }

    // Fallback: anything unassigned (isolated nodes, capacity lockout) goes
    // to the currently lightest part.
    for v in 0..n {
        if assignment[v] == u32::MAX {
            let lightest = part_weight
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            assignment[v] = lightest as u32;
            part_weight[lightest] += node_weight[v];
        }
    }
    assignment
}

/// Farthest-first seed selection (hop metric), robust to disconnection.
fn pick_seeds(graph: &CsrGraph, k: usize, rng: &mut impl Rng) -> Vec<NodeId> {
    let n = graph.node_count();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let first = NodeId(order[0]);

    let mut seeds = vec![first];
    // dist[v] = hop distance to the nearest chosen seed.
    let mut dist = ceps_graph::algo::hop_distances(graph, first);
    while seeds.len() < k {
        // Farthest node; unreachable (u32::MAX) counts as infinitely far,
        // which naturally seeds other components. Ties break by shuffled
        // order for seed-dependence without bias.
        let far = order
            .iter()
            .copied()
            .filter(|&v| !seeds.iter().any(|s| s.0 == v))
            .max_by_key(|&v| dist[v as usize])
            .expect("k <= n leaves a candidate");
        let far = NodeId(far);
        seeds.push(far);
        let d2 = ceps_graph::algo::hop_distances(graph, far);
        for (a, b) in dist.iter_mut().zip(d2) {
            *a = (*a).min(b);
        }
    }
    seeds
}

/// Heap entry ordered by claim strength (then node/part for determinism).
#[derive(Debug, PartialEq)]
struct Claim {
    strength: f64,
    node: u32,
    part: u32,
}

impl Eq for Claim {}

impl Ord for Claim {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.strength
            .total_cmp(&other.strength)
            .then_with(|| other.node.cmp(&self.node))
            .then_with(|| other.part.cmp(&self.part))
    }
}

impl PartialOrd for Claim {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::GraphBuilder;

    /// Two 5-cliques joined by a single weak bridge.
    fn two_cliques() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    b.add_edge(NodeId(base + i), NodeId(base + j), 5.0).unwrap();
                }
            }
        }
        b.add_edge(NodeId(4), NodeId(5), 0.1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn assigns_every_node_to_a_valid_part() {
        let g = two_cliques();
        let w = vec![1.0; g.node_count()];
        for seed in 0..10 {
            let a = region_growing(&g, &w, 3, 0.1, seed);
            assert_eq!(a.len(), 10);
            assert!(a.iter().all(|&p| p < 3), "seed {seed}");
        }
    }

    #[test]
    fn k2_splits_the_cliques_apart() {
        let g = two_cliques();
        let w = vec![1.0; g.node_count()];
        let mut clean_splits = 0;
        for seed in 0..10 {
            let a = region_growing(&g, &w, 2, 0.1, seed);
            let first: Vec<u32> = a[..5].to_vec();
            let second: Vec<u32> = a[5..].to_vec();
            let first_same = first.iter().all(|&p| p == first[0]);
            let second_same = second.iter().all(|&p| p == second[0]);
            if first_same && second_same && first[0] != second[0] {
                clean_splits += 1;
            }
        }
        // Farthest-first seeding should land seeds in opposite cliques
        // virtually always on this graph.
        assert!(clean_splits >= 8, "only {clean_splits}/10 clean splits");
    }

    #[test]
    fn handles_disconnected_graphs() {
        let mut b = GraphBuilder::with_nodes(6);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        // 4, 5 isolated.
        let g = b.build().unwrap();
        let w = vec![1.0; 6];
        let a = region_growing(&g, &w, 2, 0.2, 1);
        assert!(a.iter().all(|&p| p < 2));
    }

    #[test]
    fn k_equals_n_gives_singletons_coverage() {
        let g = two_cliques();
        let w = vec![1.0; g.node_count()];
        let a = region_growing(&g, &w, 10, 0.0, 2);
        assert!(a.iter().all(|&p| p < 10));
    }
}
